package exec

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/memory"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// SortSpec is one physical sort key.
type SortSpec struct {
	Expr       physical.PhysicalExpr
	Descending bool
	NullsFirst bool
}

func (s SortSpec) String() string {
	dir := "ASC"
	if s.Descending {
		dir = "DESC"
	}
	return fmt.Sprintf("%s %s", s.Expr, dir)
}

func sortEncoder(keys []SortSpec) (*rowformat.Encoder, error) {
	types := make([]*arrow.DataType, len(keys))
	opts := make([]rowformat.SortOption, len(keys))
	for i, k := range keys {
		types[i] = k.Expr.DataType()
		opts[i] = rowformat.SortOption{Descending: k.Descending, NullsFirst: k.NullsFirst}
	}
	return rowformat.NewEncoder(types, opts)
}

// encodeSortKeys renders each row's normalized sort key.
func encodeSortKeys(enc *rowformat.Encoder, keys []SortSpec, b *arrow.RecordBatch) ([][]byte, error) {
	cols := make([]arrow.Array, len(keys))
	for i, k := range keys {
		a, err := physical.EvalToArray(k.Expr, b)
		if err != nil {
			return nil, err
		}
		cols[i] = a
	}
	return enc.EncodeRows(cols, b.NumRows()), nil
}

// batchBytes estimates a batch's memory footprint.
func batchBytes(b *arrow.RecordBatch) int64 {
	var total int64
	for _, c := range b.Columns() {
		switch arr := c.(type) {
		case *arrow.StringArray:
			total += int64(len(arr.Data())) + int64(4*arr.Len())
		default:
			w := c.DataType().BitWidth()
			if w == 0 {
				w = 64
			}
			total += int64(c.Len() * w / 8)
		}
		total += int64(len(c.Validity()))
	}
	return total
}

// ExternalSortExec fully sorts its input (per partition), spilling sorted
// runs to disk and merging them with a loser-tree-style heap when memory
// is exhausted (paper Section 6.2).
type ExternalSortExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
	Keys  []SortSpec
}

func (e *ExternalSortExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *ExternalSortExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *ExternalSortExec) Partitions() int { return e.Input.Partitions() }
func (e *ExternalSortExec) String() string {
	parts := make([]string, len(e.Keys))
	for i, k := range e.Keys {
		parts[i] = k.String()
	}
	return "SortExec: " + strings.Join(parts, ", ")
}
func (e *ExternalSortExec) OutputOrdering() []physical.SortField {
	var out []physical.SortField
	for _, k := range e.Keys {
		c, ok := k.Expr.(*physical.ColumnExpr)
		if !ok {
			return nil
		}
		out = append(out, physical.SortField{Col: c.Index, Descending: k.Descending, NullsFirst: k.NullsFirst})
	}
	return out
}
func (e *ExternalSortExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &ExternalSortExec{Input: c, Keys: e.Keys}, nil
}

// sortRun sorts buffered batches into a single ordered batch.
func (e *ExternalSortExec) sortRun(batches []*arrow.RecordBatch, keys [][][]byte) (*arrow.RecordBatch, [][]byte, error) {
	full, err := compute.ConcatBatches(e.Schema(), batches)
	if err != nil {
		return nil, nil, err
	}
	var flat [][]byte
	for _, ks := range keys {
		flat = append(flat, ks...)
	}
	idx := make([]int32, len(flat))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return bytes.Compare(flat[idx[a]], flat[idx[b]]) < 0
	})
	sortedKeys := make([][]byte, len(flat))
	for i, j := range idx {
		sortedKeys[i] = flat[j]
	}
	return compute.TakeBatch(full, idx), sortedKeys, nil
}

func (e *ExternalSortExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	enc, err := sortEncoder(e.Keys)
	if err != nil {
		in.Close()
		return nil, err
	}

	res := memory.NewReservation(ctx.Pool, "SortExec")
	unregister := memory.RegisterConsumer(ctx.Pool)
	var spills []*memory.SpillFile
	var pending []*arrow.RecordBatch
	var pendingKeys [][][]byte
	var pendingBytes int64

	// out is the sorted output stream built on first Next (in-memory slice
	// or spill merge); cleanup owns closing it.
	var out physical.Stream
	cleanup := func() {
		if out != nil {
			out.Close()
		}
		in.Close()
		res.Free()
		unregister()
		for _, sp := range spills {
			sp.Release()
		}
	}

	m := e.Metrics()
	spillRun := func(cause error) error {
		if ctx.Disk == nil || !ctx.Disk.Enabled() {
			// Keep the reservation failure in the chain so callers (the
			// server's statusFor) can classify this as retryable pressure.
			if cause != nil {
				return fmt.Errorf("exec: sort exceeded memory budget and spilling is disabled: %w", cause)
			}
			return fmt.Errorf("exec: sort exceeded memory budget and spilling is disabled")
		}
		sorted, _, err := e.sortRun(pending, pendingKeys)
		if err != nil {
			return err
		}
		sf, err := ctx.Disk.CreateTemp("sort")
		if err != nil {
			return err
		}
		m.AddSpill(batchBytes(sorted))
		const chunk = 8192
		for off := 0; off < sorted.NumRows(); off += chunk {
			n := chunk
			if off+n > sorted.NumRows() {
				n = sorted.NumRows() - off
			}
			if err := arrow.WriteBatch(sf.File(), sorted.Slice(off, n)); err != nil {
				return err
			}
		}
		spills = append(spills, sf)
		pending, pendingKeys, pendingBytes = nil, nil, 0
		res.Shrink(res.Size())
		return nil
	}

	started := false
	next := func() (*arrow.RecordBatch, error) {
		if !started {
			started = true
			for {
				if err := checkCancel(ctx); err != nil {
					return nil, err
				}
				b, err := in.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				if b.NumRows() == 0 {
					continue
				}
				ks, err := encodeSortKeys(enc, e.Keys, b)
				if err != nil {
					return nil, err
				}
				pending = append(pending, b)
				pendingKeys = append(pendingKeys, ks)
				pendingBytes += batchBytes(b)
				if err := res.Resize(pendingBytes); err != nil {
					if serr := spillRun(err); serr != nil {
						return nil, serr
					}
				} else {
					m.UpdateMemPeak(res.Size())
				}
			}
			if len(spills) == 0 {
				// Pure in-memory sort.
				if len(pending) == 0 {
					out = NewFuncStream(e.Schema(), func() (*arrow.RecordBatch, error) { return nil, io.EOF }, nil)
				} else {
					sorted, _, err := e.sortRun(pending, pendingKeys)
					if err != nil {
						return nil, err
					}
					pending, pendingKeys = nil, nil
					pos := 0
					out = NewFuncStream(e.Schema(), func() (*arrow.RecordBatch, error) {
						if pos >= sorted.NumRows() {
							return nil, io.EOF
						}
						n := ctx.BatchRows
						if n <= 0 {
							n = 8192
						}
						if pos+n > sorted.NumRows() {
							n = sorted.NumRows() - pos
						}
						b := sorted.Slice(pos, n)
						pos += n
						return b, nil
					}, nil)
				}
			} else {
				// Spill the final run, then merge all runs.
				if len(pending) > 0 {
					if err := spillRun(nil); err != nil {
						return nil, err
					}
				}
				ms, err := e.mergeSpills(ctx, enc, spills)
				if err != nil {
					return nil, err
				}
				out = ms
			}
		}
		return out.Next()
	}
	return physical.InstrumentStream(NewFuncStream(e.Schema(), next, cleanup), m), nil
}

// runCursor iterates one sorted spilled run.
type runCursor struct {
	file   *memory.SpillFile
	schema *arrow.Schema
	enc    *rowformat.Encoder
	keys   []SortSpec
	batch  *arrow.RecordBatch
	bkeys  [][]byte
	row    int
	done   bool
}

func (c *runCursor) advanceBatch() error {
	b, err := arrow.ReadBatch(c.file.File(), c.schema)
	if err == io.EOF {
		c.done = true
		c.batch = nil
		return nil
	}
	if err != nil {
		return err
	}
	ks, err := encodeSortKeys(c.enc, c.keys, b)
	if err != nil {
		return err
	}
	c.batch, c.bkeys, c.row = b, ks, 0
	return nil
}

func (c *runCursor) key() []byte { return c.bkeys[c.row] }

func (c *runCursor) advance() error {
	c.row++
	if c.batch != nil && c.row >= c.batch.NumRows() {
		return c.advanceBatch()
	}
	return nil
}

// mergeHeap is a min-heap of run cursors ordered by current key (a
// simplified tree of losers).
type mergeHeap []*runCursor

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return bytes.Compare(h[i].key(), h[j].key()) < 0 }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*runCursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (e *ExternalSortExec) mergeSpills(ctx *physical.ExecContext, enc *rowformat.Encoder, spills []*memory.SpillFile) (physical.Stream, error) {
	var h mergeHeap
	for _, sf := range spills {
		if _, err := sf.File().Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		c := &runCursor{file: sf, schema: e.Schema(), enc: enc, keys: e.Keys}
		if err := c.advanceBatch(); err != nil {
			return nil, err
		}
		if !c.done {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	builderFor := func() []arrow.Builder {
		bs := make([]arrow.Builder, e.Schema().NumFields())
		for i, f := range e.Schema().Fields() {
			bs[i] = arrow.NewBuilder(f.Type)
		}
		return bs
	}
	next := func() (*arrow.RecordBatch, error) {
		if h.Len() == 0 {
			return nil, io.EOF
		}
		target := ctx.BatchRows
		if target <= 0 {
			target = 8192
		}
		builders := builderFor()
		rows := 0
		for rows < target && h.Len() > 0 {
			c := h[0]
			for i := range builders {
				builders[i].AppendFrom(c.batch.Column(i), c.row)
			}
			rows++
			if err := c.advance(); err != nil {
				return nil, err
			}
			if c.done {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
		cols := make([]arrow.Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		return arrow.NewRecordBatchWithRows(e.Schema(), cols, rows), nil
	}
	return NewFuncStream(e.Schema(), next, nil), nil
}

// SortPreservingMergeExec merges already-sorted partitions into one sorted
// stream without re-sorting.
type SortPreservingMergeExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
	Keys  []SortSpec
}

func (e *SortPreservingMergeExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *SortPreservingMergeExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *SortPreservingMergeExec) Partitions() int { return 1 }
func (e *SortPreservingMergeExec) String() string {
	return fmt.Sprintf("SortPreservingMergeExec: %d inputs", e.Input.Partitions())
}
func (e *SortPreservingMergeExec) OutputOrdering() []physical.SortField {
	return (&ExternalSortExec{Input: e.Input, Keys: e.Keys}).OutputOrdering()
}
func (e *SortPreservingMergeExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &SortPreservingMergeExec{Input: c, Keys: e.Keys}, nil
}

// streamCursor adapts a live stream for heap merging.
type streamCursor struct {
	s     physical.Stream
	enc   *rowformat.Encoder
	keys  []SortSpec
	batch *arrow.RecordBatch
	bkeys [][]byte
	row   int
	done  bool
}

func (c *streamCursor) advanceBatch() error {
	for {
		b, err := c.s.Next()
		if err == io.EOF {
			c.done = true
			c.batch = nil
			return nil
		}
		if err != nil {
			return err
		}
		if b.NumRows() == 0 {
			continue
		}
		ks, err := encodeSortKeys(c.enc, c.keys, b)
		if err != nil {
			return err
		}
		c.batch, c.bkeys, c.row = b, ks, 0
		return nil
	}
}

type streamHeap []*streamCursor

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(i, j int) bool {
	return bytes.Compare(h[i].bkeys[h[i].row], h[j].bkeys[h[j].row]) < 0
}
func (h streamHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x any)   { *h = append(*h, x.(*streamCursor)) }
func (h *streamHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (e *SortPreservingMergeExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: merge has a single partition")
	}
	n := e.Input.Partitions()
	if n == 1 {
		in, err := e.Input.Execute(ctx, 0)
		if err != nil {
			return nil, err
		}
		return physical.InstrumentStream(in, e.Metrics()), nil
	}
	enc, err := sortEncoder(e.Keys)
	if err != nil {
		return nil, err
	}
	// Open every partition and pull initial batches concurrently: inputs
	// may share one exchange (RepartitionExec), whose producers block until
	// every consumer partition makes progress; sequential priming would
	// deadlock (each input is a pipeline breaker that buffers its whole
	// exchange share before its first batch).
	var h streamHeap
	streams := make([]physical.Stream, n)
	cursors := make([]*streamCursor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := e.Input.Execute(ctx, p)
			if err != nil {
				errs[p] = err
				return
			}
			streams[p] = s
			c := &streamCursor{s: s, enc: enc, keys: e.Keys}
			errs[p] = c.advanceBatch()
			cursors[p] = c
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		if errs[p] != nil {
			return nil, errs[p]
		}
		if c := cursors[p]; c != nil && !c.done {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	next := func() (*arrow.RecordBatch, error) {
		if h.Len() == 0 {
			return nil, io.EOF
		}
		target := ctx.BatchRows
		if target <= 0 {
			target = 8192
		}
		builders := make([]arrow.Builder, e.Schema().NumFields())
		for i, f := range e.Schema().Fields() {
			builders[i] = arrow.NewBuilder(f.Type)
		}
		rows := 0
		for rows < target && h.Len() > 0 {
			c := h[0]
			for i := range builders {
				builders[i].AppendFrom(c.batch.Column(i), c.row)
			}
			rows++
			c.row++
			if c.row >= c.batch.NumRows() {
				if err := c.advanceBatch(); err != nil {
					return nil, err
				}
			}
			if c.done {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
		cols := make([]arrow.Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		return arrow.NewRecordBatchWithRows(e.Schema(), cols, rows), nil
	}
	closeAll := func() {
		for _, s := range streams {
			s.Close()
		}
	}
	return physical.InstrumentStream(NewFuncStream(e.Schema(), next, closeAll), e.Metrics()), nil
}
