package exec

import (
	"io"
	"sync/atomic"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/physical"
)

// morselQueue is the shared work queue of one morsel-driven scan: an
// atomic cursor over the scan's MorselSet. The engine already runs one
// consumer goroutine per output partition; those goroutines are the
// workers — each claims the next unstarted unit when its current one
// drains, so a worker stuck on a fat or slow unit simply claims fewer
// and the tail balances itself without any stealing protocol.
type morselQueue struct {
	set  *catalog.MorselSet
	next atomic.Int64
}

func newMorselQueue(set *catalog.MorselSet) *morselQueue {
	return &morselQueue{set: set}
}

// claim returns the next unclaimed unit index, or -1 when the queue is
// drained.
func (q *morselQueue) claim() int {
	i := int(q.next.Add(1)) - 1
	if i >= q.set.Units() {
		return -1
	}
	return i
}

// claimed reports how many units have been claimed so far (for tests).
func (q *morselQueue) claimed() int {
	n := int(q.next.Load())
	if n > q.set.Units() {
		return q.set.Units()
	}
	return n
}

// morselStream is one worker's view of a shared morsel queue: a Stream
// that reads claimed units one at a time until the queue is empty.
// Closing mid-drain closes only the unit being read (joining its
// readahead producer); unclaimed units are simply never opened, so
// abandoning the stream leaks nothing.
type morselStream struct {
	schema *arrow.Schema
	q      *morselQueue
	cur    physical.Stream
	done   bool
}

func (s *morselStream) Schema() *arrow.Schema { return s.schema }

func (s *morselStream) Next() (*arrow.RecordBatch, error) {
	for {
		if s.done {
			return nil, io.EOF
		}
		if s.cur == nil {
			unit := s.q.claim()
			if unit < 0 {
				s.done = true
				return nil, io.EOF
			}
			cur, err := s.q.set.Open(unit)
			if err != nil {
				s.done = true
				return nil, err
			}
			s.cur = cur
		}
		b, err := s.cur.Next()
		if err == io.EOF {
			s.cur.Close()
			s.cur = nil
			continue
		}
		if err != nil {
			return nil, err
		}
		return b, nil
	}
}

func (s *morselStream) Close() {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	s.done = true
}
