package exec

import (
	"fmt"
	"io"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// SymmetricHashJoinExec is a streaming (pipelined) inner equi-join: both
// sides build hash tables incrementally and probe the other side's table
// as batches arrive, so results stream without waiting for either input
// to finish (paper Section 6.4, used by streaming SQL systems built on
// the engine).
type SymmetricHashJoinExec struct {
	physical.OpMetrics
	Left   physical.ExecutionPlan
	Right  physical.ExecutionPlan
	On     []JoinOn
	schema *arrow.Schema
}

// NewSymmetricHashJoinExec builds a streaming inner join.
func NewSymmetricHashJoinExec(left, right physical.ExecutionPlan, on []JoinOn) *SymmetricHashJoinExec {
	return &SymmetricHashJoinExec{Left: left, Right: right, On: on,
		schema: joinOutputSchema(left.Schema(), right.Schema(), logical.InnerJoin)}
}

func (e *SymmetricHashJoinExec) Schema() *arrow.Schema { return e.schema }
func (e *SymmetricHashJoinExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Left, e.Right}
}
func (e *SymmetricHashJoinExec) Partitions() int                      { return 1 }
func (e *SymmetricHashJoinExec) OutputOrdering() []physical.SortField { return nil }
func (e *SymmetricHashJoinExec) String() string {
	return fmt.Sprintf("SymmetricHashJoinExec: on=%d keys", len(e.On))
}
func (e *SymmetricHashJoinExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("exec: join takes 2 children")
	}
	return NewSymmetricHashJoinExec(ch[0], ch[1], e.On), nil
}

// sideState is one input's accumulated rows and key index.
type sideState struct {
	stream  physical.Stream
	enc     *rowformat.Encoder
	exprs   []physical.PhysicalExpr
	batches []*arrow.RecordBatch
	// index maps key -> (batchIdx, rowIdx) pairs, flattened.
	index map[string][][2]int32
	done  bool
}

func newSideState(s physical.Stream, exprs []physical.PhysicalExpr) (*sideState, error) {
	enc, err := joinKeyEncoderFromExprs(exprs)
	if err != nil {
		return nil, err
	}
	return &sideState{stream: s, enc: enc, exprs: exprs, index: map[string][][2]int32{}}, nil
}

// ingest adds one batch and returns its per-row keys.
func (ss *sideState) ingest(b *arrow.RecordBatch) ([][]byte, error) {
	keys, err := encodeJoinKeys(ss.enc, ss.exprs, b)
	if err != nil {
		return nil, err
	}
	bi := int32(len(ss.batches))
	ss.batches = append(ss.batches, b)
	for i, k := range keys {
		if k == nil {
			continue
		}
		ss.index[string(k)] = append(ss.index[string(k)], [2]int32{bi, int32(i)})
	}
	return keys, nil
}

func (e *SymmetricHashJoinExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: symmetric hash join has a single partition")
	}
	ls, err := (&CoalescePartitionsExec{Input: e.Left}).Execute(ctx, 0)
	if err != nil {
		return nil, err
	}
	rs, err := (&CoalescePartitionsExec{Input: e.Right}).Execute(ctx, 0)
	if err != nil {
		ls.Close()
		return nil, err
	}
	lex := make([]physical.PhysicalExpr, len(e.On))
	rex := make([]physical.PhysicalExpr, len(e.On))
	for i, p := range e.On {
		lex[i] = p.L
		rex[i] = p.R
	}
	left, err := newSideState(ls, lex)
	if err != nil {
		ls.Close()
		rs.Close()
		return nil, err
	}
	right, err := newSideState(rs, rex)
	if err != nil {
		ls.Close()
		rs.Close()
		return nil, err
	}

	m := e.Metrics()
	buildRows := m.Counter("build_rows") // rows ingested on the left side
	probeRows := m.Counter("probe_rows") // rows ingested on the right side
	turn := 0
	next := func() (*arrow.RecordBatch, error) {
		for {
			if left.done && right.done {
				return nil, io.EOF
			}
			if err := checkCancel(ctx); err != nil {
				return nil, err
			}
			// Alternate sides for pipelined progress.
			var src, other *sideState
			fromLeft := turn%2 == 0
			if (fromLeft && left.done) || (!fromLeft && !right.done && len(left.batches) > len(right.batches)*2) {
				fromLeft = false
			}
			if !fromLeft && right.done {
				fromLeft = true
			}
			if fromLeft {
				src, other = left, right
			} else {
				src, other = right, left
			}
			turn++
			b, err := src.stream.Next()
			if err == io.EOF {
				src.done = true
				continue
			}
			if err != nil {
				return nil, err
			}
			if b.NumRows() == 0 {
				continue
			}
			keys, err := src.ingest(b)
			if err != nil {
				return nil, err
			}
			if fromLeft {
				buildRows.Add(int64(b.NumRows()))
			} else {
				probeRows.Add(int64(b.NumRows()))
			}
			// Probe the other side's accumulated rows.
			var srcIdx []int32
			var otherRefs [][2]int32
			for i, k := range keys {
				if k == nil {
					continue
				}
				for _, ref := range other.index[string(k)] {
					srcIdx = append(srcIdx, int32(i))
					otherRefs = append(otherRefs, ref)
				}
			}
			if len(srcIdx) == 0 {
				continue
			}
			out, err := e.materialize(fromLeft, b, srcIdx, other, otherRefs)
			if err != nil {
				return nil, err
			}
			if out.NumRows() > 0 {
				return out, nil
			}
		}
	}
	closeAll := func() {
		ls.Close()
		rs.Close()
	}
	return physical.InstrumentStream(NewFuncStream(e.schema, next, closeAll), m), nil
}

func (e *SymmetricHashJoinExec) materialize(srcIsLeft bool, src *arrow.RecordBatch, srcIdx []int32,
	other *sideState, refs [][2]int32) (*arrow.RecordBatch, error) {
	srcCols := make([]arrow.Array, src.NumCols())
	for c := range srcCols {
		srcCols[c] = compute.Take(src.Column(c), srcIdx)
	}
	otherSchema := other.batches[0].Schema()
	otherCols := make([]arrow.Array, otherSchema.NumFields())
	for c := range otherCols {
		b := arrow.NewBuilder(otherSchema.Field(c).Type)
		for _, ref := range refs {
			b.AppendFrom(other.batches[ref[0]].Column(c), int(ref[1]))
		}
		otherCols[c] = b.Finish()
	}
	var cols []arrow.Array
	if srcIsLeft {
		cols = append(srcCols, otherCols...)
	} else {
		cols = append(otherCols, srcCols...)
	}
	return arrow.NewRecordBatchWithRows(e.schema, cols, len(srcIdx)), nil
}
