package exec

import (
	"gofusion/internal/physical"
)

// applyPhysicalOptimizers runs ExecutionPlan rewrites after planning
// (paper Section 6.1: "ExecutionPlan rewrites include eliminating
// unnecessary sorts, maximizing parallel execution..."). Sort elimination
// and Top-K selection happen during lowering where logical context is
// available; the passes here operate on the physical tree.
func applyPhysicalOptimizers(plan physical.ExecutionPlan, cfg *PlannerConfig) (physical.ExecutionPlan, error) {
	plan, err := removeRedundantCoalesce(plan)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// transformUp rewrites a physical plan bottom-up.
func transformUp(plan physical.ExecutionPlan, f func(physical.ExecutionPlan) (physical.ExecutionPlan, error)) (physical.ExecutionPlan, error) {
	children := plan.Children()
	if len(children) > 0 {
		newChildren := make([]physical.ExecutionPlan, len(children))
		changed := false
		for i, c := range children {
			nc, err := transformUp(c, f)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			var err error
			plan, err = plan.WithChildren(newChildren)
			if err != nil {
				return nil, err
			}
		}
	}
	return f(plan)
}

// removeRedundantCoalesce drops stacked CoalesceBatchesExec and
// single-input CoalescePartitionsExec nodes.
func removeRedundantCoalesce(plan physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	return transformUp(plan, func(p physical.ExecutionPlan) (physical.ExecutionPlan, error) {
		switch node := p.(type) {
		case *CoalesceBatchesExec:
			if inner, ok := node.Input.(*CoalesceBatchesExec); ok {
				return &CoalesceBatchesExec{Input: inner.Input, Target: node.Target}, nil
			}
		case *CoalescePartitionsExec:
			if node.Input.Partitions() == 1 {
				return node.Input, nil
			}
		}
		return p, nil
	})
}
