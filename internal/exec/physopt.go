package exec

import (
	"gofusion/internal/physical"
)

// applyPhysicalOptimizers runs ExecutionPlan rewrites after planning
// (paper Section 6.1: "ExecutionPlan rewrites include eliminating
// unnecessary sorts, maximizing parallel execution..."). Sort elimination
// and Top-K selection happen during lowering where logical context is
// available; the passes here operate on the physical tree.
func applyPhysicalOptimizers(plan physical.ExecutionPlan, cfg *PlannerConfig) (physical.ExecutionPlan, error) {
	plan, err := removeRedundantCoalesce(plan)
	if err != nil {
		return nil, err
	}
	if !cfg.DisableFusion {
		plan, err = fusePipelines(plan)
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// transformUp rewrites a physical plan bottom-up.
func transformUp(plan physical.ExecutionPlan, f func(physical.ExecutionPlan) (physical.ExecutionPlan, error)) (physical.ExecutionPlan, error) {
	children := plan.Children()
	if len(children) > 0 {
		newChildren := make([]physical.ExecutionPlan, len(children))
		changed := false
		for i, c := range children {
			nc, err := transformUp(c, f)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			var err error
			plan, err = plan.WithChildren(newChildren)
			if err != nil {
				return nil, err
			}
		}
	}
	return f(plan)
}

// fusePipelines compiles maximal chains of push-capable operators into
// PipelineExec segments (ROADMAP open item 2). Working bottom-up, every
// push-capable operator either absorbs into the segment its child
// already started or opens a new one; scans that expose morsels open a
// segment even alone so they run morsel-driven. A second pass unwraps
// segments too small to pay off: fewer than two fused stages over a
// source without morsels. Pipeline breakers (sorts, joins, exchanges,
// final aggregation, windows) never implement Pushable, so chanStream
// exchanges survive exactly at breaker boundaries.
func fusePipelines(plan physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	fused, err := transformUp(plan, func(p physical.ExecutionPlan) (physical.ExecutionPlan, error) {
		if pe, ok := p.(physical.Pushable); ok && pe.CanPush() {
			child := p.Children()[0]
			if seg, ok := child.(*PipelineExec); ok {
				top, err := p.WithChildren([]physical.ExecutionPlan{seg.top()})
				if err != nil {
					return nil, err
				}
				stages := append(append([]physical.ExecutionPlan(nil), seg.Stages...), top)
				return &PipelineExec{Source: seg.Source, Stages: stages}, nil
			}
			return &PipelineExec{Source: child, Stages: []physical.ExecutionPlan{p}}, nil
		}
		if scanHasMorsels(p) {
			return &PipelineExec{Source: p}, nil
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return transformUp(fused, func(p physical.ExecutionPlan) (physical.ExecutionPlan, error) {
		seg, ok := p.(*PipelineExec)
		if !ok || len(seg.Stages) >= 2 || scanHasMorsels(seg.Source) {
			return p, nil
		}
		return seg.top(), nil
	})
}

func scanHasMorsels(p physical.ExecutionPlan) bool {
	s, ok := p.(*TableScanExec)
	return ok && s.Result.Morsels != nil && s.Result.Morsels.Units() > 0
}

// removeRedundantCoalesce drops stacked CoalesceBatchesExec and
// single-input CoalescePartitionsExec nodes, and removes batch coalescing
// over unbounded inputs entirely: a live tail may never fill the target
// row count, so buffering toward it would block the pipeline forever.
// Streaming output trades batch size for latency.
func removeRedundantCoalesce(plan physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	return transformUp(plan, func(p physical.ExecutionPlan) (physical.ExecutionPlan, error) {
		switch node := p.(type) {
		case *CoalesceBatchesExec:
			if IsUnbounded(node.Input) {
				return node.Input, nil
			}
			if inner, ok := node.Input.(*CoalesceBatchesExec); ok {
				return &CoalesceBatchesExec{Input: inner.Input, Target: node.Target}, nil
			}
		case *CoalescePartitionsExec:
			if node.Input.Partitions() == 1 {
				return node.Input, nil
			}
		}
		return p, nil
	})
}
