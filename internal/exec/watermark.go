package exec

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/memory"
	"gofusion/internal/physical"
)

// WatermarkAggExec is the streaming aggregation operator for unbounded
// inputs: the plan groups by the source's declared event-time (watermark)
// column, so the group space partitions disjointly by event time. The
// operator tracks the high-water mark of event times seen; once the
// watermark passes a time bucket by more than the allowed lateness, every
// group in that bucket is finalized and emitted — long before the (possibly
// never-ending) input finishes. Rows with a NULL event time cannot be
// ordered against the watermark and are held to end of input, matching
// batch semantics. Groups emit exactly once; late rows beyond the lateness
// allowance would be misassigned, which is why Lateness is a correctness
// knob, not a tuning knob, for out-of-order sources.
type WatermarkAggExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
	// WatermarkPos is the index (into the group expressions) of the
	// event-time key.
	WatermarkPos int
	// Lateness is how far (in event-time units) the watermark must pass a
	// bucket before it closes; rows arriving later than this are
	// misgrouped, so sources must bound their disorder by it.
	Lateness int64
	// helper carries the shared hash-aggregation machinery (schema,
	// per-bucket state, update, emit); it is never executed itself.
	helper *HashAggregateExec
}

// NewWatermarkAggExec builds a streaming aggregation over input. wmPos
// indexes groupExprs; lateness < 0 is treated as 0.
func NewWatermarkAggExec(input physical.ExecutionPlan, groupExprs []physical.PhysicalExpr,
	groupNames []string, aggs []AggSpec, wmPos int, lateness int64) *WatermarkAggExec {
	if lateness < 0 {
		lateness = 0
	}
	return &WatermarkAggExec{
		Input:        input,
		WatermarkPos: wmPos,
		Lateness:     lateness,
		helper:       NewHashAggregateExec(input, SingleAgg, groupExprs, groupNames, aggs),
	}
}

func (e *WatermarkAggExec) Schema() *arrow.Schema { return e.helper.schema }
func (e *WatermarkAggExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *WatermarkAggExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	out := NewWatermarkAggExec(c, e.helper.GroupExprs, e.helper.GroupNames, e.helper.Aggs,
		e.WatermarkPos, e.Lateness)
	return out, nil
}
func (e *WatermarkAggExec) Partitions() int                      { return 1 }
func (e *WatermarkAggExec) OutputOrdering() []physical.SortField { return nil }

func (e *WatermarkAggExec) String() string {
	groups := make([]string, len(e.helper.GroupExprs))
	for i, g := range e.helper.GroupExprs {
		groups[i] = g.String()
	}
	aggs := make([]string, len(e.helper.Aggs))
	for i, a := range e.helper.Aggs {
		aggs[i] = a.Name
	}
	return fmt.Sprintf("WatermarkAggExec: wm=%s lateness=%d gby=[%s] aggr=[%s]",
		e.helper.GroupNames[e.WatermarkPos], e.Lateness,
		strings.Join(groups, ", "), strings.Join(aggs, ", "))
}

// wmBucket is the aggregation state for one event-time value.
type wmBucket struct {
	st       *aggState
	groupIdx []uint32
}

func (e *WatermarkAggExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: WatermarkAggExec has one partition, got %d", partition)
	}
	in, err := e.Input.Execute(ctx, 0)
	if err != nil {
		return nil, err
	}
	res := memory.NewReservation(ctx.Pool, "WatermarkAggExec")
	unregister := memory.RegisterConsumer(ctx.Pool)
	m := e.Metrics()
	wmCounter := m.Counter("watermark")
	emitted := m.Counter("groups_emitted")

	buckets := map[int64]*wmBucket{}
	var nullBucket *wmBucket
	watermark := int64(math.MinInt64)
	haveWM := false
	var queue []*arrow.RecordBatch
	done := false
	closed := false

	bucketFor := func(v int64, isNull bool) (*wmBucket, error) {
		if isNull {
			if nullBucket == nil {
				st, err := e.helper.newState()
				if err != nil {
					return nil, err
				}
				nullBucket = &wmBucket{st: st}
			}
			return nullBucket, nil
		}
		bk := buckets[v]
		if bk == nil {
			st, err := e.helper.newState()
			if err != nil {
				return nil, err
			}
			bk = &wmBucket{st: st}
			buckets[v] = bk
		}
		return bk, nil
	}

	// emitBucket finalizes one bucket's groups into the output queue.
	emitBucket := func(bk *wmBucket) error {
		emitted.Add(int64(bk.st.numGroups()))
		batches, err := e.helper.emit(bk.st, ctx.BatchRows)
		if err != nil {
			return err
		}
		queue = append(queue, batches...)
		return nil
	}

	// closeRipe emits (ascending) every bucket the watermark has passed by
	// more than the lateness allowance.
	closeRipe := func() error {
		if !haveWM {
			return nil
		}
		var ripe []int64
		for v := range buckets {
			if v < watermark-e.Lateness {
				ripe = append(ripe, v)
			}
		}
		sort.Slice(ripe, func(i, j int) bool { return ripe[i] < ripe[j] })
		for _, v := range ripe {
			if err := emitBucket(buckets[v]); err != nil {
				return err
			}
			delete(buckets, v)
		}
		return nil
	}

	resize := func() error {
		var total int64
		for _, bk := range buckets {
			total += bk.st.table.memUsage()
		}
		if nullBucket != nil {
			total += nullBucket.st.table.memUsage()
		}
		if err := res.Resize(total); err != nil {
			return err
		}
		m.UpdateMemPeak(res.Size())
		return nil
	}

	next := func() (*arrow.RecordBatch, error) {
		for {
			if len(queue) > 0 {
				b := queue[0]
				queue = queue[1:]
				return b, nil
			}
			if done {
				return nil, io.EOF
			}
			if err := checkCancel(ctx); err != nil {
				return nil, err
			}
			b, err := in.Next()
			if err == io.EOF {
				// End of stream: flush every open bucket in event-time
				// order, NULL event times last.
				var rest []int64
				for v := range buckets {
					rest = append(rest, v)
				}
				sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
				for _, v := range rest {
					if err := emitBucket(buckets[v]); err != nil {
						return nil, err
					}
					delete(buckets, v)
				}
				if nullBucket != nil {
					if err := emitBucket(nullBucket); err != nil {
						return nil, err
					}
					nullBucket = nil
				}
				done = true
				continue
			}
			if err != nil {
				return nil, err
			}
			if b.NumRows() == 0 {
				continue
			}
			wmArr, err := physical.EvalToArray(e.helper.GroupExprs[e.WatermarkPos], b)
			if err != nil {
				return nil, err
			}
			// Split the batch's rows by event-time value; each value's rows
			// update that bucket's independent aggregation state.
			byVal := map[int64][]int32{}
			var nullIdx []int32
			for i := 0; i < b.NumRows(); i++ {
				if !wmArr.IsValid(i) {
					nullIdx = append(nullIdx, int32(i))
					continue
				}
				v := wmArr.GetScalar(i).AsInt64()
				byVal[v] = append(byVal[v], int32(i))
				if !haveWM || v > watermark {
					watermark = v
					haveWM = true
				}
			}
			for v, idx := range byVal {
				bk, err := bucketFor(v, false)
				if err != nil {
					return nil, err
				}
				bk.groupIdx, err = e.helper.update(bk.st, takeRows(b, idx), bk.groupIdx)
				if err != nil {
					return nil, err
				}
			}
			if len(nullIdx) > 0 {
				bk, err := bucketFor(0, true)
				if err != nil {
					return nil, err
				}
				bk.groupIdx, err = e.helper.update(bk.st, takeRows(b, nullIdx), bk.groupIdx)
				if err != nil {
					return nil, err
				}
			}
			if haveWM {
				wmCounter.Store(watermark)
			}
			if err := resize(); err != nil {
				return nil, err
			}
			if err := closeRipe(); err != nil {
				return nil, err
			}
		}
	}
	closeFn := func() {
		if closed {
			return
		}
		closed = true
		in.Close()
		res.Free()
		unregister()
	}
	return physical.InstrumentStream(NewFuncStream(e.Schema(), next, closeFn), m), nil
}

// takeRows gathers the given row indices of every column into a new batch.
func takeRows(b *arrow.RecordBatch, idx []int32) *arrow.RecordBatch {
	cols := make([]arrow.Array, b.NumCols())
	for c := range cols {
		cols[c] = compute.Take(b.Column(c), idx)
	}
	return arrow.NewRecordBatchWithRows(b.Schema(), cols, len(idx))
}
