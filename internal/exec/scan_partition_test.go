package exec

import (
	"path/filepath"
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/parquet"
	"gofusion/internal/physical"
)

func TestTableScanExplainShowsRowGroupPartitions(t *testing.T) {
	schema := arrow.NewSchema(arrow.NewField("id", arrow.Int64, false))
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < 800; i++ {
		b.Append(int64(i))
	}
	path := filepath.Join(t.TempDir(), "one.gpq")
	if err := parquet.WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{b.Finish()})},
		parquet.WriterOptions{RowGroupRows: 100, PageRows: 50}); err != nil {
		t.Fatal(err)
	}
	tbl, err := catalog.NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(catalog.ScanRequest{Limit: -1, Partitions: 4, Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	scan := NewTableScanExec("one", res)
	line := scan.String()
	if !strings.Contains(line, "partitions=4") {
		t.Fatalf("EXPLAIN missing partitions=4: %q", line)
	}
	if !strings.Contains(line, "rg") {
		t.Fatalf("EXPLAIN missing row-group ranges: %q", line)
	}
	// The split scan still returns every row.
	batches, err := CollectPlan(physical.NewExecContext(), scan)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, batch := range batches {
		total += batch.NumRows()
	}
	if total != 800 {
		t.Fatalf("rows = %d, want 800", total)
	}
}

func TestExchangeBufferDepth(t *testing.T) {
	ctx := physical.NewExecContext()
	if ctx.ExchangeBufferDepth() != physical.DefaultExchangeBuffer {
		t.Fatalf("default depth = %d", ctx.ExchangeBufferDepth())
	}
	ctx.ExchangeBuffer = 16
	if ctx.ExchangeBufferDepth() != 16 {
		t.Fatalf("override depth = %d", ctx.ExchangeBufferDepth())
	}
	ctx.ExchangeBuffer = 0
	if ctx.ExchangeBufferDepth() != physical.DefaultExchangeBuffer {
		t.Fatalf("zero depth should fall back: %d", ctx.ExchangeBufferDepth())
	}
}
