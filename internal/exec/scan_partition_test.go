package exec

import (
	"path/filepath"
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
	"gofusion/internal/physical"
)

func TestTableScanExplainShowsRowGroupPartitions(t *testing.T) {
	schema := arrow.NewSchema(arrow.NewField("id", arrow.Int64, false))
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < 800; i++ {
		b.Append(int64(i))
	}
	path := filepath.Join(t.TempDir(), "one.gpq")
	if err := parquet.WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{b.Finish()})},
		parquet.WriterOptions{RowGroupRows: 100, PageRows: 50}); err != nil {
		t.Fatal(err)
	}
	tbl, err := catalog.NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(catalog.ScanRequest{Limit: -1, Partitions: 4, Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	scan := NewTableScanExec("one", res)
	line := scan.String()
	if !strings.Contains(line, "partitions=4") {
		t.Fatalf("EXPLAIN missing partitions=4: %q", line)
	}
	if !strings.Contains(line, "rg") {
		t.Fatalf("EXPLAIN missing row-group ranges: %q", line)
	}
	// The split scan still returns every row.
	batches, err := CollectPlan(physical.NewExecContext(), scan)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, batch := range batches {
		total += batch.NumRows()
	}
	if total != 800 {
		t.Fatalf("rows = %d, want 800", total)
	}
}

func TestExchangeBufferDepth(t *testing.T) {
	ctx := physical.NewExecContext()
	if ctx.ExchangeBufferDepth() != physical.DefaultExchangeBuffer {
		t.Fatalf("default depth = %d", ctx.ExchangeBufferDepth())
	}
	ctx.ExchangeBuffer = 16
	if ctx.ExchangeBufferDepth() != 16 {
		t.Fatalf("override depth = %d", ctx.ExchangeBufferDepth())
	}
	ctx.ExchangeBuffer = 0
	if ctx.ExchangeBufferDepth() != physical.DefaultExchangeBuffer {
		t.Fatalf("zero depth should fall back: %d", ctx.ExchangeBufferDepth())
	}
}

// TestScanPruningMetrics checks the scan's pruning counters against a
// hand-computed layout: 800 sequential int64 rows in 100-row row groups
// (8 groups) with 50-row pages (2 per group). The predicate id > 649
// must prune groups 0-5 by min/max stats (max 99..599 < 650), decode
// groups 6 and 7, and skip group 6's first page (rows 600-649).
func TestScanPruningMetrics(t *testing.T) {
	schema := arrow.NewSchema(arrow.NewField("id", arrow.Int64, false))
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < 800; i++ {
		b.Append(int64(i))
	}
	path := filepath.Join(t.TempDir(), "pruned.gpq")
	if err := parquet.WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{b.Finish()})},
		parquet.WriterOptions{RowGroupRows: 100, PageRows: 50}); err != nil {
		t.Fatal(err)
	}
	tbl, err := catalog.NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(catalog.ScanRequest{
		Filters:    []logical.Expr{&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("id"), R: logical.Lit(int64(649))}},
		Limit:      -1,
		Partitions: 2,
		Readahead:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan := NewTableScanExec("pruned", res)
	batches, err := CollectPlan(physical.NewExecContext(), scan)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, batch := range batches {
		total += batch.NumRows()
	}
	if total != 150 {
		t.Fatalf("rows = %d, want 150", total)
	}
	s := scan.Metrics().Snapshot()
	if got := s.OutputRows; got != 150 {
		t.Fatalf("output_rows = %d, want 150", got)
	}
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"row_groups_pruned", 6},
		{"row_groups_scanned", 2},
		{"pages_pruned", 1},
		{"bloom_skipped", 0},
	} {
		if got := s.ExtraValue(tc.name); got != tc.want {
			t.Errorf("%s = %d, want %d (metrics: %s)", tc.name, got, tc.want, s.String())
		}
	}
}
