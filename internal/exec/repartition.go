package exec

import (
	"fmt"
	"io"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/physical"
)

// PartitionScheme selects how RepartitionExec routes rows.
type PartitionScheme int

// Partitioning schemes.
const (
	RoundRobinPartitioning PartitionScheme = iota
	HashPartitioning
)

// RepartitionExec is the Volcano-style exchange operator (paper Section
// 5.5): it redistributes N input partitions into M output partitions,
// decoupling producer and consumer parallelism. Hash partitioning routes
// rows by key hash so equal keys meet in the same partition.
type RepartitionExec struct {
	physical.OpMetrics
	Input  physical.ExecutionPlan
	Scheme PartitionScheme
	// HashExprs are the partitioning keys for HashPartitioning.
	HashExprs []physical.PhysicalExpr
	// NumParts is the output partition count.
	NumParts int

	mu      sync.Mutex
	started bool
	outputs []chan batchOrErr
	// abandoned[p] is closed when output partition p's consumer closes its
	// stream; producers stop delivering to that partition instead of
	// blocking forever on a channel nobody drains.
	abandoned []chan struct{}
	stopOnce  []sync.Once
	ctxDone   <-chan struct{}
}

func (e *RepartitionExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *RepartitionExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *RepartitionExec) Partitions() int { return e.NumParts }
func (e *RepartitionExec) OutputOrdering() []physical.SortField {
	return nil
}
func (e *RepartitionExec) String() string {
	if e.Scheme == HashPartitioning {
		return fmt.Sprintf("RepartitionExec: hash(%d exprs) into %d", len(e.HashExprs), e.NumParts)
	}
	return fmt.Sprintf("RepartitionExec: round-robin into %d", e.NumParts)
}
func (e *RepartitionExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &RepartitionExec{Input: c, Scheme: e.Scheme, HashExprs: e.HashExprs, NumParts: e.NumParts}, nil
}

// start launches one producer goroutine per input partition; each routes
// its rows into the output channels.
func (e *RepartitionExec) start(ctx *physical.ExecContext) {
	depth := ctx.ExchangeBufferDepth()
	e.outputs = make([]chan batchOrErr, e.NumParts)
	e.abandoned = make([]chan struct{}, e.NumParts)
	e.stopOnce = make([]sync.Once, e.NumParts)
	e.ctxDone = ctxDoneChan(ctx)
	for i := range e.outputs {
		e.outputs[i] = make(chan batchOrErr, depth)
		e.abandoned[i] = make(chan struct{})
	}
	n := e.Input.Partitions()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			e.produce(ctx, p)
		}(p)
	}
	go func() {
		wg.Wait()
		for _, ch := range e.outputs {
			close(ch)
		}
	}()
}

// send delivers v to output partition p, giving up when that partition's
// consumer has closed its stream or the query is cancelled. Reports
// whether the value was delivered.
func (e *RepartitionExec) send(p int, v batchOrErr) bool {
	select {
	case e.outputs[p] <- v:
		return true
	case <-e.abandoned[p]:
		return false
	case <-e.ctxDone:
		return false
	}
}

func (e *RepartitionExec) fanError(err error) {
	for p := range e.outputs {
		e.send(p, batchOrErr{err: err})
	}
}

func (e *RepartitionExec) produce(ctx *physical.ExecContext, p int) {
	s, err := e.Input.Execute(ctx, p)
	if err != nil {
		e.fanError(err)
		return
	}
	defer s.Close()
	sent := e.Metrics().Counter("batches_sent")
	rr := p % e.NumParts
	// Hash buffer reused across batches: the same compute.HashBatch
	// kernels drive aggregation group tables and join build/probe, so all
	// three hash consumers agree on row hashes.
	var hashBuf []uint64
	for {
		if err := checkCancel(ctx); err != nil {
			e.fanError(err)
			return
		}
		b, err := s.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			e.fanError(err)
			return
		}
		if b.NumRows() == 0 {
			continue
		}
		switch e.Scheme {
		case RoundRobinPartitioning:
			if e.send(rr, batchOrErr{batch: b}) {
				sent.Add(1)
			}
			rr = (rr + 1) % e.NumParts
		case HashPartitioning:
			parts, buf, err := e.splitByHash(b, hashBuf)
			hashBuf = buf
			if err != nil {
				e.fanError(err)
				return
			}
			for i, pb := range parts {
				if pb != nil && pb.NumRows() > 0 {
					if e.send(i, batchOrErr{batch: pb}) {
						sent.Add(1)
					}
				}
			}
		}
	}
}

func (e *RepartitionExec) splitByHash(b *arrow.RecordBatch, hashBuf []uint64) ([]*arrow.RecordBatch, []uint64, error) {
	n := b.NumRows()
	keys := make([]arrow.Array, len(e.HashExprs))
	for i, x := range e.HashExprs {
		a, err := physical.EvalToArray(x, b)
		if err != nil {
			return nil, hashBuf, err
		}
		keys[i] = a
	}
	hashes := compute.HashBatch(keys, n, hashBuf)
	masks := make([]arrow.Bitmap, e.NumParts)
	counts := make([]int, e.NumParts)
	for i := range masks {
		masks[i] = arrow.NewBitmap(n)
	}
	for i, h := range hashes {
		p := int(h % uint64(e.NumParts))
		masks[p].Set(i)
		counts[p]++
	}
	out := make([]*arrow.RecordBatch, e.NumParts)
	for p := 0; p < e.NumParts; p++ {
		if counts[p] == 0 {
			continue
		}
		if counts[p] == n {
			out[p] = b
			continue
		}
		mask := arrow.NewBool(masks[p], nil, n)
		fb, err := compute.FilterBatch(b, mask)
		if err != nil {
			return nil, hashes, err
		}
		out[p] = fb
	}
	return out, hashes, nil
}

func (e *RepartitionExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	e.mu.Lock()
	if !e.started {
		e.started = true
		e.start(ctx)
	}
	ch := e.outputs[partition]
	e.mu.Unlock()
	stop := func() {
		e.stopOnce[partition].Do(func() { close(e.abandoned[partition]) })
	}
	return physical.InstrumentStream(&chanStream{schema: e.Schema(), ch: ch, stop: stop}, e.Metrics()), nil
}
