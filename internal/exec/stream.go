// Package exec implements the streaming execution engine (paper Section
// 5.5): pull-based partitioned operators exchanging arrow RecordBatches,
// Volcano-style repartitioning across goroutines, two-phase partitioned
// hash aggregation, external sort with spilling, hash / merge / nested
// loop joins, window evaluation, and the physical planner and optimizer
// that lower logical plans onto these operators.
package exec

import (
	"fmt"
	"io"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/physical"
)

// funcStream adapts next/close functions into a Stream.
type funcStream struct {
	schema *arrow.Schema
	next   func() (*arrow.RecordBatch, error)
	close  func()
	closed bool
}

// NewFuncStream builds a Stream from callbacks; close may be nil.
func NewFuncStream(schema *arrow.Schema, next func() (*arrow.RecordBatch, error), close func()) physical.Stream {
	return &funcStream{schema: schema, next: next, close: close}
}

func (s *funcStream) Schema() *arrow.Schema { return s.schema }
func (s *funcStream) Next() (*arrow.RecordBatch, error) {
	return s.next()
}
func (s *funcStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.close != nil {
		s.close()
	}
}

// batchOrErr travels through exchange channels.
type batchOrErr struct {
	batch *arrow.RecordBatch
	err   error
}

// chanStream reads batches from a channel fed by producer goroutines.
type chanStream struct {
	schema *arrow.Schema
	ch     <-chan batchOrErr
	stop   func()
	done   bool
}

func (s *chanStream) Schema() *arrow.Schema { return s.schema }
func (s *chanStream) Next() (*arrow.RecordBatch, error) {
	if s.done {
		return nil, io.EOF
	}
	be, ok := <-s.ch
	if !ok {
		s.done = true
		return nil, io.EOF
	}
	if be.err != nil {
		s.done = true
		return nil, be.err
	}
	return be.batch, nil
}
func (s *chanStream) Close() {
	if s.stop != nil {
		s.stop()
	}
	// Drain so producers unblock.
	go func() {
		for range s.ch {
		}
	}()
	s.done = true
}

// drainAll pulls every batch from a stream.
func drainAll(s physical.Stream) ([]*arrow.RecordBatch, error) {
	defer s.Close()
	var out []*arrow.RecordBatch
	for {
		b, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if b.NumRows() > 0 {
			out = append(out, b)
		}
	}
}

// CollectPlan executes every partition of a plan concurrently and returns
// all batches.
func CollectPlan(ctx *physical.ExecContext, plan physical.ExecutionPlan) ([]*arrow.RecordBatch, error) {
	n := plan.Partitions()
	if n == 1 {
		s, err := plan.Execute(ctx, 0)
		if err != nil {
			return nil, err
		}
		return drainAll(s)
	}
	results := make([][]*arrow.RecordBatch, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := plan.Execute(ctx, p)
			if err != nil {
				errs[p] = err
				return
			}
			results[p], errs[p] = drainAll(s)
		}(p)
	}
	wg.Wait()
	var out []*arrow.RecordBatch
	for p := 0; p < n; p++ {
		if errs[p] != nil {
			return nil, errs[p]
		}
		out = append(out, results[p]...)
	}
	return out, nil
}

// CollectBatch executes a plan and concatenates the result into one batch.
func CollectBatch(ctx *physical.ExecContext, plan physical.ExecutionPlan) (*arrow.RecordBatch, error) {
	batches, err := CollectPlan(ctx, plan)
	if err != nil {
		return nil, err
	}
	return compute.ConcatBatches(plan.Schema(), batches)
}

// ctxDoneChan returns the context's cancellation channel, or nil (which
// blocks forever in a select) when the query has no context.
func ctxDoneChan(ctx *physical.ExecContext) <-chan struct{} {
	if ctx.Ctx == nil {
		return nil
	}
	return ctx.Ctx.Done()
}

func checkCancel(ctx *physical.ExecContext) error {
	if ctx.Ctx == nil {
		return nil
	}
	select {
	case <-ctx.Ctx.Done():
		return ctx.Ctx.Err()
	default:
		return nil
	}
}

func oneChild(children []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	if len(children) != 1 {
		return nil, fmt.Errorf("exec: expected 1 child, got %d", len(children))
	}
	return children[0], nil
}
