package exec

import (
	"bytes"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/rowformat"
)

// groupTable assigns dense group ids to rows of key columns. It is the
// shared grouping structure behind hash aggregation and the hash-join
// build/probe maps, and it deliberately mirrors the paper's Section 6.3
// design: rows are hashed batch-at-a-time through the compute hash
// kernels (the same kernels hash repartitioning uses), group ids live in
// an open-addressing power-of-two table of (hash, id) slots, and the full
// encoded key is compared only on a 64-bit hash match. Growth rehashes the
// stored slot hashes — keys are never re-encoded.
//
// Two key layouts:
//
//   - primitive fast path: a single fixed-width integer-backed key column
//     (int8..int64, uint8..uint64, date32, timestamp, decimal) is keyed
//     directly by its 64-bit value bits plus a dedicated out-of-table null
//     group, skipping rowformat entirely;
//   - generic path: keys are rowformat-encoded once on first sight into an
//     append-only arena (one allocation amortized over many keys, no
//     per-key copies), and duplicate rows only re-encode into a reusable
//     scratch buffer for the equality check.
//
// The steady-state assign path performs zero allocations and zero
// map-string conversions.
type groupTable struct {
	enc   *rowformat.Encoder
	types []*arrow.DataType

	// Open-addressing slots, power-of-two sized. slotGroup holds group
	// id + 1 so the zero value means empty.
	slotHash  []uint64
	slotGroup []uint32

	nGroups int

	// Generic path: encoded keys packed back-to-back; offsets has
	// nGroups+1 entries.
	arena   []byte
	offsets []uint32

	// Primitive fast path.
	fast     bool
	fastVals []int64
	nullGid  int32 // group id of the null key, -1 when unseen

	// Reusable per-batch scratch.
	hashBuf []uint64
	scratch []byte
}

// fastPathType reports whether a single key of this type can be keyed
// directly by its integer value bits. Floats are excluded (-0.0/NaN
// normalization lives in rowformat), booleans and strings use the generic
// path.
func fastPathType(t *arrow.DataType) bool {
	switch t.ID {
	case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64,
		arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64,
		arrow.DATE32, arrow.TIMESTAMP, arrow.DECIMAL:
		return true
	}
	return false
}

func newGroupTable(types []*arrow.DataType) (*groupTable, error) {
	return newGroupTableSized(types, 0)
}

// newGroupTableSized pre-sizes the slot table for an estimated number of
// distinct keys (0 means the default), avoiding rehash cascades on large
// builds without over-allocating for small ones.
func newGroupTableSized(types []*arrow.DataType, estKeys int) (*groupTable, error) {
	enc, err := rowformat.NewEncoder(types, nil)
	if err != nil {
		return nil, err
	}
	slots := 64
	for slots*3 < estKeys*4 { // keep load factor under 3/4 at estKeys
		slots *= 2
	}
	t := &groupTable{
		enc:       enc,
		types:     types,
		slotHash:  make([]uint64, slots),
		slotGroup: make([]uint32, slots),
		offsets:   []uint32{0},
		nullGid:   -1,
		fast:      len(types) == 1 && fastPathType(types[0]),
	}
	return t, nil
}

func (t *groupTable) numGroups() int { return t.nGroups }

// memUsage approximates the table's heap footprint for memory accounting.
func (t *groupTable) memUsage() int64 {
	return int64(len(t.arena)) +
		int64(len(t.slotHash))*12 + // slotHash + slotGroup
		int64(len(t.offsets))*4 +
		int64(len(t.fastVals))*8
}

// reset clears all groups but keeps allocated capacity for reuse (early
// partial flushes and spills churn the table).
func (t *groupTable) reset() {
	for i := range t.slotGroup {
		t.slotGroup[i] = 0
	}
	t.nGroups = 0
	t.arena = t.arena[:0]
	t.offsets = t.offsets[:1]
	t.fastVals = t.fastVals[:0]
	t.nullGid = -1
}

// grow doubles the slot table, re-inserting the stored hashes. Keys are
// not touched: every live slot already carries its full 64-bit hash.
func (t *groupTable) grow() {
	oldHash, oldGroup := t.slotHash, t.slotGroup
	n := len(oldHash) * 2
	t.slotHash = make([]uint64, n)
	t.slotGroup = make([]uint32, n)
	mask := uint64(n - 1)
	for i, g := range oldGroup {
		if g == 0 {
			continue
		}
		h := oldHash[i]
		slot := h & mask
		for t.slotGroup[slot] != 0 {
			slot = (slot + 1) & mask
		}
		t.slotHash[slot] = h
		t.slotGroup[slot] = g
	}
}

// groupKey returns the encoded key bytes of group g (generic path).
func (t *groupTable) groupKey(g uint32) []byte {
	return t.arena[t.offsets[g]:t.offsets[g+1]]
}

// assign maps each of the first numRows rows of the key columns to a
// dense group id, creating groups as needed. out is reused when it has
// capacity.
func (t *groupTable) assign(cols []arrow.Array, numRows int, out []uint32) []uint32 {
	t.hashBuf = compute.HashBatch(cols, numRows, t.hashBuf)
	return t.assignHashed(cols, numRows, t.hashBuf, out)
}

// assignHashed is assign with caller-provided row hashes (which must come
// from compute.HashBatch over the same columns).
func (t *groupTable) assignHashed(cols []arrow.Array, numRows int, hashes []uint64, out []uint32) []uint32 {
	if cap(out) < numRows {
		out = make([]uint32, numRows)
	} else {
		out = out[:numRows]
	}
	if t.fast {
		switch a := cols[0].(type) {
		case *arrow.Int8Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Int16Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Int32Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Int64Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Uint8Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Uint16Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Uint32Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.Uint64Array:
			assignFast(t, a, numRows, hashes, out)
		case *arrow.NullArray:
			// An all-null batch for an integer-typed key: every row lands
			// in the dedicated null group.
			if t.nullGid < 0 {
				t.nullGid = int32(t.nGroups)
				t.fastVals = append(t.fastVals, 0)
				t.nGroups++
			}
			for i := 0; i < numRows; i++ {
				out[i] = uint32(t.nullGid)
			}
		default:
			panic("exec: groupTable fast path got non-integer array " + cols[0].DataType().String())
		}
		return out
	}
	t.assignGeneric(cols, numRows, hashes, out)
	return out
}

// assignFast is the single-primitive-column path: group identity is the
// 64-bit value bits, nulls go to a dedicated group outside the slot table.
func assignFast[T arrow.Number](t *groupTable, a *arrow.NumericArray[T], numRows int, hashes []uint64, out []uint32) {
	vals := a.Values()
	hasNulls := a.NullCount() > 0
	for i := 0; i < numRows; i++ {
		if hasNulls && a.IsNull(i) {
			if t.nullGid < 0 {
				t.nullGid = int32(t.nGroups)
				t.fastVals = append(t.fastVals, 0)
				t.nGroups++
			}
			out[i] = uint32(t.nullGid)
			continue
		}
		v := int64(vals[i])
		if (t.nGroups+1)*4 > len(t.slotGroup)*3 {
			t.grow()
		}
		h := hashes[i]
		mask := uint64(len(t.slotGroup) - 1)
		slot := h & mask
		for {
			g := t.slotGroup[slot]
			if g == 0 {
				gid := uint32(t.nGroups)
				t.slotHash[slot] = h
				t.slotGroup[slot] = gid + 1
				t.fastVals = append(t.fastVals, v)
				t.nGroups++
				out[i] = gid
				break
			}
			if t.slotHash[slot] == h && t.fastVals[g-1] == v {
				out[i] = g - 1
				break
			}
			slot = (slot + 1) & mask
		}
	}
}

// assignGeneric is the multi-column / variable-width path: rowformat keys,
// encoded lazily — only on a hash match (for the equality check) or on
// insertion (into the arena).
func (t *groupTable) assignGeneric(cols []arrow.Array, numRows int, hashes []uint64, out []uint32) {
	for i := 0; i < numRows; i++ {
		if (t.nGroups+1)*4 > len(t.slotGroup)*3 {
			t.grow()
		}
		h := hashes[i]
		mask := uint64(len(t.slotGroup) - 1)
		slot := h & mask
		encoded := false
		for {
			g := t.slotGroup[slot]
			if g == 0 {
				if !encoded {
					t.scratch = t.enc.AppendRowKey(t.scratch[:0], cols, i)
					encoded = true
				}
				gid := uint32(t.nGroups)
				t.slotHash[slot] = h
				t.slotGroup[slot] = gid + 1
				t.arena = append(t.arena, t.scratch...)
				t.offsets = append(t.offsets, uint32(len(t.arena)))
				t.nGroups++
				out[i] = gid
				break
			}
			if t.slotHash[slot] == h {
				if !encoded {
					t.scratch = t.enc.AppendRowKey(t.scratch[:0], cols, i)
					encoded = true
				}
				if bytes.Equal(t.scratch, t.groupKey(g-1)) {
					out[i] = g - 1
					break
				}
			}
			slot = (slot + 1) & mask
		}
	}
}

// lookupScratch holds the per-caller reusable buffers for lookupInto, so
// concurrent probers can share one read-only table (CollectLeft joins).
type lookupScratch struct {
	hashBuf []uint64
	scratch []byte
}

// lookupInto resolves each row's group id without inserting: -1 when the
// key is absent. Rows with NULL in any key column also get -1 (join
// semantics: NULL keys never match). The table itself is only read, all
// mutable scratch lives in ls.
func (t *groupTable) lookupInto(cols []arrow.Array, numRows int, ls *lookupScratch, out []int32) []int32 {
	ls.hashBuf = compute.HashBatch(cols, numRows, ls.hashBuf)
	if cap(out) < numRows {
		out = make([]int32, numRows)
	} else {
		out = out[:numRows]
	}
	mask := uint64(len(t.slotGroup) - 1)
	for i := 0; i < numRows; i++ {
		out[i] = -1
	}
	if t.nGroups == 0 {
		return out
	}
	if t.fast {
		// The fast path compares stored value bits; nulls are excluded up
		// front (the dedicated null group is unreachable by design), so an
		// all-null batch matches nothing.
		vals := fastInt64Values(cols[0])
		if vals == nil {
			return out
		}
		for i := 0; i < numRows; i++ {
			if cols[0].IsNull(i) {
				continue
			}
			h := ls.hashBuf[i]
			slot := h & mask
			for {
				g := t.slotGroup[slot]
				if g == 0 {
					break
				}
				if t.slotHash[slot] == h && t.fastVals[g-1] == vals(i) {
					out[i] = int32(g - 1)
					break
				}
				slot = (slot + 1) & mask
			}
		}
		return out
	}
	t.lookupGeneric(cols, numRows, ls, out)
	return out
}

func (t *groupTable) lookupGeneric(cols []arrow.Array, numRows int, ls *lookupScratch, out []int32) {
	mask := uint64(len(t.slotGroup) - 1)
	anyNulls := false
	for _, c := range cols {
		if c.NullCount() > 0 {
			anyNulls = true
			break
		}
	}
	for i := 0; i < numRows; i++ {
		if anyNulls {
			isNull := false
			for _, c := range cols {
				if c.IsNull(i) {
					isNull = true
					break
				}
			}
			if isNull {
				continue
			}
		}
		h := ls.hashBuf[i]
		slot := h & mask
		encoded := false
		for {
			g := t.slotGroup[slot]
			if g == 0 {
				break
			}
			if t.slotHash[slot] == h {
				if !encoded {
					ls.scratch = t.enc.AppendRowKey(ls.scratch[:0], cols, i)
					encoded = true
				}
				if bytes.Equal(ls.scratch, t.groupKey(g-1)) {
					out[i] = int32(g - 1)
					break
				}
			}
			slot = (slot + 1) & mask
		}
	}
}

// fastInt64Values returns an accessor widening any integer-backed numeric
// array slot to int64, or nil when the array is not one.
func fastInt64Values(a arrow.Array) func(i int) int64 {
	switch arr := a.(type) {
	case *arrow.Int8Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	case *arrow.Int16Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	case *arrow.Int32Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	case *arrow.Int64Array:
		return func(i int) int64 { return arr.Value(i) }
	case *arrow.Uint8Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	case *arrow.Uint16Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	case *arrow.Uint32Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	case *arrow.Uint64Array:
		return func(i int) int64 { return int64(arr.Value(i)) }
	}
	return nil
}

// groupColumns materializes the group keys back into arrays, in group-id
// order.
func (t *groupTable) groupColumns() ([]arrow.Array, error) {
	if t.fast {
		return []arrow.Array{t.fastColumn()}, nil
	}
	return t.enc.DecodeArena(t.arena, t.offsets[:t.nGroups+1])
}

func (t *groupTable) fastColumn() arrow.Array {
	dt := t.types[0]
	switch dt.ID {
	case arrow.INT8:
		return buildFastColumn[int8](t.fastVals, t.nullGid, dt)
	case arrow.INT16:
		return buildFastColumn[int16](t.fastVals, t.nullGid, dt)
	case arrow.INT32, arrow.DATE32:
		return buildFastColumn[int32](t.fastVals, t.nullGid, dt)
	case arrow.UINT8:
		return buildFastColumn[uint8](t.fastVals, t.nullGid, dt)
	case arrow.UINT16:
		return buildFastColumn[uint16](t.fastVals, t.nullGid, dt)
	case arrow.UINT32:
		return buildFastColumn[uint32](t.fastVals, t.nullGid, dt)
	case arrow.UINT64:
		return buildFastColumn[uint64](t.fastVals, t.nullGid, dt)
	default: // INT64, TIMESTAMP, DECIMAL
		return buildFastColumn[int64](t.fastVals, t.nullGid, dt)
	}
}

func buildFastColumn[T arrow.Number](vals []int64, nullGid int32, dt *arrow.DataType) arrow.Array {
	b := arrow.NewNumericBuilder[T](dt)
	b.Reserve(len(vals))
	for g, v := range vals {
		if int32(g) == nullGid {
			b.AppendNull()
		} else {
			b.Append(T(v))
		}
	}
	return b.Finish()
}
