package exec

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
)

// countingPlan wraps an ExecutionPlan and counts Execute calls.
type countingPlan struct {
	physical.ExecutionPlan
	executes atomic.Int64
}

func (c *countingPlan) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	c.executes.Add(1)
	return c.ExecutionPlan.Execute(ctx, partition)
}

// TestHashJoinSharedBuildOnce pins the CollectLeft build contract after
// the mutex-around-CollectPlan was replaced with sync.Once: concurrent
// probe partitions must trigger exactly one build of the left side and
// all see the same table.
func TestHashJoinSharedBuildOnce(t *testing.T) {
	users, orders := usersAndOrders(t)
	uScan, err := users.Scan(catalog.ScanRequest{Partitions: 1, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	oScan, err := orders.Scan(catalog.ScanRequest{Partitions: 2, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	left := &countingPlan{ExecutionPlan: NewTableScanExec("users", uScan)}
	right := NewTableScanExec("orders", oScan)
	j := NewHashJoinExec(left, right, []JoinOn{{
		L: physical.NewColumnExpr(0, "uid", arrow.Int64),
		R: physical.NewColumnExpr(0, "ouid", arrow.Int64),
	}}, nil, logical.InnerJoin, CollectLeft)

	ctx := physical.NewExecContext()
	parts := j.Partitions()
	var wg sync.WaitGroup
	rows := make([][]string, parts)
	errs := make([]error, parts)
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := j.Execute(ctx, p)
			if err != nil {
				errs[p] = err
				return
			}
			batches, err := drainAll(s)
			if err != nil {
				errs[p] = err
				return
			}
			for _, b := range batches {
				rows[p] = append(rows[p], rowsAsStrings(b)...)
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
	}
	if got := left.executes.Load(); got != 1 {
		t.Fatalf("left side executed %d times; the shared build must run once", got)
	}
	var all []string
	for _, r := range rows {
		all = append(all, r...)
	}
	sort.Strings(all)
	want := []string{`1|"ann"|1|100|`, `1|"ann"|1|150|`, `3|"cat"|3|300|`}
	sort.Strings(want)
	if len(all) != len(want) {
		t.Fatalf("got %d rows %v, want %v", len(all), all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("row %d: got %q, want %q", i, all[i], want[i])
		}
	}
}
