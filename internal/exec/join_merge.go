package exec

import (
	"bytes"
	"fmt"
	"io"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// SortMergeJoinExec joins two inputs that are both sorted ascending on the
// join keys (paper Section 6.4/6.7). It avoids hash table construction and
// preserves the key ordering of its output.
type SortMergeJoinExec struct {
	physical.OpMetrics
	Left   physical.ExecutionPlan
	Right  physical.ExecutionPlan
	On     []JoinOn
	Type   logical.JoinType // Inner, Left, Right
	schema *arrow.Schema
}

// NewSortMergeJoinExec computes the output schema.
func NewSortMergeJoinExec(left, right physical.ExecutionPlan, on []JoinOn, jt logical.JoinType) (*SortMergeJoinExec, error) {
	switch jt {
	case logical.InnerJoin, logical.LeftJoin, logical.RightJoin, logical.LeftSemiJoin, logical.LeftAntiJoin:
	default:
		return nil, fmt.Errorf("exec: sort merge join does not support %s", jt)
	}
	return &SortMergeJoinExec{Left: left, Right: right, On: on, Type: jt,
		schema: joinOutputSchema(left.Schema(), right.Schema(), jt)}, nil
}

func (e *SortMergeJoinExec) Schema() *arrow.Schema { return e.schema }
func (e *SortMergeJoinExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Left, e.Right}
}
func (e *SortMergeJoinExec) Partitions() int { return 1 }
func (e *SortMergeJoinExec) OutputOrdering() []physical.SortField {
	// Output preserves the left key order for bare-column keys.
	var out []physical.SortField
	for _, p := range e.On {
		c, ok := p.L.(*physical.ColumnExpr)
		if !ok {
			return nil
		}
		out = append(out, physical.SortField{Col: c.Index})
	}
	return out
}
func (e *SortMergeJoinExec) String() string {
	return fmt.Sprintf("SortMergeJoinExec: type=%s on=%d keys", e.Type, len(e.On))
}
func (e *SortMergeJoinExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("exec: join takes 2 children")
	}
	return NewSortMergeJoinExec(ch[0], ch[1], e.On, e.Type)
}

// mergeSide is one materialized, key-encoded input.
type mergeSide struct {
	batch *arrow.RecordBatch
	keys  [][]byte
}

func (e *SortMergeJoinExec) loadSide(ctx *physical.ExecContext, plan physical.ExecutionPlan, exprs []physical.PhysicalExpr) (*mergeSide, error) {
	batches, err := CollectPlan(ctx, &CoalescePartitionsExec{Input: plan})
	if err != nil {
		return nil, err
	}
	batch, err := compute.ConcatBatches(plan.Schema(), batches)
	if err != nil {
		return nil, err
	}
	enc, err := joinKeyEncoderFromExprs(exprs)
	if err != nil {
		return nil, err
	}
	var keys [][]byte
	if batch.NumRows() > 0 {
		keys, err = encodeJoinKeys(enc, exprs, batch)
		if err != nil {
			return nil, err
		}
	}
	return &mergeSide{batch: batch, keys: keys}, nil
}

func joinKeyEncoderFromExprs(exprs []physical.PhysicalExpr) (*rowformat.Encoder, error) {
	types := make([]*arrow.DataType, len(exprs))
	for i, x := range exprs {
		types[i] = x.DataType()
	}
	return rowformat.NewEncoder(types, nil)
}

func (e *SortMergeJoinExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: merge join has a single partition")
	}
	lex := make([]physical.PhysicalExpr, len(e.On))
	rex := make([]physical.PhysicalExpr, len(e.On))
	for i, p := range e.On {
		lex[i] = p.L
		rex[i] = p.R
	}
	left, err := e.loadSide(ctx, e.Left, lex)
	if err != nil {
		return nil, err
	}
	right, err := e.loadSide(ctx, e.Right, rex)
	if err != nil {
		return nil, err
	}
	m := e.Metrics()
	m.Counter("build_rows").Store(int64(left.batch.NumRows()))
	m.Counter("probe_rows").Store(int64(right.batch.NumRows()))

	var li, ri []int32
	nl, nr := left.batch.NumRows(), right.batch.NumRows()
	lm := make([]bool, nl)
	rm := make([]bool, nr)
	i, j := 0, 0
	for i < nl && j < nr {
		lk, rk := left.keys[i], right.keys[j]
		// NULL keys (nil) sort conceptually last and never match.
		if lk == nil {
			i++
			continue
		}
		if rk == nil {
			j++
			continue
		}
		c := bytes.Compare(lk, rk)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Gather both equal-key runs and emit their product.
			i2 := i
			for i2 < nl && left.keys[i2] != nil && bytes.Equal(left.keys[i2], lk) {
				i2++
			}
			j2 := j
			for j2 < nr && right.keys[j2] != nil && bytes.Equal(right.keys[j2], rk) {
				j2++
			}
			for x := i; x < i2; x++ {
				lm[x] = true
				for y := j; y < j2; y++ {
					rm[y] = true
					li = append(li, int32(x))
					ri = append(ri, int32(y))
				}
			}
			i, j = i2, j2
		}
	}

	var out *arrow.RecordBatch
	switch e.Type {
	case logical.InnerJoin:
		out = combinedBatch(e.schema, left.batch, right.batch, li, ri)
	case logical.LeftJoin:
		for x := 0; x < nl; x++ {
			if !lm[x] {
				li = append(li, int32(x))
				ri = append(ri, -1)
			}
		}
		out = combinedBatch(e.schema, left.batch, right.batch, li, ri)
	case logical.RightJoin:
		for y := 0; y < nr; y++ {
			if !rm[y] {
				li = append(li, -1)
				ri = append(ri, int32(y))
			}
		}
		out = combinedBatch(e.schema, left.batch, right.batch, li, ri)
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		want := e.Type == logical.LeftSemiJoin
		var keep []int32
		for x := 0; x < nl; x++ {
			if lm[x] == want {
				keep = append(keep, int32(x))
			}
		}
		out = compute.TakeBatch(left.batch, keep)
	}

	pos := 0
	return physical.InstrumentStream(NewFuncStream(e.schema, func() (*arrow.RecordBatch, error) {
		if pos >= out.NumRows() {
			return nil, io.EOF
		}
		n := ctx.BatchRows
		if n <= 0 {
			n = 8192
		}
		if pos+n > out.NumRows() {
			n = out.NumRows() - pos
		}
		b := out.Slice(pos, n)
		pos += n
		return b, nil
	}, nil), m), nil
}
