package exec

import (
	"fmt"
	"io"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// JoinOn is one equality pair: an expression over the left input and one
// over the right input.
type JoinOn struct {
	L physical.PhysicalExpr
	R physical.PhysicalExpr
}

// JoinMode selects how the build side is produced.
type JoinMode int

// Join distribution modes.
const (
	// CollectLeft builds one shared hash table from the whole left input
	// and probes with each right partition.
	CollectLeft JoinMode = iota
	// PartitionedJoin builds a table per partition; the planner hash
	// repartitions both inputs on the join keys first.
	PartitionedJoin
)

// HashJoinExec is a vectorized in-memory hash join supporting all eight
// join types (paper Section 6.4). The left input is the build side. Keys
// are normalized with the row format, so equality is a single byte
// comparison and NULL keys never match.
type HashJoinExec struct {
	physical.OpMetrics
	Left   physical.ExecutionPlan
	Right  physical.ExecutionPlan
	On     []JoinOn
	Filter physical.PhysicalExpr // residual over (left ++ right) schema
	Type   logical.JoinType
	Mode   JoinMode

	schema *arrow.Schema

	buildOnce sync.Once
	built     *builtTable
	buildErr  error
}

// NewHashJoinExec computes the join output schema.
func NewHashJoinExec(left, right physical.ExecutionPlan, on []JoinOn, filter physical.PhysicalExpr,
	jt logical.JoinType, mode JoinMode) *HashJoinExec {
	return &HashJoinExec{
		Left: left, Right: right, On: on, Filter: filter, Type: jt, Mode: mode,
		schema: joinOutputSchema(left.Schema(), right.Schema(), jt),
	}
}

func joinOutputSchema(l, r *arrow.Schema, jt logical.JoinType) *arrow.Schema {
	nullable := func(s *arrow.Schema) []arrow.Field {
		fields := make([]arrow.Field, s.NumFields())
		for i, f := range s.Fields() {
			f.Nullable = true
			fields[i] = f
		}
		return fields
	}
	switch jt {
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		return l
	case logical.RightSemiJoin, logical.RightAntiJoin:
		return r
	case logical.LeftJoin:
		return arrow.NewSchema(append(append([]arrow.Field{}, l.Fields()...), nullable(r)...)...)
	case logical.RightJoin:
		return arrow.NewSchema(append(nullable(l), r.Fields()...)...)
	case logical.FullJoin:
		return arrow.NewSchema(append(nullable(l), nullable(r)...)...)
	default:
		return arrow.NewSchema(append(append([]arrow.Field{}, l.Fields()...), r.Fields()...)...)
	}
}

func (e *HashJoinExec) Schema() *arrow.Schema { return e.schema }
func (e *HashJoinExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Left, e.Right}
}
func (e *HashJoinExec) Partitions() int                      { return e.Right.Partitions() }
func (e *HashJoinExec) OutputOrdering() []physical.SortField { return nil }
func (e *HashJoinExec) String() string {
	mode := "CollectLeft"
	if e.Mode == PartitionedJoin {
		mode = "Partitioned"
	}
	s := fmt.Sprintf("HashJoinExec: type=%s mode=%s on=%d keys", e.Type, mode, len(e.On))
	if e.Filter != nil {
		s += " filter=" + e.Filter.String()
	}
	return s
}
func (e *HashJoinExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("exec: join takes 2 children")
	}
	return NewHashJoinExec(ch[0], ch[1], e.On, e.Filter, e.Type, e.Mode), nil
}

// builtTable is the hashed build side: a shared hash-first groupTable
// assigns each distinct key a dense group id, and head/next singly-linked
// row lists chain the build rows of each group. Probing never converts
// keys to strings — it hashes the probe batch once and compares encoded
// keys only on a 64-bit hash match.
type builtTable struct {
	batch   *arrow.RecordBatch
	gt      *groupTable
	head    []int32 // per group id: first build row, -1 = none
	next    []int32 // per build row: next row with the same key, -1 = end
	visited []bool  // build rows matched (outer/semi/anti tracking)
	vmu     sync.Mutex
}

// estimateKeyCardinality samples up to 1024 row hashes and extrapolates
// the distinct-key count, used to pre-size the build table: high-
// cardinality builds avoid rehash cascades, low-cardinality builds avoid
// allocating a row-count-sized table that stays mostly empty.
func estimateKeyCardinality(hashes []uint64) int {
	n := len(hashes)
	sample := n
	if sample > 1024 {
		sample = 1024
	}
	seen := make(map[uint64]struct{}, sample)
	step := n / sample
	if step < 1 {
		step = 1
	}
	taken := 0
	for i := 0; i < n && taken < sample; i += step {
		seen[hashes[i]] = struct{}{}
		taken++
	}
	if taken == 0 {
		return 0
	}
	est := len(seen) * n / taken
	if est > n {
		est = n
	}
	if est < 16 {
		est = 16
	}
	return est
}

// encodeJoinKeys encodes each row's key; rows with NULL in any key column
// get a nil key (they can never match).
func encodeJoinKeys(enc *rowformat.Encoder, exprs []physical.PhysicalExpr, b *arrow.RecordBatch) ([][]byte, error) {
	cols := make([]arrow.Array, len(exprs))
	for i, x := range exprs {
		a, err := physical.EvalToArray(x, b)
		if err != nil {
			return nil, err
		}
		cols[i] = a
	}
	keys := enc.EncodeRows(cols, b.NumRows())
	for i := range keys {
		for _, c := range cols {
			if c.IsNull(i) {
				keys[i] = nil
				break
			}
		}
	}
	return keys, nil
}

func (e *HashJoinExec) buildFrom(ctx *physical.ExecContext, batches []*arrow.RecordBatch) (*builtTable, error) {
	batch, err := compute.ConcatBatches(e.Left.Schema(), batches)
	if err != nil {
		return nil, err
	}
	types := make([]*arrow.DataType, len(e.On))
	for i, p := range e.On {
		types[i] = p.L.DataType()
	}
	bt := &builtTable{batch: batch}
	n := batch.NumRows()
	if n > 0 {
		cols := make([]arrow.Array, len(e.On))
		for i, p := range e.On {
			a, err := physical.EvalToArray(p.L, batch)
			if err != nil {
				return nil, err
			}
			cols[i] = a
		}
		// One vectorized hash pass feeds both the cardinality estimate
		// (pre-sizing keeps rehashes off large builds) and the inserts.
		hashes := compute.HashBatch(cols, n, nil)
		gt, err := newGroupTableSized(types, estimateKeyCardinality(hashes))
		if err != nil {
			return nil, err
		}
		// Build rows with NULL keys still get group ids (probes can never
		// reach them: non-null probe keys hash and compare differently,
		// and null probe keys are rejected before lookup).
		gids := gt.assignHashed(cols, n, hashes, nil)
		head := make([]int32, gt.numGroups())
		for i := range head {
			head[i] = -1
		}
		next := make([]int32, n)
		// Prepend in reverse so each group's row list stays in ascending
		// build-row order, matching the pre-table output order.
		for i := n - 1; i >= 0; i-- {
			g := gids[i]
			next[i] = head[g]
			head[g] = int32(i)
		}
		bt.gt, bt.head, bt.next = gt, head, next
	} else {
		gt, err := newGroupTable(types)
		if err != nil {
			return nil, err
		}
		bt.gt = gt
	}
	if e.needsBuildTracking() {
		bt.visited = make([]bool, batch.NumRows())
	}
	return bt, nil
}

func (e *HashJoinExec) needsBuildTracking() bool {
	switch e.Type {
	case logical.LeftJoin, logical.FullJoin, logical.LeftSemiJoin, logical.LeftAntiJoin:
		return true
	}
	return false
}

// sharedBuild builds the table once from all left partitions
// (CollectLeft). sync.Once rather than a mutex around the build: the
// build drives the whole left subtree through CollectPlan, and a named
// lock held across that would pin every probe partition behind a lock
// class other code could order against (lockorder flags it). Once gives
// the same run-exactly-once / later-callers-wait semantics with the
// result fields published by its happens-before edge.
func (e *HashJoinExec) sharedBuild(ctx *physical.ExecContext) (*builtTable, error) {
	e.buildOnce.Do(func() {
		batches, err := CollectPlan(ctx, e.Left)
		if err != nil {
			e.buildErr = err
			return
		}
		e.built, e.buildErr = e.buildFrom(ctx, batches)
	})
	return e.built, e.buildErr
}

func (e *HashJoinExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	var bt *builtTable
	var err error
	if e.Mode == CollectLeft {
		bt, err = e.sharedBuild(ctx)
	} else {
		s, serr := e.Left.Execute(ctx, partition)
		if serr != nil {
			return nil, serr
		}
		batches, derr := drainAll(s)
		if derr != nil {
			return nil, derr
		}
		bt, err = e.buildFrom(ctx, batches)
	}
	if err != nil {
		return nil, err
	}
	m := e.Metrics()
	if e.Mode == CollectLeft {
		// The shared build is counted once, not once per probe partition.
		m.Counter("build_rows").Store(int64(bt.batch.NumRows()))
	} else {
		m.Counter("build_rows").Add(int64(bt.batch.NumRows()))
	}
	if e.Mode == CollectLeft && e.needsBuildTracking() && e.Right.Partitions() > 1 {
		// CollectLeft with shared tracking across concurrent probers is
		// planner-prevented; guard anyway (before the probe stream opens,
		// so nothing is left to close on this path).
		return nil, fmt.Errorf("exec: CollectLeft %s join requires single probe partition", e.Type)
	}
	right, err := e.Right.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	probe := &joinProber{exec: e, bt: bt, right: right, ctx: ctx, probeRows: m.Counter("probe_rows")}
	if err := probe.init(); err != nil {
		right.Close()
		return nil, err
	}
	// Only one probe partition may emit the unmatched build rows.
	probe.emitBuildSide = e.needsBuildTracking() && (e.Mode == PartitionedJoin || partition == e.lastProbePartition())
	return physical.InstrumentStream(NewFuncStream(e.schema, probe.next, right.Close), m), nil
}

func (e *HashJoinExec) lastProbePartition() int { return e.Right.Partitions() - 1 }

// joinProber streams probe batches and produces join output. Each prober
// owns its lookup scratch buffers, so concurrent partitions can probe one
// shared read-only build table.
type joinProber struct {
	exec          *HashJoinExec
	bt            *builtTable
	right         physical.Stream
	ctx           *physical.ExecContext
	rexprs        []physical.PhysicalExpr
	keyCols       []arrow.Array
	ls            lookupScratch
	gids          []int32
	probeDone     bool
	buildEmitted  bool
	emitBuildSide bool
	probeRows     *physical.Counter
}

func (p *joinProber) init() error {
	p.rexprs = make([]physical.PhysicalExpr, len(p.exec.On))
	for i, pair := range p.exec.On {
		p.rexprs[i] = pair.R
	}
	p.keyCols = make([]arrow.Array, len(p.rexprs))
	return nil
}

// combined builds the (left ++ right) batch for matched index pairs.
func (p *joinProber) combined(rb *arrow.RecordBatch, li, ri []int32) *arrow.RecordBatch {
	lcols := make([]arrow.Array, p.bt.batch.NumCols())
	for c := 0; c < p.bt.batch.NumCols(); c++ {
		lcols[c] = compute.Take(p.bt.batch.Column(c), li)
	}
	rcols := make([]arrow.Array, rb.NumCols())
	for c := 0; c < rb.NumCols(); c++ {
		rcols[c] = compute.Take(rb.Column(c), ri)
	}
	schema := joinOutputSchema(p.exec.Left.Schema(), p.exec.Right.Schema(), logical.InnerJoin)
	return arrow.NewRecordBatchWithRows(schema, append(lcols, rcols...), len(li))
}

func (p *joinProber) next() (*arrow.RecordBatch, error) {
	for {
		if p.probeDone {
			if p.emitBuildSide && !p.buildEmitted {
				p.buildEmitted = true
				out, err := p.emitBuildRows()
				if err != nil {
					return nil, err
				}
				if out != nil && out.NumRows() > 0 {
					return out, nil
				}
			}
			return nil, io.EOF
		}
		if err := checkCancel(p.ctx); err != nil {
			return nil, err
		}
		rb, err := p.right.Next()
		if err == io.EOF {
			p.probeDone = true
			continue
		}
		if err != nil {
			return nil, err
		}
		if rb.NumRows() == 0 {
			continue
		}
		out, err := p.probeBatch(rb)
		if err != nil {
			return nil, err
		}
		if out != nil && out.NumRows() > 0 {
			return out, nil
		}
	}
}

func (p *joinProber) probeBatch(rb *arrow.RecordBatch) (*arrow.RecordBatch, error) {
	if p.probeRows != nil {
		p.probeRows.Add(int64(rb.NumRows()))
	}
	for i, x := range p.rexprs {
		a, err := physical.EvalToArray(x, rb)
		if err != nil {
			return nil, err
		}
		p.keyCols[i] = a
	}
	// Hash-first lookup: one HashBatch call, full-key compare only on
	// hash match, -1 for absent or NULL keys. No per-row string
	// conversions or map probes.
	p.gids = p.bt.gt.lookupInto(p.keyCols, rb.NumRows(), &p.ls, p.gids)
	var li, ri []int32
	for i, g := range p.gids {
		if g < 0 {
			continue
		}
		for l := p.bt.head[g]; l >= 0; l = p.bt.next[l] {
			li = append(li, l)
			ri = append(ri, int32(i))
		}
	}

	// Residual filter refines matched pairs.
	if p.exec.Filter != nil && len(li) > 0 {
		cb := p.combined(rb, li, ri)
		mask, err := physical.EvalPredicate(p.exec.Filter, cb)
		if err != nil {
			return nil, err
		}
		var fli, fri []int32
		for i := range li {
			if mask.IsValid(i) && mask.Value(i) {
				fli = append(fli, li[i])
				fri = append(fri, ri[i])
			}
		}
		li, ri = fli, fri
	}

	// Track build-side matches.
	if p.bt.visited != nil && len(li) > 0 {
		p.bt.vmu.Lock()
		for _, l := range li {
			p.bt.visited[l] = true
		}
		p.bt.vmu.Unlock()
	}

	switch p.exec.Type {
	case logical.InnerJoin:
		if len(li) == 0 {
			return nil, nil
		}
		return p.combined(rb, li, ri), nil
	case logical.LeftJoin, logical.LeftSemiJoin, logical.LeftAntiJoin:
		// Matched inner part for LeftJoin; semi/anti emit at end.
		if p.exec.Type == logical.LeftJoin && len(li) > 0 {
			return p.combined(rb, li, ri), nil
		}
		return nil, nil
	case logical.RightJoin, logical.FullJoin:
		matched := make([]bool, rb.NumRows())
		for _, r := range ri {
			matched[r] = true
		}
		// Unmatched right rows pair with a NULL left side (index -1).
		for i := 0; i < rb.NumRows(); i++ {
			if !matched[i] {
				li = append(li, -1)
				ri = append(ri, int32(i))
			}
		}
		if len(li) == 0 {
			return nil, nil
		}
		cb := p.combined(rb, li, ri)
		if p.exec.Type == logical.RightJoin {
			return arrow.NewRecordBatchWithRows(p.exec.schema, cb.Columns(), cb.NumRows()), nil
		}
		return arrow.NewRecordBatchWithRows(p.exec.schema, cb.Columns(), cb.NumRows()), nil
	case logical.RightSemiJoin, logical.RightAntiJoin:
		matched := make([]bool, rb.NumRows())
		for _, r := range ri {
			matched[r] = true
		}
		want := p.exec.Type == logical.RightSemiJoin
		var keep []int32
		for i := 0; i < rb.NumRows(); i++ {
			if matched[i] == want {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) == 0 {
			return nil, nil
		}
		return compute.TakeBatch(rb, keep), nil
	}
	return nil, fmt.Errorf("exec: unsupported hash join type %s", p.exec.Type)
}

// emitBuildRows emits build-side rows owed at end of stream: unmatched
// rows (with NULL right side) for Left/Full, matched rows for LeftSemi,
// unmatched for LeftAnti.
func (p *joinProber) emitBuildRows() (*arrow.RecordBatch, error) {
	var keep []int32
	switch p.exec.Type {
	case logical.LeftJoin, logical.FullJoin:
		for i, v := range p.bt.visited {
			if !v {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) == 0 {
			return nil, nil
		}
		lcols := make([]arrow.Array, p.bt.batch.NumCols())
		for c := range lcols {
			lcols[c] = compute.Take(p.bt.batch.Column(c), keep)
		}
		rs := p.exec.Right.Schema()
		rcols := make([]arrow.Array, rs.NumFields())
		for c := 0; c < rs.NumFields(); c++ {
			b := arrow.NewBuilder(rs.Field(c).Type)
			for range keep {
				b.AppendNull()
			}
			rcols[c] = b.Finish()
		}
		return arrow.NewRecordBatchWithRows(p.exec.schema, append(lcols, rcols...), len(keep)), nil
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		want := p.exec.Type == logical.LeftSemiJoin
		for i, v := range p.bt.visited {
			if v == want {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) == 0 {
			return nil, nil
		}
		return compute.TakeBatch(p.bt.batch, keep), nil
	}
	return nil, nil
}
