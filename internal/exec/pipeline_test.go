package exec

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
	"gofusion/internal/physical"
	"gofusion/internal/testutil"
)

// writeSeqGPQ writes n sequential int64 ids into one GPQ file.
func writeSeqGPQ(t *testing.T, path string, n, rowGroupRows int) {
	t.Helper()
	schema := arrow.NewSchema(arrow.NewField("id", arrow.Int64, false))
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < n; i++ {
		b.Append(int64(i))
	}
	if err := parquet.WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{b.Finish()})},
		parquet.WriterOptions{RowGroupRows: rowGroupRows}); err != nil {
		t.Fatal(err)
	}
}

func seqScan(t *testing.T, path string, partitions int) *TableScanExec {
	t.Helper()
	tbl, err := catalog.NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(catalog.ScanRequest{Limit: -1, Partitions: partitions, Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	return NewTableScanExec("t", res)
}

func idGreater(n int64) physical.PhysicalExpr {
	return &physical.BinaryExpr{
		Op:   logical.OpGt,
		L:    physical.NewColumnExpr(0, "id", arrow.Int64),
		R:    &physical.LiteralExpr{Value: arrow.Int64Scalar(n)},
		Type: arrow.Boolean,
	}
}

func sumRows(batches []*arrow.RecordBatch) int64 {
	var rows int64
	for _, b := range batches {
		rows += int64(b.NumRows())
	}
	return rows
}

// TestFusePipelinesShape pins the fusion pass output: a filter+coalesce
// chain over a multi-partition GPQ scan becomes one morsel-driven
// PipelineExec whose Children still expose the original operator chain,
// while a lone fusable operator over a morsel-less source unwraps back
// to plain pull execution.
func TestFusePipelinesShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeSeqGPQ(t, path, 800, 100)

	scan := seqScan(t, path, 2)
	if scan.Result.Morsels == nil || scan.Result.Morsels.Units() == 0 {
		t.Fatal("multi-partition GPQ scan should expose morsels")
	}
	rows := scan.Result.Morsels.Rows
	for i := 1; i < len(rows); i++ {
		if rows[i] > rows[i-1] {
			t.Fatalf("morsels not largest-first: %v", rows)
		}
	}

	chain := &CoalesceBatchesExec{Input: &FilterExec{Input: scan, Predicate: idGreater(99)}, Target: 8192}
	fused, err := fusePipelines(chain)
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := fused.(*PipelineExec)
	if !ok {
		t.Fatalf("fused root = %T, want *PipelineExec", fused)
	}
	if len(seg.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(seg.Stages))
	}
	if !strings.Contains(seg.String(), "scheduler=morsel") {
		t.Fatalf("segment should be morsel-driven: %q", seg.String())
	}
	// EXPLAIN sees the original chain nested under the segment.
	co, ok := seg.Children()[0].(*CoalesceBatchesExec)
	if !ok {
		t.Fatalf("segment child = %T, want *CoalesceBatchesExec", seg.Children()[0])
	}
	fi, ok := co.Input.(*FilterExec)
	if !ok {
		t.Fatalf("coalesce input = %T, want *FilterExec", co.Input)
	}
	if _, ok := fi.Input.(*TableScanExec); !ok {
		t.Fatalf("filter input = %T, want *TableScanExec", fi.Input)
	}

	// A single fusable op over a single-partition (morsel-less) scan is
	// not worth a fused loop and unwraps.
	lone := &FilterExec{Input: seqScan(t, path, 1), Predicate: idGreater(99)}
	unfused, err := fusePipelines(lone)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := unfused.(*FilterExec); !ok {
		t.Fatalf("lone filter fused to %T, want *FilterExec", unfused)
	}
}

// TestFusedMatchesUnfused executes the same chain fused and unfused and
// requires identical results plus clean metric invariants on both.
func TestFusedMatchesUnfused(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeSeqGPQ(t, path, 4000, 100)

	build := func() physical.ExecutionPlan {
		return &CoalesceBatchesExec{
			Input:  &FilterExec{Input: seqScan(t, path, 4), Predicate: idGreater(999)},
			Target: 8192,
		}
	}
	fusedPlan, err := fusePipelines(build())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fusedPlan.(*PipelineExec); !ok {
		t.Fatalf("expected fused plan, got %T", fusedPlan)
	}
	for name, plan := range map[string]physical.ExecutionPlan{"unfused": build(), "fused": fusedPlan} {
		batches, err := CollectPlan(physical.NewExecContext(), plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows := sumRows(batches)
		if rows != 3000 {
			t.Errorf("%s: rows = %d, want 3000", name, rows)
		}
		if err := CheckPlanMetrics(plan, rows); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestFusedGlobalLimitStopsSource checks that a limit fusing into the
// loop stops the morsel/source drain early: the scan must not read all
// row groups to satisfy a small fetch.
func TestFusedGlobalLimitStopsSource(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeSeqGPQ(t, path, 8000, 100)

	scan := seqScan(t, path, 1)
	chain := &GlobalLimitExec{
		Input: &FilterExec{Input: scan, Predicate: idGreater(-1)},
		Skip:  0, Fetch: 50,
	}
	plan, err := fusePipelines(chain)
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := plan.(*PipelineExec)
	if !ok || len(seg.Stages) != 2 {
		t.Fatalf("limit chain should fuse into 2 stages, got %T", plan)
	}
	batches, err := CollectPlan(physical.NewExecContext(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if rows := sumRows(batches); rows != 50 {
		t.Fatalf("rows = %d, want 50", rows)
	}
	if err := CheckPlanMetrics(plan, 50); err != nil {
		t.Error(err)
	}
	if scanned := scan.Metrics().OutputRows(); scanned >= 8000 {
		t.Errorf("fused limit did not stop the source: scan emitted %d rows", scanned)
	}
}

// TestMorselCancellationMidDrain opens every worker of a morsel-driven
// fused segment, pulls one batch each, then cancels the query and
// closes mid-drain. No readahead producer or worker goroutine may
// survive (run under -race and -tags sanitize in CI).
func TestMorselCancellationMidDrain(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeSeqGPQ(t, path, 6400, 100)

	scan := seqScan(t, path, 4)
	plan, err := fusePipelines(&CoalesceBatchesExec{
		Input:  &FilterExec{Input: scan, Predicate: idGreater(-1)},
		Target: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	ctx := physical.NewExecContext()
	ctx.Ctx = cctx

	n := plan.Partitions()
	streams := make([]physical.Stream, n)
	for p := 0; p < n; p++ {
		s, err := plan.Execute(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		streams[p] = s
		if _, err := s.Next(); err == io.EOF {
			t.Fatalf("p%d: EOF before any batch", p)
		} else if err != nil {
			t.Fatalf("p%d first batch: %v", p, err)
		}
	}
	cancel()
	for _, s := range streams {
		for {
			_, err := s.Next()
			if err == io.EOF {
				break // a worker that drained before the cancel landed
			}
			if err != nil {
				break // cancellation error
			}
		}
		s.Close()
	}
}

// TestMorselSchedulingBalancesSkew builds a skewed layout — 80 small
// single-row-group files followed by one fat file with two 30k-row
// groups — and compares worker makespan under static dealing vs the
// morsel queue. Static dealing is greedy in file order, so the fat row
// groups land on partitions already loaded with 20k rows of small
// files (50k-row stragglers). The morsel comparison replays the real
// queue (largest-first chunks, shared cursor) under a deterministic
// worker simulation: the earliest-free worker claims next, and cost is
// the chunk's row count. Dynamic claiming lets idle workers absorb the
// small files, dropping the makespan toward one fat chunk (~35k rows).
func TestMorselSchedulingBalancesSkew(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	dir := t.TempDir()
	var files []string
	for f := 0; f < 80; f++ {
		p := filepath.Join(dir, fmt.Sprintf("small-%02d.gpq", f))
		writeSeqGPQ(t, p, 1000, 1000)
		files = append(files, p)
	}
	fat := filepath.Join(dir, "zfat.gpq")
	writeSeqGPQ(t, fat, 60_000, 30_000)
	files = append(files, fat)

	tbl, err := catalog.NewGPQTable(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(catalog.ScanRequest{Limit: -1, Partitions: 4, Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Morsels == nil {
		t.Fatal("skewed scan should expose morsels")
	}

	// Static makespan proxy: rows dealt to the fullest partition.
	staticRows := make([]int64, 4)
	var total int64
	for p := 0; p < 4; p++ {
		s, err := res.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		for {
			b, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			staticRows[p] += int64(b.NumRows())
		}
		s.Close()
		total += staticRows[p]
	}
	if total != 140_000 {
		t.Fatalf("static total = %d, want 140000", total)
	}
	staticMax := staticRows[0]
	for _, r := range staticRows[1:] {
		if r > staticMax {
			staticMax = r
		}
	}
	// Greedy file-order dealing parks a 30k fat unit on two partitions
	// that already hold 20k rows of small files.
	if staticMax < 45_000 {
		t.Fatalf("static dealing unexpectedly balanced: %v", staticRows)
	}

	// Morsel makespan: replay the real shared queue with four simulated
	// workers; the earliest-finished worker claims the next chunk.
	q := newMorselQueue(res.Morsels)
	clocks := make([]int64, 4)
	for {
		w := 0
		for i := 1; i < 4; i++ {
			if clocks[i] < clocks[w] {
				w = i
			}
		}
		u := q.claim()
		if u < 0 {
			break
		}
		clocks[w] += res.Morsels.Rows[u]
	}
	if got, want := q.claimed(), res.Morsels.Units(); got != want {
		t.Fatalf("claimed %d of %d units", got, want)
	}
	morselMax := clocks[0]
	for _, c := range clocks[1:] {
		if c > morselMax {
			morselMax = c
		}
	}
	if morselMax >= staticMax {
		t.Errorf("morsel makespan %d rows not better than static %d (clocks=%v static=%v)",
			morselMax, staticMax, clocks, staticRows)
	}

	// Executing the morsel-driven segment delivers every row exactly
	// once across concurrently draining workers.
	res2, err := tbl.Scan(catalog.ScanRequest{Limit: -1, Partitions: 4, Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	seg := &PipelineExec{Source: NewTableScanExec("skew", res2)}
	ctx := physical.NewExecContext()
	var wg sync.WaitGroup
	workerRows := make([]int64, 4)
	for p := 0; p < 4; p++ {
		s, err := seg.Execute(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, s physical.Stream) {
			defer wg.Done()
			defer s.Close()
			for {
				b, err := s.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				workerRows[p] += int64(b.NumRows())
			}
		}(p, s)
	}
	wg.Wait()
	var morselTotal int64
	for _, r := range workerRows {
		morselTotal += r
	}
	if morselTotal != 140_000 {
		t.Fatalf("morsel workers delivered %d rows, want 140000 (%v)", morselTotal, workerRows)
	}
}

// TestExchangeBufferDepthDerivesFromPartitions pins the derived default:
// unset buffers scale with target_partitions but never shrink below the
// fixed default.
func TestExchangeBufferDepthDerivesFromPartitions(t *testing.T) {
	ctx := physical.NewExecContext()
	ctx.TargetPartitions = 16
	if got := ctx.ExchangeBufferDepth(); got != 16 {
		t.Errorf("derived depth = %d, want 16", got)
	}
	ctx.TargetPartitions = 2
	if got := ctx.ExchangeBufferDepth(); got != physical.DefaultExchangeBuffer {
		t.Errorf("small-parallelism depth = %d, want %d", got, physical.DefaultExchangeBuffer)
	}
	ctx.ExchangeBuffer = 3
	ctx.TargetPartitions = 16
	if got := ctx.ExchangeBufferDepth(); got != 3 {
		t.Errorf("explicit depth = %d, want 3", got)
	}
}
