package exec

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/physical"
)

// TableScanExec reads from a TableProvider with pushed-down projection,
// filters, and limit (paper Section 6.8).
type TableScanExec struct {
	physical.OpMetrics
	Name   string
	Result *catalog.ScanResult
	order  []physical.SortField
}

// NewTableScanExec wraps a prepared provider scan.
func NewTableScanExec(name string, result *catalog.ScanResult) *TableScanExec {
	ex := &TableScanExec{Name: name, Result: result}
	for _, oc := range result.SortOrder {
		idx := result.Schema.FieldIndex(oc.Name)
		if idx < 0 {
			// A projected-out ordering column ends the usable prefix.
			break
		}
		ex.order = append(ex.order, physical.SortField{Col: idx, Descending: oc.Desc, NullsFirst: oc.Desc})
	}
	return ex
}

func (e *TableScanExec) Schema() *arrow.Schema { return e.Result.Schema }
func (e *TableScanExec) Children() []physical.ExecutionPlan {
	return nil
}
func (e *TableScanExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	if len(ch) != 0 {
		return nil, fmt.Errorf("exec: scan takes no children")
	}
	return e, nil
}
func (e *TableScanExec) Partitions() int { return e.Result.Partitions }
func (e *TableScanExec) OutputOrdering() []physical.SortField {
	return e.order
}

// Unbounded reports whether this scan tails a live source (streams block
// awaiting data instead of returning io.EOF until the source seals).
func (e *TableScanExec) Unbounded() bool { return e.Result.Unbounded }

// WatermarkIndex returns the output-schema index of the source's declared
// event-time column, or -1 when none.
func (e *TableScanExec) WatermarkIndex() int { return e.Result.Watermark - 1 }

func (e *TableScanExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	s, err := e.Result.Open(partition)
	if err != nil {
		return nil, err
	}
	// Tailing sources block in Next awaiting new data; hand them the query
	// context so blocked reads unblock on cancellation.
	if cs, ok := s.(catalog.CtxStream); ok && ctx != nil && ctx.Ctx != nil {
		cs.BindContext(ctx.Ctx)
	}
	return e.instrument(s), nil
}

// instrument wraps one partition stream (static or morsel-driven) with
// the scan's metrics and runtime pruning counters.
func (e *TableScanExec) instrument(s physical.Stream) physical.Stream {
	m := e.Metrics()
	is := physical.InstrumentStream(s, m)
	rt := e.Result.Runtime
	if rt == nil {
		return is
	}
	// Re-publish the scan-wide pruning totals on every stream close (the
	// counters are monotone, so Store of the latest totals is exact once
	// all partitions have closed).
	rgPruned := m.Counter("row_groups_pruned")
	rgScanned := m.Counter("row_groups_scanned")
	pagesPruned := m.Counter("pages_pruned")
	bloomSkipped := m.Counter("bloom_skipped")
	cacheHits := m.Counter("page_cache_hits")
	cacheMisses := m.Counter("page_cache_misses")
	flush := func() {
		is.Close()
		rgPruned.Store(rt.RowGroupsPruned.Load())
		rgScanned.Store(rt.RowGroupsScanned.Load())
		pagesPruned.Store(rt.PagesPruned.Load())
		bloomSkipped.Store(rt.BloomSkipped.Load())
		cacheHits.Store(rt.PageCacheHits.Load())
		cacheMisses.Store(rt.PageCacheMisses.Load())
	}
	// Publish plan-time pruning immediately so it shows even when the
	// stream is abandoned before any batch is drained.
	rgPruned.Store(rt.RowGroupsPruned.Load())
	return NewFuncStream(e.Schema(), is.Next, flush)
}
func (e *TableScanExec) String() string {
	cols := make([]string, e.Result.Schema.NumFields())
	for i, f := range e.Result.Schema.Fields() {
		cols[i] = f.Name
	}
	s := fmt.Sprintf("TableScanExec: %s partitions=%d cols=[%s]", e.Name, e.Result.Partitions, strings.Join(cols, ","))
	if e.Result.Detail != "" {
		s += " " + e.Result.Detail
	}
	return s
}
