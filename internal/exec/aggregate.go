package exec

import (
	"fmt"
	"io"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/functions"
	"gofusion/internal/memory"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// AggMode selects the aggregation phase (paper Section 6.3: two-phase
// parallel partitioned hash grouping).
type AggMode int

// Aggregation modes.
const (
	// PartialAgg aggregates each input partition independently, emitting
	// partial state; it may flush early under memory pressure.
	PartialAgg AggMode = iota
	// FinalAgg merges partial states (after hash repartitioning on group
	// keys) into final results.
	FinalAgg
	// SingleAgg does both in one operator (single-partition plans).
	SingleAgg
)

// AggSpec describes one aggregate expression in an aggregation node.
type AggSpec struct {
	Fn         *functions.AggFunc
	Name       string
	Args       []physical.PhysicalExpr
	Filter     physical.PhysicalExpr // optional FILTER (WHERE ...)
	ArgTypes   []*arrow.DataType
	OutType    *arrow.DataType
	StateTypes []*arrow.DataType
}

// NewAggSpec resolves an aggregate function application.
func NewAggSpec(fn *functions.AggFunc, name string, args []physical.PhysicalExpr, filter physical.PhysicalExpr) (AggSpec, error) {
	argTypes := make([]*arrow.DataType, len(args))
	for i, a := range args {
		argTypes[i] = a.DataType()
	}
	out, err := fn.ReturnType(argTypes)
	if err != nil {
		return AggSpec{}, err
	}
	states, err := fn.StateTypes(argTypes)
	if err != nil {
		return AggSpec{}, err
	}
	return AggSpec{Fn: fn, Name: name, Args: args, Filter: filter,
		ArgTypes: argTypes, OutType: out, StateTypes: states}, nil
}

// HashAggregateExec implements vectorized hash aggregation with normalized
// group keys, a single-group fast path, a sorted-input streaming fast
// path, early partial flushing, and state spilling.
type HashAggregateExec struct {
	physical.OpMetrics
	Input      physical.ExecutionPlan
	Mode       AggMode
	GroupExprs []physical.PhysicalExpr
	GroupNames []string
	Aggs       []AggSpec
	// InputOrdered marks that the input is sorted on exactly the group
	// expressions, enabling streaming (partially ordered) aggregation.
	InputOrdered bool
	// FlushThreshold caps partial-mode group counts before an early flush
	// (0 = default).
	FlushThreshold int

	schema *arrow.Schema
}

// NewHashAggregateExec computes the operator's output schema from its mode.
func NewHashAggregateExec(input physical.ExecutionPlan, mode AggMode,
	groupExprs []physical.PhysicalExpr, groupNames []string, aggs []AggSpec) *HashAggregateExec {

	var fields []arrow.Field
	for i, g := range groupExprs {
		fields = append(fields, arrow.NewField(groupNames[i], g.DataType(), true))
	}
	if mode == PartialAgg {
		for i, a := range aggs {
			for j, st := range a.StateTypes {
				fields = append(fields, arrow.NewField(fmt.Sprintf("%s_state_%d_%d", a.Name, i, j), st, true))
			}
		}
	} else {
		for _, a := range aggs {
			fields = append(fields, arrow.NewField(a.Name, a.OutType, true))
		}
	}
	return &HashAggregateExec{
		Input: input, Mode: mode,
		GroupExprs: groupExprs, GroupNames: groupNames, Aggs: aggs,
		schema: arrow.NewSchema(fields...),
	}
}

func (e *HashAggregateExec) Schema() *arrow.Schema { return e.schema }
func (e *HashAggregateExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *HashAggregateExec) Partitions() int { return e.Input.Partitions() }
func (e *HashAggregateExec) OutputOrdering() []physical.SortField {
	return nil
}
func (e *HashAggregateExec) String() string {
	modes := [...]string{"Partial", "Final", "Single"}
	gs := make([]string, len(e.GroupExprs))
	for i, g := range e.GroupExprs {
		gs[i] = g.String()
	}
	as := make([]string, len(e.Aggs))
	for i, a := range e.Aggs {
		as[i] = a.Name
	}
	ordered := ""
	if e.InputOrdered {
		ordered = " ordered"
	}
	return fmt.Sprintf("HashAggregateExec: mode=%s%s gby=[%s] aggr=[%s]",
		modes[e.Mode], ordered, strings.Join(gs, ", "), strings.Join(as, ", "))
}
func (e *HashAggregateExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	out := *e
	out.Input = c
	return &out, nil
}

// aggState is one in-flight aggregation hash table plus accumulators.
type aggState struct {
	table *groupTable
	accs  []functions.GroupsAccumulator
}

func (e *HashAggregateExec) newState() (*aggState, error) {
	st := &aggState{}
	if len(e.GroupExprs) > 0 {
		types := make([]*arrow.DataType, len(e.GroupExprs))
		for i, g := range e.GroupExprs {
			types[i] = g.DataType()
		}
		var err error
		st.table, err = newGroupTable(types)
		if err != nil {
			return nil, err
		}
	}
	st.accs = make([]functions.GroupsAccumulator, len(e.Aggs))
	for i, a := range e.Aggs {
		acc, err := a.Fn.NewAccumulator(a.ArgTypes)
		if err != nil {
			return nil, err
		}
		st.accs[i] = acc
	}
	return st, nil
}

func (st *aggState) numGroups() int {
	if st.table == nil {
		return 1
	}
	return st.table.numGroups()
}

// update consumes one input batch.
func (e *HashAggregateExec) update(st *aggState, b *arrow.RecordBatch, groupIdx []uint32) ([]uint32, error) {
	n := b.NumRows()
	if st.table != nil {
		cols := make([]arrow.Array, len(e.GroupExprs))
		for i, g := range e.GroupExprs {
			a, err := physical.EvalToArray(g, b)
			if err != nil {
				return groupIdx, err
			}
			cols[i] = a
		}
		groupIdx = st.table.assign(cols, n, groupIdx)
	} else {
		groupIdx = groupIdx[:0]
		for i := 0; i < n; i++ {
			groupIdx = append(groupIdx, 0)
		}
	}
	numGroups := st.numGroups()

	merge := e.Mode == FinalAgg
	stateCol := len(e.GroupExprs)
	for ai := range e.Aggs {
		a := &e.Aggs[ai]
		if merge {
			// Inputs are flattened state columns, in schema order.
			states := make([]arrow.Array, len(a.StateTypes))
			for j := range states {
				states[j] = b.Column(stateCol)
				stateCol++
			}
			if err := st.accs[ai].MergeStates(states, groupIdx, numGroups); err != nil {
				return groupIdx, err
			}
			continue
		}
		args := make([]arrow.Array, len(a.Args))
		for j, ax := range a.Args {
			arr, err := physical.EvalToArray(ax, b)
			if err != nil {
				return groupIdx, err
			}
			args[j] = arr
		}
		gi := groupIdx
		if a.Filter != nil {
			mask, err := physical.EvalPredicate(a.Filter, b)
			if err != nil {
				return groupIdx, err
			}
			var indices []int32
			for i := 0; i < n; i++ {
				if mask.IsValid(i) && mask.Value(i) {
					indices = append(indices, int32(i))
				}
			}
			for j := range args {
				args[j] = compute.Take(args[j], indices)
			}
			fgi := make([]uint32, len(indices))
			for k, idx := range indices {
				fgi[k] = groupIdx[idx]
			}
			gi = fgi
		}
		if err := st.accs[ai].Update(args, gi, numGroups); err != nil {
			return groupIdx, err
		}
	}
	return groupIdx, nil
}

// emit renders the state as output batches (partial state columns or
// final values depending on mode).
func (e *HashAggregateExec) emit(st *aggState, batchRows int) ([]*arrow.RecordBatch, error) {
	numGroups := st.numGroups()
	if st.table == nil && e.Mode != PartialAgg {
		// Ungrouped aggregates emit one row even over empty input. Size
		// every accumulator to one group (a no-op when input was seen) so
		// aggregates with a non-null identity evaluate it — count() over
		// zero rows is 0, not NULL — instead of being padded with nulls.
		for ai := range e.Aggs {
			a := &e.Aggs[ai]
			var err error
			if e.Mode == FinalAgg {
				err = st.accs[ai].MergeStates(emptyArrays(a.StateTypes), nil, 1)
			} else {
				err = st.accs[ai].Update(emptyArrays(a.ArgTypes), nil, 1)
			}
			if err != nil {
				return nil, err
			}
		}
	} else if st.table != nil && numGroups == 0 {
		return nil, nil
	}

	var cols []arrow.Array
	if st.table != nil {
		gcols, err := st.table.groupColumns()
		if err != nil {
			return nil, err
		}
		cols = append(cols, gcols...)
	}
	for ai := range e.Aggs {
		if e.Mode == PartialAgg {
			states, err := st.accs[ai].State()
			if err != nil {
				return nil, err
			}
			// Accumulators size state arrays to groups they saw; pad.
			for _, s := range states {
				cols = append(cols, padArray(s, numGroups))
			}
		} else {
			out, err := st.accs[ai].Evaluate()
			if err != nil {
				return nil, err
			}
			cols = append(cols, padArray(out, numGroups))
		}
	}
	full := arrow.NewRecordBatchWithRows(e.schema, cols, numGroups)
	if batchRows <= 0 {
		batchRows = 8192
	}
	var out []*arrow.RecordBatch
	for off := 0; off < numGroups; off += batchRows {
		n := batchRows
		if off+n > numGroups {
			n = numGroups - off
		}
		out = append(out, full.Slice(off, n))
	}
	if numGroups == 0 {
		out = append(out, full)
	}
	return out, nil
}

// emptyArrays builds zero-length arrays of the given types (used to size
// accumulators without feeding rows).
func emptyArrays(types []*arrow.DataType) []arrow.Array {
	out := make([]arrow.Array, len(types))
	for i, t := range types {
		out[i] = arrow.NewBuilder(t).Finish()
	}
	return out
}

// padArray extends an array with nulls up to n rows (groups an
// accumulator never saw).
func padArray(a arrow.Array, n int) arrow.Array {
	if a.Len() >= n {
		return a
	}
	b := arrow.NewBuilder(a.DataType())
	for i := 0; i < a.Len(); i++ {
		b.AppendFrom(a, i)
	}
	for i := a.Len(); i < n; i++ {
		b.AppendNull()
	}
	return b.Finish()
}

func (e *HashAggregateExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	var s physical.Stream
	if e.InputOrdered && len(e.GroupExprs) > 0 && e.Mode != FinalAgg {
		s, err = e.executeOrdered(ctx, in)
	} else {
		s, err = e.executeHashed(ctx, in)
	}
	if err != nil {
		return nil, err
	}
	return physical.InstrumentStream(s, e.Metrics()), nil
}

// CanPush allows fusing only partial-mode hash aggregation: a partial
// agg never spills (it early-flushes under pressure), so it fits a
// push loop, while Final/Single modes are genuine pipeline breakers and
// ordered inputs keep the streaming run-detection fast path instead.
func (e *HashAggregateExec) CanPush() bool {
	return e.Mode == PartialAgg && !(e.InputOrdered && len(e.GroupExprs) > 0)
}

// PushInto compiles partial aggregation for a fused loop.
func (e *HashAggregateExec) PushInto(ctx *physical.ExecContext, _ int) (physical.Pusher, error) {
	st, err := e.newState()
	if err != nil {
		return nil, err
	}
	threshold := e.FlushThreshold
	if threshold <= 0 {
		threshold = 1 << 31
	}
	return &aggPusher{
		e: e, ctx: ctx, st: st,
		res:        memory.NewReservation(ctx.Pool, "HashAggregateExec"),
		unregister: memory.RegisterConsumer(ctx.Pool),
		threshold:  threshold,
	}, nil
}

// aggPusher accumulates partial aggregation state batch by batch,
// early-flushing downstream on memory pressure or the group-count cap —
// the same policy as the pull path's executeHashed in partial mode.
type aggPusher struct {
	e          *HashAggregateExec
	ctx        *physical.ExecContext
	st         *aggState
	res        *memory.Reservation
	unregister func()
	groupIdx   []uint32
	threshold  int
	closed     bool
}

func (p *aggPusher) Push(b *arrow.RecordBatch, emit physical.EmitFn) (bool, error) {
	var err error
	p.groupIdx, err = p.e.update(p.st, b, p.groupIdx)
	if err != nil {
		return false, err
	}
	if p.st.table == nil {
		return false, nil
	}
	if err := p.res.Resize(p.st.table.memUsage()); err == nil {
		p.e.Metrics().UpdateMemPeak(p.res.Size())
		if p.st.table.numGroups() < p.threshold {
			return false, nil
		}
	}
	return false, p.emitAndReset(emit)
}

// emitAndReset flushes the current partial state downstream and resets
// the table and accumulators.
func (p *aggPusher) emitAndReset(emit physical.EmitFn) error {
	batches, err := p.e.emit(p.st, p.ctx.BatchRows)
	if err != nil {
		return err
	}
	p.st.table.reset()
	fresh, err := p.e.newState()
	if err != nil {
		return err
	}
	p.st.accs = fresh.accs
	p.res.Shrink(p.res.Size())
	for _, b := range batches {
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

func (p *aggPusher) Flush(emit physical.EmitFn) error {
	batches, err := p.e.emit(p.st, p.ctx.BatchRows)
	if err != nil {
		return err
	}
	for _, b := range batches {
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

func (p *aggPusher) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.res.Free()
	p.unregister()
}

func (e *HashAggregateExec) executeHashed(ctx *physical.ExecContext, in physical.Stream) (physical.Stream, error) {
	st, err := e.newState()
	if err != nil {
		in.Close()
		return nil, err
	}
	res := memory.NewReservation(ctx.Pool, "HashAggregateExec")
	unregister := memory.RegisterConsumer(ctx.Pool)

	flushThreshold := e.FlushThreshold
	if flushThreshold <= 0 {
		flushThreshold = 1 << 31
	}

	var queue []*arrow.RecordBatch
	var spills []*memory.SpillFile
	var groupIdx []uint32
	inputDone := false

	cleanup := func() {
		in.Close()
		res.Free()
		unregister()
		for _, sp := range spills {
			sp.Release()
		}
		spills = nil
	}

	m := e.Metrics()
	// spillState writes the current state (as partial batches) to disk and
	// resets the table.
	spillState := func(cause error) error {
		if ctx.Disk == nil || !ctx.Disk.Enabled() {
			// Keep the reservation failure in the chain so callers (the
			// server's statusFor) can classify this as retryable pressure.
			if cause != nil {
				return fmt.Errorf("exec: aggregation exceeded memory budget and spilling is disabled: %w", cause)
			}
			return fmt.Errorf("exec: aggregation exceeded memory budget and spilling is disabled")
		}
		// Spill batches use the partial-state layout.
		partial := *e
		partial.Mode = PartialAgg
		batches, err := partial.emit(st, 65536)
		if err != nil {
			return err
		}
		sf, err := ctx.Disk.CreateTemp("agg")
		if err != nil {
			return err
		}
		var spilled int64
		for _, b := range batches {
			if err := arrow.WriteBatch(sf.File(), b); err != nil {
				return err
			}
			spilled += batchBytes(b)
		}
		m.AddSpill(spilled)
		spills = append(spills, sf)
		if st.table != nil {
			st.table.reset()
		}
		fresh, err := e.newState()
		if err != nil {
			return err
		}
		st.accs = fresh.accs
		res.Shrink(res.Size())
		return nil
	}

	next := func() (*arrow.RecordBatch, error) {
		for {
			if len(queue) > 0 {
				b := queue[0]
				queue = queue[1:]
				return b, nil
			}
			if inputDone {
				return nil, io.EOF
			}
			if err := checkCancel(ctx); err != nil {
				return nil, err
			}
			b, err := in.Next()
			if err == io.EOF {
				inputDone = true
				// Merge spills (if any) into the final state.
				if len(spills) > 0 {
					if err := e.mergeSpills(ctx, st, spills); err != nil {
						return nil, err
					}
				}
				batches, err := e.emit(st, ctx.BatchRows)
				if err != nil {
					return nil, err
				}
				queue = batches
				continue
			}
			if err != nil {
				return nil, err
			}
			if b.NumRows() == 0 {
				continue
			}
			groupIdx, err = e.update(st, b, groupIdx)
			if err != nil {
				return nil, err
			}
			// Track the dominant memory consumer: the group table.
			if st.table != nil {
				if err := res.Resize(st.table.memUsage()); err == nil {
					m.UpdateMemPeak(res.Size())
				} else {
					if e.Mode == PartialAgg {
						// Early flush: emit partial results downstream.
						batches, eerr := e.emit(st, ctx.BatchRows)
						if eerr != nil {
							return nil, eerr
						}
						st.table.reset()
						fresh, ferr := e.newState()
						if ferr != nil {
							return nil, ferr
						}
						st.accs = fresh.accs
						res.Shrink(res.Size())
						queue = batches
						continue
					}
					if serr := spillState(err); serr != nil {
						return nil, serr
					}
				}
				if e.Mode == PartialAgg && st.table.numGroups() >= flushThreshold {
					batches, eerr := e.emit(st, ctx.BatchRows)
					if eerr != nil {
						return nil, eerr
					}
					st.table.reset()
					fresh, ferr := e.newState()
					if ferr != nil {
						return nil, ferr
					}
					st.accs = fresh.accs
					queue = batches
					continue
				}
			}
		}
	}
	return NewFuncStream(e.schema, next, cleanup), nil
}

// mergeSpills re-merges spilled partial-state batches into the live state.
func (e *HashAggregateExec) mergeSpills(ctx *physical.ExecContext, st *aggState, spills []*memory.SpillFile) error {
	partial := *e
	partial.Mode = PartialAgg
	spillSchema := NewHashAggregateExec(e.Input, PartialAgg, e.GroupExprs, e.GroupNames, e.Aggs).Schema()
	var groupIdx []uint32
	for _, sf := range spills {
		f := sf.File()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		for {
			b, err := arrow.ReadBatch(f, spillSchema)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			groupIdx, err = e.mergePartialBatch(st, b, groupIdx)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// mergePartialBatch merges one partial-layout batch into the state.
func (e *HashAggregateExec) mergePartialBatch(st *aggState, b *arrow.RecordBatch, groupIdx []uint32) ([]uint32, error) {
	n := b.NumRows()
	if st.table != nil {
		cols := make([]arrow.Array, len(e.GroupExprs))
		for i := range e.GroupExprs {
			cols[i] = b.Column(i)
		}
		groupIdx = st.table.assign(cols, n, groupIdx)
	} else {
		groupIdx = groupIdx[:0]
		for i := 0; i < n; i++ {
			groupIdx = append(groupIdx, 0)
		}
	}
	numGroups := st.numGroups()
	stateCol := len(e.GroupExprs)
	for ai := range e.Aggs {
		a := &e.Aggs[ai]
		states := make([]arrow.Array, len(a.StateTypes))
		for j := range states {
			states[j] = b.Column(stateCol)
			stateCol++
		}
		if err := st.accs[ai].MergeStates(states, groupIdx, numGroups); err != nil {
			return groupIdx, err
		}
	}
	return groupIdx, nil
}

// executeOrdered is the streaming fast path for inputs sorted on the
// group keys (paper Section 6.7): groups are contiguous, so group indexes
// come from run detection — one key comparison per row instead of a hash
// table probe — and completed groups are emitted as soon as the key
// changes, keeping memory proportional to one batch of groups.
func (e *HashAggregateExec) executeOrdered(ctx *physical.ExecContext, in physical.Stream) (physical.Stream, error) {
	types := make([]*arrow.DataType, len(e.GroupExprs))
	for i, g := range e.GroupExprs {
		types[i] = g.DataType()
	}
	enc, err := rowformat.NewEncoder(types, nil)
	if err != nil {
		in.Close()
		return nil, err
	}

	newRunState := func() (*aggState, error) {
		st := &aggState{}
		st.accs = make([]functions.GroupsAccumulator, len(e.Aggs))
		for i, a := range e.Aggs {
			acc, err := a.Fn.NewAccumulator(a.ArgTypes)
			if err != nil {
				return nil, err
			}
			st.accs[i] = acc
		}
		return st, nil
	}

	st, err := newRunState()
	if err != nil {
		in.Close()
		return nil, err
	}
	// Run-detection state: keys of the groups accumulated since the last
	// flush (the last one may continue into the next batch).
	var runKeys [][]byte
	var queue []*arrow.RecordBatch
	inputDone := false

	emitRuns := func() ([]*arrow.RecordBatch, error) {
		if len(runKeys) == 0 {
			return nil, nil
		}
		gcols, err := enc.DecodeRows(runKeys)
		if err != nil {
			return nil, err
		}
		cols := append([]arrow.Array{}, gcols...)
		for ai := range e.Aggs {
			if e.Mode == PartialAgg {
				states, err := st.accs[ai].State()
				if err != nil {
					return nil, err
				}
				for _, s := range states {
					cols = append(cols, padArray(s, len(runKeys)))
				}
			} else {
				out, err := st.accs[ai].Evaluate()
				if err != nil {
					return nil, err
				}
				cols = append(cols, padArray(out, len(runKeys)))
			}
		}
		batch := arrow.NewRecordBatchWithRows(e.schema, cols, len(runKeys))
		runKeys = nil
		fresh, err := newRunState()
		if err != nil {
			return nil, err
		}
		st.accs = fresh.accs
		return []*arrow.RecordBatch{batch}, nil
	}

	var groupIdx []uint32
	next := func() (*arrow.RecordBatch, error) {
		for {
			if len(queue) > 0 {
				b := queue[0]
				queue = queue[1:]
				return b, nil
			}
			if inputDone {
				return nil, io.EOF
			}
			b, err := in.Next()
			if err == io.EOF {
				inputDone = true
				batches, ferr := emitRuns()
				if ferr != nil {
					return nil, ferr
				}
				queue = batches
				continue
			}
			if err != nil {
				return nil, err
			}
			n := b.NumRows()
			if n == 0 {
				continue
			}
			cols := make([]arrow.Array, len(e.GroupExprs))
			for i, g := range e.GroupExprs {
				a, err := physical.EvalToArray(g, b)
				if err != nil {
					return nil, err
				}
				cols[i] = a
			}
			keys := enc.EncodeRows(cols, n)
			// Assign group indexes by run detection, continuing the open
			// run from the previous batch when the key matches.
			groupIdx = groupIdx[:0]
			for i := 0; i < n; i++ {
				if len(runKeys) == 0 || string(keys[i]) != string(runKeys[len(runKeys)-1]) {
					runKeys = append(runKeys, append([]byte(nil), keys[i]...))
				}
				groupIdx = append(groupIdx, uint32(len(runKeys)-1))
			}
			if err := e.updateAccumulators(st, b, groupIdx, len(runKeys)); err != nil {
				return nil, err
			}
			// All groups except the still-open last one are complete; emit
			// once enough accumulate.
			if len(runKeys) >= 4096 {
				// Keep the open run: emit all but the last group.
				lastKey := runKeys[len(runKeys)-1]
				completed := runKeys[:len(runKeys)-1]
				savedAccs := st.accs
				// Emit the completed prefix by rebuilding state for the
				// open run from its partial states.
				gcols, err := enc.DecodeRows(completed)
				if err != nil {
					return nil, err
				}
				outCols := append([]arrow.Array{}, gcols...)
				var lastStates [][]arrow.Array
				for ai := range e.Aggs {
					states, err := savedAccs[ai].State()
					if err != nil {
						return nil, err
					}
					var emitPart []arrow.Array
					var lastPart []arrow.Array
					for _, s := range states {
						padded := padArray(s, len(runKeys))
						emitPart = append(emitPart, padded.Slice(0, len(completed)))
						lastPart = append(lastPart, padded.Slice(len(completed), 1))
					}
					if e.Mode == PartialAgg {
						outCols = append(outCols, emitPart...)
					} else {
						// Rebuild a truncated accumulator to evaluate.
						acc, err := e.Aggs[ai].Fn.NewAccumulator(e.Aggs[ai].ArgTypes)
						if err != nil {
							return nil, err
						}
						idx := make([]uint32, len(completed))
						for k := range idx {
							idx[k] = uint32(k)
						}
						if err := acc.MergeStates(emitPart, idx, len(completed)); err != nil {
							return nil, err
						}
						out, err := acc.Evaluate()
						if err != nil {
							return nil, err
						}
						outCols = append(outCols, padArray(out, len(completed)))
					}
					lastStates = append(lastStates, lastPart)
				}
				queue = append(queue, arrow.NewRecordBatchWithRows(e.schema, outCols, len(completed)))
				// Restart state holding only the open run.
				fresh, err := newRunState()
				if err != nil {
					return nil, err
				}
				st.accs = fresh.accs
				for ai := range e.Aggs {
					if err := st.accs[ai].MergeStates(lastStates[ai], []uint32{0}, 1); err != nil {
						return nil, err
					}
				}
				runKeys = [][]byte{lastKey}
			}
		}
	}
	return NewFuncStream(e.schema, next, in.Close), nil
}

// updateAccumulators feeds one batch into the accumulators with the given
// group assignment (shared by the hash and run-detection paths).
func (e *HashAggregateExec) updateAccumulators(st *aggState, b *arrow.RecordBatch, groupIdx []uint32, numGroups int) error {
	for ai := range e.Aggs {
		a := &e.Aggs[ai]
		args := make([]arrow.Array, len(a.Args))
		for j, ax := range a.Args {
			arr, err := physical.EvalToArray(ax, b)
			if err != nil {
				return err
			}
			args[j] = arr
		}
		gi := groupIdx
		if a.Filter != nil {
			mask, err := physical.EvalPredicate(a.Filter, b)
			if err != nil {
				return err
			}
			var indices []int32
			for i := 0; i < b.NumRows(); i++ {
				if mask.IsValid(i) && mask.Value(i) {
					indices = append(indices, int32(i))
				}
			}
			for j := range args {
				args[j] = compute.Take(args[j], indices)
			}
			fgi := make([]uint32, len(indices))
			for k, idx := range indices {
				fgi[k] = groupIdx[idx]
			}
			gi = fgi
		}
		if err := st.accs[ai].Update(args, gi, numGroups); err != nil {
			return err
		}
	}
	return nil
}
