package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/rowformat"
)

// refAssign is the straightforward reference: encode every row's key and
// look it up in a Go map (the pre-hash-first implementation).
type refAssign struct {
	enc   *rowformat.Encoder
	index map[string]uint32
	keys  [][]byte
}

func newRefAssign(t *testing.T, types []*arrow.DataType) *refAssign {
	t.Helper()
	enc, err := rowformat.NewEncoder(types, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &refAssign{enc: enc, index: map[string]uint32{}}
}

func (r *refAssign) assign(cols []arrow.Array, n int) []uint32 {
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		key := r.enc.AppendRowKey(nil, cols, i)
		idx, ok := r.index[string(key)]
		if !ok {
			idx = uint32(len(r.keys))
			r.index[string(key)] = idx
			r.keys = append(r.keys, key)
		}
		out[i] = idx
	}
	return out
}

// randomKeyBatch builds one (int64 nullable, string nullable) key batch
// exercising nulls, empty strings and duplicate keys.
func randomKeyBatch(rng *rand.Rand, n, card int) []arrow.Array {
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		if rng.Intn(10) == 0 {
			ib.AppendNull()
		} else {
			ib.Append(int64(rng.Intn(card)) - int64(card/2))
		}
		switch rng.Intn(10) {
		case 0:
			sb.AppendNull()
		case 1:
			sb.Append("")
		case 2:
			sb.Append("s\x00zero") // embedded NUL exercises key escaping
		default:
			sb.Append(fmt.Sprintf("s%d", rng.Intn(card)))
		}
	}
	return []arrow.Array{ib.Finish(), sb.Finish()}
}

func TestGroupTableMatchesReference(t *testing.T) {
	types := []*arrow.DataType{arrow.Int64, arrow.String}
	gt, err := newGroupTable(types)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefAssign(t, types)
	rng := rand.New(rand.NewSource(7))
	var out []uint32
	for batch := 0; batch < 30; batch++ {
		n := 1 + rng.Intn(700)
		cols := randomKeyBatch(rng, n, 50)
		out = gt.assign(cols, n, out)
		want := ref.assign(cols, n)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("batch %d row %d: gid %d, want %d", batch, i, out[i], want[i])
			}
		}
	}
	if gt.numGroups() != len(ref.keys) {
		t.Fatalf("numGroups = %d, want %d", gt.numGroups(), len(ref.keys))
	}
	// Group columns decode back in dense-id order.
	gcols, err := gt.groupColumns()
	if err != nil {
		t.Fatal(err)
	}
	wcols, err := ref.enc.DecodeRows(ref.keys)
	if err != nil {
		t.Fatal(err)
	}
	for c := range gcols {
		for i := 0; i < gt.numGroups(); i++ {
			if !gcols[c].GetScalar(i).Equal(wcols[c].GetScalar(i)) {
				t.Fatalf("group col %d row %d: %s != %s", c, i, gcols[c].GetScalar(i), wcols[c].GetScalar(i))
			}
		}
	}
}

func TestGroupTableFastPathPrimitive(t *testing.T) {
	for _, dt := range []*arrow.DataType{arrow.Int64, arrow.Int32} {
		t.Run(dt.String(), func(t *testing.T) {
			gt, err := newGroupTable([]*arrow.DataType{dt})
			if err != nil {
				t.Fatal(err)
			}
			if !gt.fast {
				t.Fatal("expected primitive fast path")
			}
			ref := newRefAssign(t, []*arrow.DataType{dt})
			rng := rand.New(rand.NewSource(11))
			var out []uint32
			for batch := 0; batch < 20; batch++ {
				n := 1 + rng.Intn(500)
				b := arrow.NewBuilder(dt)
				for i := 0; i < n; i++ {
					if rng.Intn(12) == 0 {
						b.AppendNull()
					} else {
						v := int64(rng.Intn(20000)) - 10000 // negatives included
						if dt == arrow.Int32 {
							b.AppendScalar(arrow.NewScalar(dt, int32(v)))
						} else {
							b.AppendScalar(arrow.NewScalar(dt, v))
						}
					}
				}
				cols := []arrow.Array{b.Finish()}
				out = gt.assign(cols, n, out)
				want := ref.assign(cols, n)
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("row %d: gid %d, want %d", i, out[i], want[i])
					}
				}
			}
			gcols, err := gt.groupColumns()
			if err != nil {
				t.Fatal(err)
			}
			wcols, err := ref.enc.DecodeRows(ref.keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < gt.numGroups(); i++ {
				if !gcols[0].GetScalar(i).Equal(wcols[0].GetScalar(i)) {
					t.Fatalf("group %d: %s != %s", i, gcols[0].GetScalar(i), wcols[0].GetScalar(i))
				}
			}
		})
	}
}

func TestGroupTableGrowth(t *testing.T) {
	// Force many rehash rounds from the minimal table size.
	gt, err := newGroupTable([]*arrow.DataType{arrow.String})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		sb.Append(fmt.Sprintf("key-%d", i%12000))
	}
	cols := []arrow.Array{sb.Finish()}
	out := gt.assign(cols, n, nil)
	if gt.numGroups() != 12000 {
		t.Fatalf("numGroups = %d, want 12000", gt.numGroups())
	}
	for i := 0; i < n; i++ {
		if out[i] != uint32(i%12000) {
			t.Fatalf("row %d: gid %d, want %d", i, out[i], i%12000)
		}
	}
}

func TestGroupTableResetReuse(t *testing.T) {
	gt, err := newGroupTable([]*arrow.DataType{arrow.Int64, arrow.String})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	cols := randomKeyBatch(rng, 400, 30)
	first := append([]uint32(nil), gt.assign(cols, 400, nil)...)
	before := gt.numGroups()
	gt.reset()
	if gt.numGroups() != 0 || gt.memUsage() == 0 {
		t.Fatalf("after reset: groups=%d mem=%d", gt.numGroups(), gt.memUsage())
	}
	second := gt.assign(cols, 400, nil)
	if gt.numGroups() != before {
		t.Fatalf("groups after reuse = %d, want %d", gt.numGroups(), before)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("row %d: %d != %d after reset", i, first[i], second[i])
		}
	}
}

func TestGroupTableLookup(t *testing.T) {
	types := []*arrow.DataType{arrow.Int64, arrow.String}
	gt, err := newGroupTable(types)
	if err != nil {
		t.Fatal(err)
	}
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < 100; i++ {
		ib.Append(int64(i))
		sb.Append(fmt.Sprintf("v%d", i))
	}
	gt.assign([]arrow.Array{ib.Finish(), sb.Finish()}, 100, nil)

	// Probe: present, absent, and null rows.
	pb := arrow.NewNumericBuilder[int64](arrow.Int64)
	ps := arrow.NewStringBuilder(arrow.String)
	pb.Append(42)
	ps.Append("v42") // hit -> gid 42
	pb.Append(42)
	ps.Append("nope") // miss
	pb.AppendNull()
	ps.Append("v7") // null key col -> miss
	pb.Append(7)
	ps.AppendNull() // null key col -> miss
	var ls lookupScratch
	got := gt.lookupInto([]arrow.Array{pb.Finish(), ps.Finish()}, 4, &ls, nil)
	want := []int32{42, -1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lookup row %d = %d, want %d", i, got[i], want[i])
		}
	}

	// Fast-path table: nulls never match even when a null group exists.
	ft, err := newGroupTable([]*arrow.DataType{arrow.Int64})
	if err != nil {
		t.Fatal(err)
	}
	fb := arrow.NewNumericBuilder[int64](arrow.Int64)
	fb.Append(5)
	fb.AppendNull()
	ft.assign([]arrow.Array{fb.Finish()}, 2, nil)
	qb := arrow.NewNumericBuilder[int64](arrow.Int64)
	qb.Append(5)
	qb.AppendNull()
	qb.Append(6)
	got = ft.lookupInto([]arrow.Array{qb.Finish()}, 3, &ls, nil)
	want = []int32{0, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fast lookup row %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestGroupTableAssignSteadyStateAllocs asserts the acceptance criterion:
// assigning a batch of already-seen keys performs no per-row allocations.
func TestGroupTableAssignSteadyStateAllocs(t *testing.T) {
	for _, shape := range []string{"int", "str"} {
		t.Run(shape, func(t *testing.T) {
			var types []*arrow.DataType
			var cols []arrow.Array
			const n = 4096
			if shape == "int" {
				types = []*arrow.DataType{arrow.Int64}
				b := arrow.NewNumericBuilder[int64](arrow.Int64)
				for i := 0; i < n; i++ {
					b.Append(int64(i % 16))
				}
				cols = []arrow.Array{b.Finish()}
			} else {
				types = []*arrow.DataType{arrow.String}
				b := arrow.NewStringBuilder(arrow.String)
				for i := 0; i < n; i++ {
					b.Append(fmt.Sprintf("key-%d", i%16))
				}
				cols = []arrow.Array{b.Finish()}
			}
			gt, err := newGroupTable(types)
			if err != nil {
				t.Fatal(err)
			}
			out := gt.assign(cols, n, nil) // warm up: create the 16 groups
			allocs := testing.AllocsPerRun(10, func() {
				out = gt.assign(cols, n, out)
			})
			if allocs > 0 {
				t.Fatalf("steady-state assign allocates %.1f times per batch, want 0", allocs)
			}
		})
	}
}

func BenchmarkGroupTableAssign(b *testing.B) {
	const n = 8192
	for _, shape := range []string{"int", "str", "mixed"} {
		for _, card := range []int{16, 4096} {
			b.Run(fmt.Sprintf("%s/card=%d", shape, card), func(b *testing.B) {
				var types []*arrow.DataType
				var cols []arrow.Array
				ib := arrow.NewNumericBuilder[int64](arrow.Int64)
				sb := arrow.NewStringBuilder(arrow.String)
				for i := 0; i < n; i++ {
					ib.Append(int64(i % card))
					sb.Append(fmt.Sprintf("key-%08d", i%card))
				}
				switch shape {
				case "int":
					types = []*arrow.DataType{arrow.Int64}
					cols = []arrow.Array{ib.Finish()}
				case "str":
					types = []*arrow.DataType{arrow.String}
					cols = []arrow.Array{sb.Finish()}
				default:
					types = []*arrow.DataType{arrow.Int64, arrow.String}
					cols = []arrow.Array{ib.Finish(), sb.Finish()}
				}
				gt, err := newGroupTable(types)
				if err != nil {
					b.Fatal(err)
				}
				out := gt.assign(cols, n, nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out = gt.assign(cols, n, out)
				}
				_ = out
			})
		}
	}
}
