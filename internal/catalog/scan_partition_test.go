package catalog

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
)

// writePartitionedFile writes one GPQ file of n (id, name, score) rows
// with rowGroupRows-row row groups and optional footer KV metadata.
func writePartitionedFile(t *testing.T, n, rowGroupRows int, kv map[string]string) string {
	t.Helper()
	schema := arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("name", arrow.String, false),
		arrow.NewField("score", arrow.Float64, false),
	)
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	for i := 0; i < n; i++ {
		ib.Append(int64(i))
		sb.Append(fmt.Sprintf("name-%d", i%31))
		fb.Append(float64(i) / 7)
	}
	path := filepath.Join(t.TempDir(), "part.gpq")
	err := parquet.WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{ib.Finish(), sb.Finish(), fb.Finish()})},
		parquet.WriterOptions{RowGroupRows: rowGroupRows, PageRows: 128, KV: kv})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// collectRows renders every row of every partition as one canonical
// string, so "byte-identical after sort" reduces to sorted-slice
// equality regardless of partition interleaving.
func collectRows(t *testing.T, res *ScanResult) []string {
	t.Helper()
	var rows []string
	for p := 0; p < res.Partitions; p++ {
		s, err := res.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range drain(t, s) {
			for i := 0; i < b.NumRows(); i++ {
				var sb strings.Builder
				for c := 0; c < b.NumCols(); c++ {
					fmt.Fprintf(&sb, "|%s", b.Column(c).GetScalar(i))
				}
				rows = append(rows, sb.String())
			}
		}
	}
	sort.Strings(rows)
	return rows
}

func equalRows(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: row count %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs: %q vs %q", what, i, got[i], want[i])
		}
	}
}

func TestRowGroupPartitionedScanMatchesSingle(t *testing.T) {
	path := writePartitionedFile(t, 2000, 250, nil) // 8 row groups
	tbl, err := NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  ScanRequest
	}{
		{"full", ScanRequest{Limit: -1}},
		{"projection", ScanRequest{Projection: []int{2, 0}, Limit: -1}},
		{"predicate", ScanRequest{
			Filters: []logical.Expr{&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("id"), R: logical.Lit(int64(137))}},
			Limit:   -1,
		}},
		{"predicate+projection+limit", ScanRequest{
			Projection: []int{0, 1},
			// name-7 occurs in every row group, so no plan-time pruning:
			// the scan stays split across partitions.
			Filters: []logical.Expr{&logical.BinaryExpr{Op: logical.OpEq, L: logical.Col("name"), R: logical.Lit("name-7")}},
			// Limit larger than the ~65 matching rows: exercised but
			// deterministic under any partitioning.
			Limit: 500,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			single := tc.req
			single.Partitions = 1
			resS, err := tbl.Scan(single)
			if err != nil {
				t.Fatal(err)
			}
			if resS.Partitions != 1 {
				t.Fatalf("single-partition scan got %d partitions", resS.Partitions)
			}
			want := collectRows(t, resS)

			multi := tc.req
			multi.Partitions = 4
			multi.Readahead = 2
			resM, err := tbl.Scan(multi)
			if err != nil {
				t.Fatal(err)
			}
			if resM.Partitions < 2 {
				t.Fatalf("multi-partition scan got %d partitions, want >1", resM.Partitions)
			}
			equalRows(t, collectRows(t, resM), want, tc.name)
		})
	}
}

func TestRowGroupPartitionCountAndDetail(t *testing.T) {
	path := writePartitionedFile(t, 2000, 250, nil) // 8 row groups
	tbl, err := NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(ScanRequest{Limit: -1, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A single 8-row-group file must split into all 4 requested partitions.
	if res.Partitions != 4 {
		t.Fatalf("partitions = %d, want 4", res.Partitions)
	}
	if !strings.Contains(res.Detail, "rowgroups=8") || !strings.Contains(res.Detail, "rg") {
		t.Fatalf("detail missing row-group ranges: %q", res.Detail)
	}
	// Requesting more partitions than row groups clamps to the group count.
	res2, err := tbl.Scan(ScanRequest{Limit: -1, Partitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Partitions != 8 {
		t.Fatalf("partitions = %d, want 8 (row-group clamp)", res2.Partitions)
	}
}

func TestRowGroupLevelPlanPruning(t *testing.T) {
	// Ascending ids: a range predicate must prune most row groups at plan
	// time using chunk statistics, shrinking the partition count.
	path := writePartitionedFile(t, 2000, 250, nil)
	tbl, err := NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(ScanRequest{
		Filters:    []logical.Expr{&logical.BinaryExpr{Op: logical.OpGtEq, L: logical.Col("id"), R: logical.Lit(int64(1750))}},
		Limit:      -1,
		Partitions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1 (7 of 8 groups pruned)", res.Partitions)
	}
	if !strings.Contains(res.Detail, "pruned=7") {
		t.Fatalf("detail should report 7 pruned groups: %q", res.Detail)
	}
	rows := collectRows(t, res)
	if len(rows) != 250 {
		t.Fatalf("rows = %d, want 250", len(rows))
	}
}

func TestSortOrderDroppedWhenFileSplit(t *testing.T) {
	path := writePartitionedFile(t, 2000, 250, map[string]string{"sort_order": "id"})
	tbl, err := NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unsplit: the declared order survives.
	res1, err := tbl.Scan(ScanRequest{Limit: -1, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.SortOrder) != 1 || res1.SortOrder[0].Name != "id" {
		t.Fatalf("single-partition scan lost sort order: %+v", res1.SortOrder)
	}
	// Split across partitions: the order must be dropped.
	res4, err := tbl.Scan(ScanRequest{Limit: -1, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Partitions != 4 {
		t.Fatalf("partitions = %d, want 4", res4.Partitions)
	}
	if res4.SortOrder != nil {
		t.Fatalf("sort order must be dropped when a file splits: %+v", res4.SortOrder)
	}
}
