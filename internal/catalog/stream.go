package catalog

import (
	"context"
	"fmt"
	"io"
	"sync"

	"gofusion/internal/arrow"
)

// StreamTable is an append-only in-memory table serving the streaming
// workload class: writers Append batches over time, readers tail the log
// with scans that block awaiting new data instead of returning io.EOF.
// A scan prepared before Seal is unbounded (its streams only terminate on
// cancellation or a later Seal); after Seal the table behaves like a
// bounded single-partition MemTable. All methods are safe for concurrent
// use; batch data itself is immutable once appended.
type StreamTable struct {
	mu      sync.Mutex
	schema  *arrow.Schema
	batches []*arrow.RecordBatch
	numRows int64
	sealed  bool
	// notify is closed-and-replaced on every append/seal so blocked tail
	// streams wake up (broadcast semantics without per-reader channels).
	notify chan struct{}
	// watermark is the 0-based schema index of the declared event-time
	// column, -1 when none.
	watermark int
	// onWrite hooks version bumps: the owning session registers a callback
	// so in-place appends invalidate version-keyed caches.
	onWrite func()
}

// NewStreamTable returns an empty unbounded table.
func NewStreamTable(schema *arrow.Schema) *StreamTable {
	return &StreamTable{schema: schema, notify: make(chan struct{}), watermark: -1}
}

// WithWatermark declares the event-time column driving streaming
// aggregation. The column must exist and carry an integer-family type
// (ints, date, timestamp) so watermark comparisons are exact.
func (t *StreamTable) WithWatermark(col string) (*StreamTable, error) {
	idx := t.schema.FieldIndex(col)
	if idx < 0 {
		return nil, fmt.Errorf("catalog: watermark column %q not in schema", col)
	}
	switch t.schema.Field(idx).Type.ID {
	case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64,
		arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64,
		arrow.DATE32, arrow.TIMESTAMP:
	default:
		return nil, fmt.Errorf("catalog: watermark column %q must be integer, date, or timestamp typed, got %s",
			col, t.schema.Field(idx).Type)
	}
	t.watermark = idx
	return t, nil
}

// OnWrite registers a callback invoked after every successful Append or
// Seal (outside the table lock). Sessions use it to bump catalog versions
// so result caches invalidate on in-place writes.
func (t *StreamTable) OnWrite(fn func()) { t.onWrite = fn }

// Append adds batches to the log and wakes blocked tail readers.
func (t *StreamTable) Append(batches ...*arrow.RecordBatch) error {
	t.mu.Lock()
	if t.sealed {
		t.mu.Unlock()
		return fmt.Errorf("catalog: append to sealed stream table")
	}
	for _, b := range batches {
		if !b.Schema().Equal(t.schema) {
			t.mu.Unlock()
			return fmt.Errorf("catalog: batch schema %s != stream schema %s", b.Schema(), t.schema)
		}
	}
	for _, b := range batches {
		if b.NumRows() == 0 {
			continue
		}
		t.batches = append(t.batches, b)
		t.numRows += int64(b.NumRows())
	}
	t.broadcastLocked()
	t.mu.Unlock()
	if t.onWrite != nil {
		t.onWrite()
	}
	return nil
}

// Seal marks the end of the stream: tail readers drain the remaining
// batches and then see io.EOF, and future scans are bounded. Idempotent.
func (t *StreamTable) Seal() {
	t.mu.Lock()
	already := t.sealed
	t.sealed = true
	t.broadcastLocked()
	t.mu.Unlock()
	if !already && t.onWrite != nil {
		t.onWrite()
	}
}

// broadcastLocked wakes every blocked reader. Callers hold t.mu.
func (t *StreamTable) broadcastLocked() {
	close(t.notify)
	t.notify = make(chan struct{})
}

// Sealed reports whether the stream has ended.
func (t *StreamTable) Sealed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealed
}

// Rows returns the number of rows appended so far.
func (t *StreamTable) Rows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.numRows
}

// Schema returns the table schema.
func (t *StreamTable) Schema() *arrow.Schema { return t.schema }

// Statistics reports the exact row count once sealed. While the stream is
// live the count is only a snapshot of an unbounded input, so it reports
// unknown: a heuristic that trusted it could elect the stream as a hash
// build side (JoinInputSwap picks the smaller input), which can never
// finish building.
func (t *StreamTable) Statistics() Statistics {
	if !t.Sealed() {
		return UnknownStats()
	}
	return Statistics{NumRows: t.Rows(), TotalBytes: -1}
}

// Scan prepares a tailing read. Projection is applied per batch; filters
// are left to the engine (ExactFilters all false); limit pushdown applies
// only when no filters are present. The result is unbounded iff the table
// is not yet sealed at scan time — in-flight tail streams still honor a
// later Seal.
func (t *StreamTable) Scan(req ScanRequest) (*ScanResult, error) {
	outSchema := t.schema
	if req.Projection != nil {
		outSchema = t.schema.Select(req.Projection)
	}
	limit := req.Limit
	if len(req.Filters) > 0 {
		limit = -1
	}
	wm := 0
	if t.watermark >= 0 {
		if req.Projection == nil {
			wm = t.watermark + 1
		} else {
			for i, c := range req.Projection {
				if c == t.watermark {
					wm = i + 1
					break
				}
			}
		}
	}
	unbounded := !t.Sealed()
	return &ScanResult{
		Schema:       outSchema,
		Partitions:   1,
		ExactFilters: make([]bool, len(req.Filters)),
		Unbounded:    unbounded,
		Watermark:    wm,
		Detail:       "tail",
		Open: func(p int) (Stream, error) {
			return &tailStream{t: t, schema: outSchema, proj: req.Projection, remaining: limit}, nil
		},
	}, nil
}

// tailStream reads the table log from the start and then blocks for more
// data until the table seals or the bound query context is cancelled.
type tailStream struct {
	t         *StreamTable
	schema    *arrow.Schema
	proj      []int
	pos       int
	remaining int64 // rows left under limit pushdown; <0 means no limit
	ctx       context.Context
	closed    bool
}

// BindContext attaches the query context so blocked reads cancel.
func (s *tailStream) BindContext(ctx context.Context) { s.ctx = ctx }

func (s *tailStream) Schema() *arrow.Schema { return s.schema }
func (s *tailStream) Close()                { s.closed = true }

func (s *tailStream) Next() (*arrow.RecordBatch, error) {
	if s.closed || s.remaining == 0 {
		return nil, io.EOF
	}
	var done <-chan struct{}
	if s.ctx != nil {
		done = s.ctx.Done()
	}
	for {
		s.t.mu.Lock()
		if s.pos < len(s.t.batches) {
			b := s.t.batches[s.pos]
			s.pos++
			s.t.mu.Unlock()
			if s.proj != nil {
				b = b.Project(s.proj)
			}
			if s.remaining > 0 && int64(b.NumRows()) > s.remaining {
				b = b.Slice(0, int(s.remaining))
			}
			if s.remaining > 0 {
				s.remaining -= int64(b.NumRows())
			}
			return b, nil
		}
		if s.t.sealed {
			s.t.mu.Unlock()
			return nil, io.EOF
		}
		notify := s.t.notify
		s.t.mu.Unlock()
		// Block until a writer appends/seals or the query is cancelled. A
		// nil done channel blocks forever on that arm, which is correct for
		// engine-driven reads: the engine always binds its query context.
		select {
		case <-notify:
		case <-done:
			return nil, s.ctx.Err()
		}
	}
}
