// Package catalog implements the catalog and data source APIs (paper
// Sections 5.2, 7.2, 7.3): CatalogProvider -> SchemaProvider ->
// TableProvider, with built-in providers for in-memory tables and GPQ /
// CSV / JSON files. Built-in providers use exactly the API exposed to
// user-defined providers, including projection, filter, and limit
// pushdown, partitioned parallel reads, and known sort orders.
package catalog

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gofusion/internal/arrow"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
)

// Stream incrementally produces record batches; Next returns io.EOF when
// exhausted. Streams are single-consumer.
type Stream interface {
	Schema() *arrow.Schema
	Next() (*arrow.RecordBatch, error)
	Close()
}

// OrderedCol names a column of a known sort order.
type OrderedCol struct {
	Name string
	Desc bool
}

// Statistics summarizes a table for planning.
type Statistics struct {
	// NumRows is the exact or estimated row count, -1 when unknown.
	NumRows int64
	// TotalBytes is the on-disk size, -1 when unknown.
	TotalBytes int64
}

// UnknownStats is the zero-knowledge statistics value.
func UnknownStats() Statistics { return Statistics{NumRows: -1, TotalBytes: -1} }

// NoLimit is the ScanRequest.Limit value for an unbounded scan. The
// Limit zero value means "return 0 rows" — a scan request built without
// an explicit Limit silently yields nothing (the COPY INTO staging path
// shipped exactly this bug). The scanlimit analyzer rejects ScanRequest
// literals that omit the field.
const NoLimit int64 = -1

// ScanRequest carries pushdown information into a provider scan.
type ScanRequest struct {
	// Projection selects provider-schema column indexes; nil means all.
	Projection []int
	// Filters are conjuncts the provider may apply (fully, partially, or
	// not at all); ScanResult.ExactFilters reports which were exact.
	Filters []logical.Expr
	// Limit stops the scan after this many rows; NoLimit (-1) for none.
	// The zero value means 0 rows, so literals must set it explicitly
	// (enforced by the scanlimit analyzer). Only valid when every filter
	// is applied exactly.
	Limit int64
	// Partitions is the desired read parallelism (providers may return
	// fewer).
	Partitions int
	// BatchRows is the preferred output batch size.
	BatchRows int
	// Readahead asks file-backed providers to decode this many units (row
	// groups) ahead of the consumer per partition; 0 disables pipelining.
	Readahead int
	// PageCache, when set, asks file-backed providers to share decoded
	// pages through the process-wide cache. Providers without page
	// structure ignore it.
	PageCache *parquet.PageCache
}

// ScanResult describes a prepared scan: a projected schema and a factory
// for per-partition streams.
type ScanResult struct {
	Schema     *arrow.Schema
	Partitions int
	// Open starts reading one partition. Each partition may be opened at
	// most once.
	Open func(partition int) (Stream, error)
	// ExactFilters[i] reports whether Filters[i] was applied exactly (the
	// engine then drops its own re-evaluation).
	ExactFilters []bool
	// SortOrder describes a known output ordering (within every
	// partition), or nil.
	SortOrder []OrderedCol
	// Detail is an optional provider-specific description of how the scan
	// was partitioned (e.g. row-group ranges), surfaced in EXPLAIN.
	Detail string
	// Runtime, when non-nil, aggregates runtime pruning counters across
	// the scan's partition streams for EXPLAIN ANALYZE. Providers without
	// statistics leave it nil.
	Runtime *ScanRuntime
	// Morsels, when non-nil, exposes the scan as dynamically schedulable
	// units so the engine can replace the static per-partition Open split
	// with a shared work queue drained by all workers (morsel-driven
	// scheduling). Providers only publish it when the output is unordered,
	// since workers interleave units arbitrarily.
	Morsels *MorselSet
	// Unbounded marks a tailing scan: partition streams block awaiting new
	// data instead of returning io.EOF, until the source is sealed or the
	// query is cancelled. The planner refuses to place full-pipeline
	// breakers (sorts, non-watermark final aggregation) above an unbounded
	// scan.
	Unbounded bool
	// Watermark is the 1-based index (into Schema) of the source's declared
	// event-time column, 0 when none. Streaming aggregation groups on it to
	// emit finalized groups as the watermark advances.
	Watermark int
}

// CtxStream is an optional Stream extension for tailing sources whose Next
// blocks awaiting data: the engine binds the query context so blocked
// reads unblock on cancellation. BindContext is called at most once,
// before the first Next.
type CtxStream interface {
	Stream
	BindContext(ctx context.Context)
}

// MorselSet describes the dynamically schedulable units of a scan: finer
// grained than partitions (typically one or a few row groups each) so
// that workers finishing early steal remaining units instead of idling
// behind a static row-balanced deal that mispredicts per-unit cost.
type MorselSet struct {
	// Rows[i] estimates unit i's row count (footer counts for files).
	// Units are ordered largest-first so long units start earliest.
	Rows []int64
	// Open starts reading one unit. Each unit may be opened at most once;
	// distinct units may be opened from different goroutines.
	Open func(unit int) (Stream, error)
}

// Units returns the number of schedulable units.
func (m *MorselSet) Units() int { return len(m.Rows) }

// ScanRuntime accumulates runtime scan counters across all partitions of
// one prepared scan. Plan-time pruning (whole files / row groups
// refuted before any stream opens) is pre-added by the provider; stream
// close flushes per-reader counters. All fields are atomics so partition
// streams update them concurrently.
type ScanRuntime struct {
	// RowGroupsPruned counts row groups skipped by min/max statistics or
	// Bloom filters (plan-time plus runtime).
	RowGroupsPruned atomic.Int64
	// RowGroupsScanned counts row groups actually decoded.
	RowGroupsScanned atomic.Int64
	// PagesPruned counts data pages skipped by page-level statistics.
	PagesPruned atomic.Int64
	// BloomSkipped counts row groups rejected specifically by a Bloom
	// filter probe (a subset of RowGroupsPruned).
	BloomSkipped atomic.Int64
	// PageCacheHits / PageCacheMisses count shared decoded-page cache
	// lookups across the scan's streams (zero when no cache is attached).
	PageCacheHits   atomic.Int64
	PageCacheMisses atomic.Int64
}

// TableProvider is the data source extension point.
type TableProvider interface {
	// Schema returns the full table schema.
	Schema() *arrow.Schema
	// Scan prepares a (possibly pushed-down) scan.
	Scan(req ScanRequest) (*ScanResult, error)
	// Statistics returns planning statistics.
	Statistics() Statistics
}

// SchemaProvider is a named collection of tables.
type SchemaProvider interface {
	TableNames() []string
	Table(name string) (TableProvider, bool)
}

// CatalogProvider is a named collection of schemas.
type CatalogProvider interface {
	SchemaNames() []string
	SchemaByName(name string) (SchemaProvider, bool)
}

// MemorySchema is the built-in mutable SchemaProvider.
type MemorySchema struct {
	mu      sync.RWMutex
	tables  map[string]TableProvider
	version atomic.Int64
}

// NewMemorySchema returns an empty schema.
func NewMemorySchema() *MemorySchema {
	return &MemorySchema{tables: map[string]TableProvider{}}
}

// Register adds or replaces a table, bumping the schema version.
func (s *MemorySchema) Register(name string, t TableProvider) {
	s.mu.Lock()
	s.tables[strings.ToLower(name)] = t
	s.mu.Unlock()
	s.version.Add(1)
}

// Deregister removes a table, bumping the schema version.
func (s *MemorySchema) Deregister(name string) {
	s.mu.Lock()
	delete(s.tables, strings.ToLower(name))
	s.mu.Unlock()
	s.version.Add(1)
}

// Version is a counter bumped on every Register/Deregister; caches keyed
// on it are invalidated by any table change in this schema.
func (s *MemorySchema) Version() int64 { return s.version.Load() }

// BumpVersion advances the schema version without changing registrations.
// In-place writers (StreamTable appends, GPQ file appends) call it so
// version-keyed caches observe the mutation.
func (s *MemorySchema) BumpVersion() { s.version.Add(1) }

// TableNames lists registered tables, sorted.
func (s *MemorySchema) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table looks up a table by name (case-insensitive).
func (s *MemorySchema) Table(name string) (TableProvider, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// MemoryCatalog is the built-in mutable CatalogProvider.
type MemoryCatalog struct {
	mu      sync.RWMutex
	schemas map[string]SchemaProvider
	version atomic.Int64
}

// NewMemoryCatalog returns a catalog with an empty "public" schema.
func NewMemoryCatalog() *MemoryCatalog {
	c := &MemoryCatalog{schemas: map[string]SchemaProvider{}}
	c.RegisterSchema("public", NewMemorySchema())
	return c
}

// RegisterSchema adds or replaces a schema, bumping the catalog version.
func (c *MemoryCatalog) RegisterSchema(name string, s SchemaProvider) {
	c.mu.Lock()
	c.schemas[strings.ToLower(name)] = s
	c.mu.Unlock()
	c.version.Add(1)
}

// Version summarizes catalog state for cache invalidation: the catalog's
// own registration counter plus every versioned schema's counter, so a
// table registered, replaced, or dropped anywhere changes the value.
func (c *MemoryCatalog) Version() int64 {
	v := c.version.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.schemas {
		if vs, ok := s.(interface{ Version() int64 }); ok {
			v += vs.Version()
		}
	}
	return v
}

// SchemaNames lists schemas, sorted.
func (c *MemoryCatalog) SchemaNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.schemas))
	for n := range c.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SchemaByName looks up a schema (case-insensitive).
func (c *MemoryCatalog) SchemaByName(name string) (SchemaProvider, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[strings.ToLower(name)]
	return s, ok
}

// batchStream adapts a batch slice into a Stream.
type batchStream struct {
	schema  *arrow.Schema
	batches []*arrow.RecordBatch
	pos     int
}

// NewBatchStream wraps pre-materialized batches as a Stream.
func NewBatchStream(schema *arrow.Schema, batches []*arrow.RecordBatch) Stream {
	return &batchStream{schema: schema, batches: batches}
}

func (s *batchStream) Schema() *arrow.Schema { return s.schema }
func (s *batchStream) Close()                {}
func (s *batchStream) Next() (*arrow.RecordBatch, error) {
	if s.pos >= len(s.batches) {
		return nil, io.EOF
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

// MemTable is an in-memory TableProvider over partitioned record batches.
type MemTable struct {
	schema     *arrow.Schema
	partitions [][]*arrow.RecordBatch
	sortOrder  []OrderedCol
	numRows    int64
}

// NewMemTable builds a table from one batch list per partition.
func NewMemTable(schema *arrow.Schema, partitions [][]*arrow.RecordBatch) (*MemTable, error) {
	var rows int64
	for _, part := range partitions {
		for _, b := range part {
			if !b.Schema().Equal(schema) {
				return nil, fmt.Errorf("catalog: batch schema %s != table schema %s", b.Schema(), schema)
			}
			rows += int64(b.NumRows())
		}
	}
	return &MemTable{schema: schema, partitions: partitions, numRows: rows}, nil
}

// WithSortOrder declares a known per-partition sort order.
func (m *MemTable) WithSortOrder(order []OrderedCol) *MemTable {
	m.sortOrder = order
	return m
}

// WithAppended returns a new MemTable sharing this table's partitions
// plus batches as one more partition (INSERT semantics: the original
// table is immutable, so in-flight scans keep their snapshot; callers
// re-register the returned table). A known sort order is dropped — the
// appended rows need not respect it.
func (m *MemTable) WithAppended(batches []*arrow.RecordBatch) (*MemTable, error) {
	parts := make([][]*arrow.RecordBatch, 0, len(m.partitions)+1)
	parts = append(parts, m.partitions...)
	if len(batches) > 0 {
		parts = append(parts, batches)
	}
	return NewMemTable(m.schema, parts)
}

// Schema returns the table schema.
func (m *MemTable) Schema() *arrow.Schema { return m.schema }

// Statistics returns the exact row count.
func (m *MemTable) Statistics() Statistics {
	return Statistics{NumRows: m.numRows, TotalBytes: -1}
}

// Scan implements projection and limit pushdown over in-memory batches.
func (m *MemTable) Scan(req ScanRequest) (*ScanResult, error) {
	outSchema := m.schema
	if req.Projection != nil {
		outSchema = m.schema.Select(req.Projection)
	}
	parts := m.partitions
	if len(parts) == 0 {
		parts = [][]*arrow.RecordBatch{nil}
	}
	// Respect the requested parallelism: a table grown by repeated appends
	// accumulates one partition per INSERT, but providers may only return
	// *fewer* partitions than asked for, never more (a CollectLeft join
	// under TargetPartitions=1 relies on a single probe partition).
	// Contiguous grouping keeps each original partition intact; the
	// per-partition sort order claim cannot survive concatenation.
	order := m.sortOrder
	if req.Partitions > 0 && len(parts) > req.Partitions {
		merged := make([][]*arrow.RecordBatch, req.Partitions)
		for i, p := range parts {
			tgt := i * req.Partitions / len(parts)
			merged[tgt] = append(merged[tgt], p...)
		}
		parts = merged
		order = nil
	}
	// Limit pushdown is only sound with no (unapplied) filters.
	limit := req.Limit
	if len(req.Filters) > 0 {
		limit = -1
	}
	return &ScanResult{
		Schema:       outSchema,
		Partitions:   len(parts),
		ExactFilters: make([]bool, len(req.Filters)),
		SortOrder:    order,
		Open: func(p int) (Stream, error) {
			src := parts[p]
			var out []*arrow.RecordBatch
			var taken int64
			for _, b := range src {
				if req.Projection != nil {
					b = b.Project(req.Projection)
				}
				if limit >= 0 {
					if taken >= limit {
						break
					}
					if taken+int64(b.NumRows()) > limit {
						b = b.Slice(0, int(limit-taken))
					}
				}
				taken += int64(b.NumRows())
				out = append(out, b)
			}
			return NewBatchStream(outSchema, out), nil
		},
	}, nil
}

// funcStream adapts a next function into a Stream (for providers that
// synthesize batches on demand).
type funcStream struct {
	schema *arrow.Schema
	next   func() (*arrow.RecordBatch, error)
}

// NewBatchStreamFunc wraps a next callback as a Stream; next returns
// io.EOF when exhausted.
func NewBatchStreamFunc(schema *arrow.Schema, next func() (*arrow.RecordBatch, error)) Stream {
	return &funcStream{schema: schema, next: next}
}

func (s *funcStream) Schema() *arrow.Schema             { return s.schema }
func (s *funcStream) Next() (*arrow.RecordBatch, error) { return s.next() }
func (s *funcStream) Close()                            {}
