package catalog

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/csvio"
	"gofusion/internal/jsonio"
	"gofusion/internal/logical"
	"gofusion/internal/memory"
	"gofusion/internal/parquet"
)

// MetaCache is the engine's concrete planning-cache instantiation:
// directory listings plus parsed GPQ footers, typed so callers never
// cast metadata out of an any.
type MetaCache = memory.CacheManager[*parquet.FileMetadata]

// NewMetaCache returns a MetaCache with the given entry capacities.
func NewMetaCache(listingCap, metaCap int) *MetaCache {
	return memory.NewCacheManager[*parquet.FileMetadata](listingCap, metaCap)
}

// GPQTable is a TableProvider over one or more GPQ files, with projection,
// predicate and limit pushdown, file-level pruning, and partitioned reads.
type GPQTable struct {
	files  []string
	schema *arrow.Schema
	stats  Statistics
	order  []OrderedCol
	// cache memoizes parsed footers (shared across tables when the session
	// supplies it, private otherwise) so scans — which may open many
	// per-morsel streams — never re-decode them. There is exactly one
	// footer cache; construction primes it.
	cache *MetaCache
	// pages, when set, is the process-wide decoded-page cache threaded
	// into every scan this table plans.
	pages *parquet.PageCache
}

// NewGPQTable opens a GPQ-backed table. All files must share a schema.
// cache may be nil, in which case the table keeps a private footer cache.
func NewGPQTable(files []string, cache *MetaCache) (*GPQTable, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("catalog: GPQ table needs at least one file")
	}
	if cache == nil {
		cache = NewMetaCache(16, 4*len(files))
	}
	t := &GPQTable{files: files, cache: cache, stats: Statistics{}}
	for i, f := range files {
		meta, err := t.metadata(f)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			t.schema = meta.Schema
			if so, ok := meta.KV["sort_order"]; ok {
				t.order = parseSortOrder(so)
			}
		} else if !meta.Schema.Equal(t.schema) {
			return nil, fmt.Errorf("catalog: %s schema differs from %s", f, files[0])
		}
		t.stats.NumRows += meta.NumRows
		if st, err := os.Stat(f); err == nil {
			t.stats.TotalBytes += st.Size()
		}
	}
	return t, nil
}

func parseSortOrder(s string) []OrderedCol {
	var out []OrderedCol
	for _, part := range strings.Split(s, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) == 0 {
			continue
		}
		out = append(out, OrderedCol{
			Name: fields[0],
			Desc: len(fields) > 1 && strings.EqualFold(fields[1], "DESC"),
		})
	}
	return out
}

// metadata reads a file's footer through the shared typed cache.
func (t *GPQTable) metadata(path string) (*parquet.FileMetadata, error) {
	return t.cache.FileMeta().GetOrLoad(path, func() (*parquet.FileMetadata, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		return parquet.ReadMetadata(f, st.Size())
	})
}

// Files returns the table's backing file paths.
func (t *GPQTable) Files() []string { return t.files }

// Append writes batches onto the table's last backing file in place and
// drops that file's cached footer (the file's size/mtime fingerprint
// rotates, so page caches and mmap registries key the new contents
// separately). The receiver's cached statistics and sort order are NOT
// refreshed — re-open the table over Files() to plan against the grown
// file.
func (t *GPQTable) Append(batches []*arrow.RecordBatch, opts parquet.WriterOptions) error {
	last := t.files[len(t.files)-1]
	if err := parquet.AppendFile(last, batches, opts); err != nil {
		return err
	}
	t.cache.FileMeta().Delete(last)
	return nil
}

// SetPageCache attaches the shared decoded-page cache; subsequent Scans
// thread it into their readers. Nil detaches.
func (t *GPQTable) SetPageCache(pc *parquet.PageCache) { t.pages = pc }

// Schema returns the table schema.
func (t *GPQTable) Schema() *arrow.Schema { return t.schema }

// Statistics returns exact row counts from file footers.
func (t *GPQTable) Statistics() Statistics { return t.stats }

// scanUnit is the work unit of a partitioned GPQ scan: a set of row
// groups (ascending) within one file.
type scanUnit struct {
	file   string
	groups []int
	rows   int64
}

// planUnits builds one scan unit per surviving row group, pruning at file
// granularity (aggregated footer stats) and then at row-group granularity
// (per-chunk stats). Bloom-filter and page-level pruning stay in the
// scanner, which reads data pages anyway.
func (t *GPQTable) planUnits(pred parquet.Predicate) (units []scanUnit, pruned int, err error) {
	for _, f := range t.files {
		meta, err := t.metadata(f)
		if err != nil {
			return nil, 0, err
		}
		if pred != nil {
			keep := true
			for _, col := range pred.Columns() {
				if !pred.KeepColumnStats(col, fileColumnStats(meta, col)) {
					keep = false
					break
				}
			}
			if !keep {
				pruned += meta.NumRowGroups()
				continue
			}
		}
		for rg := 0; rg < meta.NumRowGroups(); rg++ {
			if pred != nil {
				keep := true
				for _, col := range pred.Columns() {
					if !pred.KeepColumnStats(col, meta.ColumnChunkStats(rg, col)) {
						keep = false
						break
					}
				}
				if !keep {
					pruned++
					continue
				}
			}
			units = append(units, scanUnit{file: f, groups: []int{rg}, rows: meta.RowGroupRows(rg)})
		}
	}
	return units, pruned, nil
}

// dealUnits distributes row-group units across numParts partitions,
// balancing by footer row counts: each unit goes to the least-loaded
// partition (ties to the lowest index), then units sharing a file within
// a partition merge into one multi-row-group unit so the file is opened
// once.
func dealUnits(units []scanUnit, numParts int) [][]scanUnit {
	parts := make([][]scanUnit, numParts)
	loads := make([]int64, numParts)
	for _, u := range units {
		best := 0
		for p := 1; p < numParts; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		if n := len(parts[best]); n > 0 && parts[best][n-1].file == u.file {
			prev := &parts[best][n-1]
			prev.groups = append(prev.groups, u.groups...)
			prev.rows += u.rows
		} else {
			parts[best] = append(parts[best], u)
		}
		loads[best] += u.rows
	}
	return parts
}

// unitsDetail renders per-partition row-group assignments for EXPLAIN,
// e.g. "p0=data.gpq[rg0-3] p1=data.gpq[rg4-7]". Long listings truncate.
func unitsDetail(parts [][]scanUnit) string {
	var sb strings.Builder
	for p, us := range parts {
		if p > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "p%d=", p)
		for i, u := range us {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(filepath.Base(u.file))
			sb.WriteString(rangesString(u.groups))
		}
		if sb.Len() > 160 && p < len(parts)-1 {
			fmt.Fprintf(&sb, " …(+%d partitions)", len(parts)-1-p)
			break
		}
	}
	return sb.String()
}

// rangesString compacts a sorted row-group index list into "[rg0-3,rg7]".
func rangesString(groups []int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < len(groups); {
		j := i
		for j+1 < len(groups) && groups[j+1] == groups[j]+1 {
			j++
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		if i == j {
			fmt.Fprintf(&sb, "rg%d", groups[i])
		} else {
			fmt.Fprintf(&sb, "rg%d-%d", groups[i], groups[j])
		}
		i = j + 1
	}
	sb.WriteByte(']')
	return sb.String()
}

// Scan prepares a pushed-down partitioned scan. Partitioning is
// row-group-granular: row groups refuted by footer statistics are pruned
// at plan time (file level, then chunk level), and the survivors are
// dealt across up to req.Partitions partitions balanced by row count —
// so a single large file still scans in parallel.
func (t *GPQTable) Scan(req ScanRequest) (*ScanResult, error) {
	pred, exact := CompileFilters(req.Filters, t.schema)
	allExact := true
	for _, e := range exact {
		if !e {
			allExact = false
		}
	}
	limit := req.Limit
	if !allExact {
		limit = -1
	}

	units, pruned, err := t.planUnits(pred)
	if err != nil {
		return nil, err
	}

	numParts := req.Partitions
	if numParts <= 0 {
		numParts = 1
	}
	if numParts > len(units) {
		numParts = len(units)
	}
	if numParts == 0 {
		numParts = 1
	}
	parts := dealUnits(units, numParts)

	outSchema := t.schema
	if req.Projection != nil {
		outSchema = t.schema.Select(req.Projection)
	}
	order := t.order
	if len(t.files) > 1 || numParts > 1 {
		// Order survives only when one partition reads one file's row
		// groups in file order; splitting a file across partitions or
		// interleaving files within a partition destroys it.
		order = nil
	}
	detail := fmt.Sprintf("rowgroups=%d pruned=%d", len(units), pruned)
	if len(units) > 0 {
		detail += " " + unitsDetail(parts)
	}
	rt := &ScanRuntime{}
	rt.RowGroupsPruned.Add(int64(pruned)) // plan-time file/row-group pruning
	pages := req.PageCache
	if pages == nil {
		pages = t.pages
	}
	opts := parquet.ScanOptions{
		Projection: req.Projection,
		Predicate:  pred,
		Limit:      limit,
		BatchRows:  req.BatchRows,
		Readahead:  req.Readahead,
		Cache:      pages,
	}
	return &ScanResult{
		Schema:       outSchema,
		Partitions:   numParts,
		ExactFilters: exact,
		SortOrder:    order,
		Detail:       detail,
		Runtime:      rt,
		Morsels:      t.morselSet(units, numParts, outSchema, rt, opts),
		Open: func(p int) (Stream, error) {
			return &gpqStream{units: parts[p], schema: outSchema, rt: rt, opts: opts, meta: t.metadata}, nil
		},
	}, nil
}

// morselSet builds the dynamically schedulable view of a parallel scan:
// surviving row groups are chunked about 4x finer than the partition
// count (dealUnits keeps chunks row-balanced and merges same-file
// neighbors so each chunk opens its file once), then ordered largest
// first so the longest chunks start earliest. Single-partition scans
// keep the static path — there is nobody to steal from.
func (t *GPQTable) morselSet(units []scanUnit, numParts int, outSchema *arrow.Schema, rt *ScanRuntime, opts parquet.ScanOptions) *MorselSet {
	if numParts <= 1 || len(units) < 2 {
		// One worker, or one unit: nothing to schedule dynamically.
		return nil
	}
	n := numParts * 4
	if n > len(units) {
		n = len(units)
	}
	var ms [][]scanUnit
	for _, us := range dealUnits(units, n) {
		if len(us) > 0 {
			ms = append(ms, us)
		}
	}
	rowsOf := func(us []scanUnit) int64 {
		var r int64
		for _, u := range us {
			r += u.rows
		}
		return r
	}
	sort.SliceStable(ms, func(i, j int) bool { return rowsOf(ms[i]) > rowsOf(ms[j]) })
	rows := make([]int64, len(ms))
	for i, us := range ms {
		rows[i] = rowsOf(us)
	}
	return &MorselSet{
		Rows: rows,
		Open: func(unit int) (Stream, error) {
			return &gpqStream{units: ms[unit], schema: outSchema, rt: rt, opts: opts, meta: t.metadata}, nil
		},
	}
}

func fileColumnStats(meta *parquet.FileMetadata, col int) parquet.ColumnStats {
	return meta.ColumnStatsForFile(col)
}

// gpqStream reads a list of scan units sequentially, one scanner per
// unit, with optional readahead inside each scanner.
type gpqStream struct {
	units  []scanUnit
	schema *arrow.Schema
	opts   parquet.ScanOptions
	rt     *ScanRuntime
	// meta resolves a file's already-parsed footer so per-unit opens skip
	// the footer decode; morsel-driven scans open many more streams than
	// static partitions, so this matters there most. Nil falls back to a
	// full OpenFile.
	meta    func(path string) (*parquet.FileMetadata, error)
	reader  *parquet.FileReader
	scanner *parquet.Scanner
	taken   int64
}

func (s *gpqStream) Schema() *arrow.Schema { return s.schema }

func (s *gpqStream) Next() (*arrow.RecordBatch, error) {
	for {
		if s.scanner == nil {
			if len(s.units) == 0 {
				return nil, io.EOF
			}
			if s.opts.Limit >= 0 && s.taken >= s.opts.Limit {
				return nil, io.EOF
			}
			unit := s.units[0]
			fr, err := s.openUnitFile(unit.file)
			if err != nil {
				return nil, err
			}
			s.units = s.units[1:]
			opts := s.opts
			opts.RowGroups = unit.groups
			if opts.Limit >= 0 {
				opts.Limit -= s.taken
			}
			sc, err := fr.Scan(opts)
			if err != nil {
				fr.Close()
				return nil, err
			}
			s.reader, s.scanner = fr, sc
		}
		b, err := s.scanner.Next()
		if err == io.EOF {
			s.closeCurrent()
			continue
		}
		if err != nil {
			return nil, err
		}
		s.taken += int64(b.NumRows())
		return b, nil
	}
}

func (s *gpqStream) openUnitFile(path string) (*parquet.FileReader, error) {
	if s.meta != nil {
		if m, err := s.meta(path); err == nil {
			return parquet.OpenFileWithMeta(path, m)
		}
	}
	return parquet.OpenFile(path)
}

func (s *gpqStream) closeCurrent() {
	if s.scanner != nil {
		// Close first: it stops and joins the readahead producer, making
		// the scanner's pruning counters safe to read.
		s.scanner.Close()
		if s.rt != nil {
			s.rt.RowGroupsPruned.Add(int64(s.scanner.RowGroupsPruned))
			s.rt.RowGroupsScanned.Add(int64(s.scanner.RowGroupsMatched))
			s.rt.PagesPruned.Add(int64(s.scanner.PagesSkipped))
			s.rt.BloomSkipped.Add(int64(s.scanner.BloomSkipped))
			s.rt.PageCacheHits.Add(int64(s.scanner.PageCacheHits))
			s.rt.PageCacheMisses.Add(int64(s.scanner.PageCacheMisses))
		}
	}
	if s.reader != nil {
		s.reader.Close()
	}
	s.reader, s.scanner = nil, nil
}

func (s *gpqStream) Close() { s.closeCurrent() }

// CSVTable is a TableProvider over a CSV file with projection pushdown.
type CSVTable struct {
	path   string
	schema *arrow.Schema
	opts   csvio.Options
}

// NewCSVTable opens a CSV-backed table, inferring the schema when schema
// is nil.
func NewCSVTable(path string, schema *arrow.Schema, opts csvio.Options) (*CSVTable, error) {
	if schema == nil {
		inferred, err := csvio.InferSchema(path, opts)
		if err != nil {
			return nil, err
		}
		schema = inferred
	}
	return &CSVTable{path: path, schema: schema, opts: opts}, nil
}

// Schema returns the table schema.
func (t *CSVTable) Schema() *arrow.Schema { return t.schema }

// Statistics returns the file size only; row counts require a full parse.
func (t *CSVTable) Statistics() Statistics {
	st := UnknownStats()
	if fi, err := os.Stat(t.path); err == nil {
		st.TotalBytes = fi.Size()
	}
	return st
}

// Scan reads the file in one partition with projection pushdown.
func (t *CSVTable) Scan(req ScanRequest) (*ScanResult, error) {
	outSchema := t.schema
	if req.Projection != nil {
		outSchema = t.schema.Select(req.Projection)
	}
	limit := req.Limit
	if len(req.Filters) > 0 {
		limit = -1
	}
	return &ScanResult{
		Schema:       outSchema,
		Partitions:   1,
		ExactFilters: make([]bool, len(req.Filters)),
		Open: func(int) (Stream, error) {
			opts := t.opts
			if req.BatchRows > 0 {
				opts.BatchRows = req.BatchRows
			}
			r, err := csvio.NewReader(t.path, t.schema, req.Projection, opts)
			if err != nil {
				return nil, err
			}
			return &limitStream{inner: &csvStream{r: r}, remaining: limit}, nil
		},
	}, nil
}

type csvStream struct{ r *csvio.Reader }

func (s *csvStream) Schema() *arrow.Schema             { return s.r.Schema() }
func (s *csvStream) Next() (*arrow.RecordBatch, error) { return s.r.Next() }
func (s *csvStream) Close()                            { s.r.Close() }

// JSONTable is a TableProvider over an NDJSON file.
type JSONTable struct {
	path   string
	schema *arrow.Schema
	opts   jsonio.Options
}

// NewJSONTable opens an NDJSON-backed table, inferring the schema when
// schema is nil.
func NewJSONTable(path string, schema *arrow.Schema, opts jsonio.Options) (*JSONTable, error) {
	if schema == nil {
		inferred, err := jsonio.InferSchema(path, opts)
		if err != nil {
			return nil, err
		}
		schema = inferred
	}
	return &JSONTable{path: path, schema: schema, opts: opts}, nil
}

// Schema returns the table schema.
func (t *JSONTable) Schema() *arrow.Schema { return t.schema }

// Statistics returns the file size only.
func (t *JSONTable) Statistics() Statistics {
	st := UnknownStats()
	if fi, err := os.Stat(t.path); err == nil {
		st.TotalBytes = fi.Size()
	}
	return st
}

// Scan reads the file in one partition; projection is applied after
// decoding.
func (t *JSONTable) Scan(req ScanRequest) (*ScanResult, error) {
	outSchema := t.schema
	if req.Projection != nil {
		outSchema = t.schema.Select(req.Projection)
	}
	limit := req.Limit
	if len(req.Filters) > 0 {
		limit = -1
	}
	return &ScanResult{
		Schema:       outSchema,
		Partitions:   1,
		ExactFilters: make([]bool, len(req.Filters)),
		Open: func(int) (Stream, error) {
			opts := t.opts
			if req.BatchRows > 0 {
				opts.BatchRows = req.BatchRows
			}
			r, err := jsonio.NewReader(t.path, t.schema, opts)
			if err != nil {
				return nil, err
			}
			return &limitStream{
				inner:     &jsonStream{r: r, projection: req.Projection, schema: outSchema},
				remaining: limit,
			}, nil
		},
	}, nil
}

type jsonStream struct {
	r          *jsonio.Reader
	projection []int
	schema     *arrow.Schema
}

func (s *jsonStream) Schema() *arrow.Schema { return s.schema }
func (s *jsonStream) Close()                { s.r.Close() }
func (s *jsonStream) Next() (*arrow.RecordBatch, error) {
	b, err := s.r.Next()
	if err != nil {
		return nil, err
	}
	if s.projection != nil {
		b = b.Project(s.projection)
	}
	return b, nil
}

// limitStream truncates an inner stream after n rows (n < 0 disables).
type limitStream struct {
	inner     Stream
	remaining int64
}

func (s *limitStream) Schema() *arrow.Schema { return s.inner.Schema() }
func (s *limitStream) Close()                { s.inner.Close() }
func (s *limitStream) Next() (*arrow.RecordBatch, error) {
	if s.remaining == 0 {
		return nil, io.EOF
	}
	b, err := s.inner.Next()
	if err != nil {
		return nil, err
	}
	if s.remaining < 0 {
		return b, nil
	}
	if int64(b.NumRows()) > s.remaining {
		b = b.Slice(0, int(s.remaining))
	}
	s.remaining -= int64(b.NumRows())
	return b, nil
}

// ListingTable builds a TableProvider from a directory of data files of
// one format ("gpq", "csv", "json"), in the style of Hive-partitioned
// listings. Files are discovered recursively and sorted for determinism.
func ListingTable(dir, format string, cache *MetaCache) (TableProvider, error) {
	ext := "." + format
	var files []string
	listKey := dir + "|" + format
	if cache != nil {
		if cached, ok := cache.Listings().Get(listKey); ok {
			files = cached
		}
	}
	if files == nil {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ext) {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(files)
		if cache != nil {
			cache.Listings().Put(listKey, files)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("catalog: no %s files under %s", format, dir)
	}
	switch format {
	case "gpq":
		return NewGPQTable(files, cache)
	case "csv":
		if len(files) == 1 {
			return NewCSVTable(files[0], nil, csvio.DefaultOptions())
		}
		return nil, fmt.Errorf("catalog: multi-file CSV listings are not supported")
	case "json":
		if len(files) == 1 {
			return NewJSONTable(files[0], nil, jsonio.Options{})
		}
		return nil, fmt.Errorf("catalog: multi-file JSON listings are not supported")
	}
	return nil, fmt.Errorf("catalog: unknown format %q", format)
}

var _ logical.TableSource = (TableProvider)(nil)
