package catalog

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/csvio"
	"gofusion/internal/jsonio"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
)

func drain(t *testing.T, s Stream) []*arrow.RecordBatch {
	t.Helper()
	defer s.Close()
	var out []*arrow.RecordBatch
	for {
		b, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
}

func countRows(bs []*arrow.RecordBatch) int {
	n := 0
	for _, b := range bs {
		n += b.NumRows()
	}
	return n
}

func TestMemoryCatalogAndSchema(t *testing.T) {
	c := NewMemoryCatalog()
	sp, ok := c.SchemaByName("PUBLIC")
	if !ok {
		t.Fatal("public schema missing")
	}
	ms := sp.(*MemorySchema)
	schema := arrow.NewSchema(arrow.NewField("x", arrow.Int64, false))
	mt, _ := NewMemTable(schema, nil)
	ms.Register("T1", mt)
	if _, ok := ms.Table("t1"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if len(ms.TableNames()) != 1 {
		t.Fatal("table names wrong")
	}
	ms.Deregister("t1")
	if _, ok := ms.Table("t1"); ok {
		t.Fatal("deregister failed")
	}
	c.RegisterSchema("extra", NewMemorySchema())
	if len(c.SchemaNames()) != 2 {
		t.Fatal("schema names wrong")
	}
}

func TestMemTableScanPushdown(t *testing.T) {
	schema := arrow.NewSchema(
		arrow.NewField("a", arrow.Int64, false),
		arrow.NewField("b", arrow.String, false),
	)
	mk := func(vals ...int64) *arrow.RecordBatch {
		sb := arrow.NewStringBuilder(arrow.String)
		for range vals {
			sb.Append("x")
		}
		return arrow.NewRecordBatch(schema, []arrow.Array{arrow.NewInt64(vals), sb.Finish()})
	}
	mt, err := NewMemTable(schema, [][]*arrow.RecordBatch{
		{mk(1, 2, 3)}, {mk(4, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Statistics().NumRows != 5 {
		t.Fatal("stats wrong")
	}
	res, err := mt.Scan(ScanRequest{Projection: []int{0}, Limit: 2, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 2 || res.Schema.NumFields() != 1 {
		t.Fatal("scan shape wrong")
	}
	total := 0
	for p := 0; p < res.Partitions; p++ {
		s, err := res.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		total += countRows(drain(t, s))
	}
	// Limit applies per partition on MemTable (2 per partition max).
	if total > 4 {
		t.Fatalf("limit not applied: %d", total)
	}
	// Limit must NOT apply under unpushed filters, and a single-partition
	// request must fold both stored partitions into one stream (providers
	// may return fewer partitions than asked for, never more).
	res2, _ := mt.Scan(ScanRequest{Limit: 1, Partitions: 1,
		Filters: []logical.Expr{logical.Eq(logical.Col("a"), logical.Lit(5))}})
	if res2.Partitions != 1 {
		t.Fatalf("requested 1 partition, got %d", res2.Partitions)
	}
	s, _ := res2.Open(0)
	if countRows(drain(t, s)) != 5 {
		t.Fatal("limit must be ignored with unapplied filters")
	}
	if res2.ExactFilters[0] {
		t.Fatal("MemTable does not apply filters")
	}
}

func writeGPQ(t *testing.T, dir string, n int) string {
	t.Helper()
	schema := arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("name", arrow.String, false),
	)
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		ib.Append(int64(i))
		sb.Append("n")
	}
	path := filepath.Join(dir, "data.gpq")
	err := parquet.WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{ib.Finish(), sb.Finish()})},
		parquet.WriterOptions{RowGroupRows: 100, PageRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGPQTableFilterPushdownExactness(t *testing.T) {
	dir := t.TempDir()
	path := writeGPQ(t, dir, 1000)
	tbl, err := NewGPQTable([]string{path}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Statistics().NumRows != 1000 {
		t.Fatal("stats rows wrong")
	}
	// A compilable filter is exact and rows come back filtered.
	res, err := tbl.Scan(ScanRequest{
		Filters: []logical.Expr{
			&logical.BinaryExpr{Op: logical.OpLt, L: logical.Col("id"), R: logical.Lit(int64(10))},
		},
		Limit:      -1,
		Partitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactFilters[0] {
		t.Fatal("comparison filter should be exact")
	}
	s, _ := res.Open(0)
	if countRows(drain(t, s)) != 10 {
		t.Fatal("pushdown rows wrong")
	}
	// An uncompilable filter is inexact and ignored by the provider.
	res2, err := tbl.Scan(ScanRequest{
		Filters: []logical.Expr{
			&logical.ScalarFunc{Name: "weird", Args: []logical.Expr{logical.Col("name")}},
		},
		Limit:      -1,
		Partitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExactFilters[0] {
		t.Fatal("function filter cannot be exact")
	}
}

func TestGPQFilePruning(t *testing.T) {
	// Two files with disjoint id ranges: a filter on one range must prune
	// the other file at plan time.
	dir := t.TempDir()
	schema := arrow.NewSchema(arrow.NewField("id", arrow.Int64, false))
	write := func(name string, lo, hi int64) string {
		b := arrow.NewNumericBuilder[int64](arrow.Int64)
		for v := lo; v < hi; v++ {
			b.Append(v)
		}
		p := filepath.Join(dir, name)
		if err := parquet.WriteFile(p, schema,
			[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{b.Finish()})},
			parquet.DefaultWriterOptions()); err != nil {
			t.Fatal(err)
		}
		return p
	}
	f1 := write("low.gpq", 0, 100)
	f2 := write("high.gpq", 1000, 1100)
	tbl, err := NewGPQTable([]string{f1, f2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(ScanRequest{
		Filters:    []logical.Expr{&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("id"), R: logical.Lit(int64(1050))}},
		Limit:      -1,
		Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only one file survives pruning, so only one partition.
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1 after file pruning", res.Partitions)
	}
	s, _ := res.Open(0)
	if countRows(drain(t, s)) != 49 {
		t.Fatal("rows wrong after pruning")
	}
}

func TestGPQSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	f1 := writeGPQ(t, dir, 10)
	other := filepath.Join(dir, "other.gpq")
	schema := arrow.NewSchema(arrow.NewField("different", arrow.Float64, false))
	if err := parquet.WriteFile(other, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{arrow.NewFloat64([]float64{1})})},
		parquet.DefaultWriterOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGPQTable([]string{f1, other}, nil); err == nil {
		t.Fatal("mixed schemas must be rejected")
	}
}

func TestListingTable(t *testing.T) {
	dir := t.TempDir()
	writeGPQ(t, dir, 50)
	cache := NewMetaCache(8, 8)
	tbl, err := ListingTable(dir, "gpq", cache)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Statistics().NumRows != 50 {
		t.Fatal("listing stats wrong")
	}
	// Second listing hits the cache.
	if _, err := ListingTable(dir, "gpq", cache); err != nil {
		t.Fatal(err)
	}
	hits, _ := cache.Listings().Stats()
	if hits == 0 {
		t.Fatal("listing cache unused")
	}
	if _, err := ListingTable(dir, "csv", cache); err == nil {
		t.Fatal("no csv files should error")
	}
}

func TestCSVTableProjection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,x\n2,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := NewCSVTable(path, nil, csvio.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(ScanRequest{Projection: []int{1}, Limit: -1, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Open(0)
	batches := drain(t, s)
	if countRows(batches) != 2 || batches[0].NumCols() != 1 {
		t.Fatal("csv projection wrong")
	}
	if batches[0].Column(0).(*arrow.StringArray).Value(1) != "y" {
		t.Fatal("csv values wrong")
	}
}

func TestJSONTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	if err := os.WriteFile(path, []byte("{\"a\": 1}\n{\"a\": 2}\n{\"a\": 3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := NewJSONTable(path, nil, jsonio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan(ScanRequest{Limit: 2, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Open(0)
	if countRows(drain(t, s)) != 2 {
		t.Fatal("json limit wrong")
	}
}

func TestCompiledPredicateAtoms(t *testing.T) {
	schema := arrow.NewSchema(
		arrow.NewField("n", arrow.Int64, true),
		arrow.NewField("s", arrow.String, true),
	)
	filters := []logical.Expr{
		&logical.BinaryExpr{Op: logical.OpGtEq, L: logical.Col("n"), R: logical.Lit(int64(5))},
		&logical.Like{E: logical.Col("s"), Pattern: logical.Lit("ab%")},
		&logical.InList{E: logical.Col("n"), List: []logical.Expr{logical.Lit(int64(5)), logical.Lit(int64(7))}},
		&logical.IsNull{E: logical.Col("s"), Negated: true},
	}
	pred, exact := CompileFilters(filters, schema)
	for i, e := range exact {
		if !e {
			t.Fatalf("filter %d should compile", i)
		}
	}
	// Row-level evaluation.
	nb := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	for _, v := range []int64{5, 7, 9} {
		nb.Append(v)
	}
	sb.Append("abc")
	sb.Append("zzz")
	sb.AppendNull()
	mask, err := pred.Evaluate(map[int]arrow.Array{0: nb.Finish(), 1: sb.Finish()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: n=5 in-list, >=5, s=abc like ab%, not null -> true.
	if !mask.Value(0) {
		t.Fatal("row 0 should pass")
	}
	// Row 1: like fails.
	if mask.IsValid(1) && mask.Value(1) {
		t.Fatal("row 1 should fail")
	}
	// Stats pruning: n in (5,7) prunes containers above 7.
	keep := pred.KeepColumnStats(0, parquet.ColumnStats{
		Min: arrow.Int64Scalar(100), Max: arrow.Int64Scalar(200), HasMinMax: true, NumRows: 10})
	if keep {
		t.Fatal("stats should prune")
	}
	// LIKE prefix pruning on strings.
	keepS := pred.KeepColumnStats(1, parquet.ColumnStats{
		Min: arrow.StringScalar("x"), Max: arrow.StringScalar("z"), HasMinMax: true, NumRows: 10})
	if keepS {
		t.Fatal("like prefix should prune [x,z]")
	}
	// Equality probes only come from = atoms (none here).
	if len(pred.EqProbes()) != 0 {
		t.Fatal("no eq probes expected")
	}
}
