package catalog

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/jsonio"
)

// TailingJSONTable is the file-backed unbounded source: it tails an
// NDJSON file, yielding batches as complete lines are appended by an
// external writer. The stream ends when a seal marker file (path +
// ".seal") appears — the file-system analogue of StreamTable.Seal — or
// when the query is cancelled. Readers poll byte-offset growth (no
// inotify dependency); only complete newline-terminated lines are
// consumed, so a writer mid-line never produces a torn row.
type TailingJSONTable struct {
	path   string
	schema *arrow.Schema
	poll   time.Duration
	// watermark is the 0-based schema index of the event-time column, -1
	// when none.
	watermark int
}

// SealMarker returns the marker path whose existence ends a tailed file.
func SealMarker(path string) string { return path + ".seal" }

// NewTailingJSONTable opens a tailing table over an NDJSON file. A nil
// schema is inferred from the file's current contents (the file must
// exist and hold at least one row in that case). poll <= 0 defaults to
// 10ms.
func NewTailingJSONTable(path string, schema *arrow.Schema, poll time.Duration) (*TailingJSONTable, error) {
	if schema == nil {
		inferred, err := jsonio.InferSchema(path, jsonio.Options{})
		if err != nil {
			return nil, err
		}
		schema = inferred
	}
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	return &TailingJSONTable{path: path, schema: schema, poll: poll, watermark: -1}, nil
}

// WithWatermark declares the event-time column (same contract as
// StreamTable.WithWatermark).
func (t *TailingJSONTable) WithWatermark(col string) (*TailingJSONTable, error) {
	idx := t.schema.FieldIndex(col)
	if idx < 0 {
		return nil, fmt.Errorf("catalog: watermark column %q not in schema", col)
	}
	switch t.schema.Field(idx).Type.ID {
	case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64,
		arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64,
		arrow.DATE32, arrow.TIMESTAMP:
	default:
		return nil, fmt.Errorf("catalog: watermark column %q must be integer, date, or timestamp typed, got %s",
			col, t.schema.Field(idx).Type)
	}
	t.watermark = idx
	return t, nil
}

// Schema returns the table schema.
func (t *TailingJSONTable) Schema() *arrow.Schema { return t.schema }

// Statistics: row counts are unknown for a live tail.
func (t *TailingJSONTable) Statistics() Statistics { return UnknownStats() }

func (t *TailingJSONTable) sealed() bool {
	_, err := os.Stat(SealMarker(t.path))
	return err == nil
}

// Scan prepares a tailing read; unbounded until the seal marker exists.
func (t *TailingJSONTable) Scan(req ScanRequest) (*ScanResult, error) {
	outSchema := t.schema
	if req.Projection != nil {
		outSchema = t.schema.Select(req.Projection)
	}
	wm := 0
	if t.watermark >= 0 {
		if req.Projection == nil {
			wm = t.watermark + 1
		} else {
			for i, c := range req.Projection {
				if c == t.watermark {
					wm = i + 1
					break
				}
			}
		}
	}
	batchRows := req.BatchRows
	if batchRows <= 0 {
		batchRows = 8192
	}
	return &ScanResult{
		Schema:       outSchema,
		Partitions:   1,
		ExactFilters: make([]bool, len(req.Filters)),
		Unbounded:    !t.sealed(),
		Watermark:    wm,
		Detail:       "tail-file",
		Open: func(p int) (Stream, error) {
			return &fileTailStream{t: t, schema: outSchema, proj: req.Projection, batchRows: batchRows}, nil
		},
	}, nil
}

// fileTailStream reads complete appended lines from the tailed file.
// Polling happens inside Next (no background goroutine to leak): each
// call decodes whatever complete lines arrived, or blocks on a poll
// timer / context cancellation when the file has not grown.
type fileTailStream struct {
	t         *TailingJSONTable
	schema    *arrow.Schema
	proj      []int
	batchRows int
	offset    int64
	pending   []byte // partial trailing line carried between polls
	ctx       context.Context
	closed    bool
}

// BindContext attaches the query context so blocked polls cancel.
func (s *fileTailStream) BindContext(ctx context.Context) { s.ctx = ctx }

func (s *fileTailStream) Schema() *arrow.Schema { return s.schema }
func (s *fileTailStream) Close()                { s.closed = true }

func (s *fileTailStream) Next() (*arrow.RecordBatch, error) {
	if s.closed {
		return nil, io.EOF
	}
	var done <-chan struct{}
	if s.ctx != nil {
		done = s.ctx.Done()
	}
	for {
		b, err := s.readAvailable()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		if s.t.sealed() {
			// Drain anything raced in between the read and the marker check.
			if b, err := s.readAvailable(); err != nil || b != nil {
				return b, err
			}
			return nil, io.EOF
		}
		timer := time.NewTimer(s.t.poll)
		select {
		case <-timer.C:
		case <-done:
			timer.Stop()
			return nil, s.ctx.Err()
		}
	}
}

// readAvailable decodes up to batchRows complete new lines, returning nil
// when the file has no complete new line.
func (s *fileTailStream) readAvailable() (*arrow.RecordBatch, error) {
	f, err := os.Open(s.t.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // writer has not created the file yet
		}
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() <= s.offset && len(s.pending) == 0 {
		return nil, nil
	}
	full := s.t.schema
	builders := make([]arrow.Builder, full.NumFields())
	for i, fld := range full.Fields() {
		builders[i] = arrow.NewBuilder(fld.Type)
	}
	rows := 0
	buf := make([]byte, 64<<10)
	for rows < s.batchRows {
		n, rerr := f.ReadAt(buf, s.offset)
		if n == 0 {
			break
		}
		s.offset += int64(n)
		chunk := buf[:n]
		for rows < s.batchRows {
			nl := bytes.IndexByte(chunk, '\n')
			if nl < 0 {
				s.pending = append(s.pending, chunk...)
				chunk = nil
				break
			}
			line := append(s.pending, chunk[:nl]...)
			s.pending = s.pending[:0]
			chunk = chunk[nl+1:]
			ok, derr := jsonio.DecodeLine(line, full, builders)
			if derr != nil {
				return nil, derr
			}
			if ok {
				rows++
			}
		}
		if len(chunk) > 0 {
			// Batch filled mid-chunk: push unconsumed bytes back.
			s.offset -= int64(len(chunk))
			break
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, rerr
		}
	}
	if rows == 0 {
		return nil, nil
	}
	arrs := make([]arrow.Array, len(builders))
	for i, b := range builders {
		arrs[i] = b.Finish()
	}
	batch := arrow.NewRecordBatchWithRows(full, arrs, rows)
	if s.proj != nil {
		batch = batch.Project(s.proj)
	}
	return batch, nil
}
