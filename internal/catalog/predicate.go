package catalog

import (
	"fmt"
	"regexp"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
)

// This file compiles a supported subset of logical filter expressions into
// parquet.Predicate implementations so the GPQ provider can prune row
// groups/pages and filter during scans (paper Section 6.8). Unsupported
// conjuncts simply stay in the Filter operator above the scan.

// atom is one compiled conjunct over a single column.
type atom interface {
	col() int
	eval(a arrow.Array) (*arrow.BoolArray, error)
	keepStats(stats parquet.ColumnStats) bool
	eqProbe() (arrow.Scalar, bool)
}

// cmpAtom is `col <op> literal`.
type cmpAtom struct {
	colIdx int
	op     compute.CmpOp
	lit    arrow.Scalar
}

func (c *cmpAtom) col() int { return c.colIdx }
func (c *cmpAtom) eval(a arrow.Array) (*arrow.BoolArray, error) {
	return compute.CompareScalar(c.op, a, c.lit)
}
func (c *cmpAtom) keepStats(stats parquet.ColumnStats) bool {
	return parquet.StatsKeepCompare(c.op.String(), stats, c.lit)
}
func (c *cmpAtom) eqProbe() (arrow.Scalar, bool) {
	if c.op == compute.Eq {
		return c.lit, true
	}
	return arrow.Scalar{}, false
}

// likeAtom is `col [NOT] LIKE pattern`; it contributes row filtering and,
// for prefix patterns, min/max pruning.
type likeAtom struct {
	colIdx  int
	matcher *compute.LikeMatcher
	prefix  string // non-empty for prefix patterns, enables stats pruning
	negated bool
}

func (l *likeAtom) col() int { return l.colIdx }
func (l *likeAtom) eval(a arrow.Array) (*arrow.BoolArray, error) {
	sa, ok := a.(*arrow.StringArray)
	if !ok {
		return nil, fmt.Errorf("catalog: LIKE over non-string column")
	}
	return l.matcher.Eval(sa), nil
}
func (l *likeAtom) keepStats(stats parquet.ColumnStats) bool {
	if l.negated || l.prefix == "" || !stats.HasMinMax {
		return true
	}
	// Rows matching 'prefix%' lie in [prefix, prefix+0xFF...]; keep the
	// container when its range intersects.
	if stats.Min.Null || stats.Max.Null || stats.Min.Type.ID != arrow.STRING {
		return true
	}
	mx := stats.Max.AsString()
	if mx < l.prefix {
		return false
	}
	upper := l.prefix + "\xff"
	return stats.Min.AsString() <= upper
}
func (l *likeAtom) eqProbe() (arrow.Scalar, bool) { return arrow.Scalar{}, false }

// inAtom is `col IN (literals...)`.
type inAtom struct {
	colIdx int
	vals   []arrow.Scalar
}

func (a *inAtom) col() int { return a.colIdx }
func (a *inAtom) eval(arr arrow.Array) (*arrow.BoolArray, error) {
	var out *arrow.BoolArray
	for _, v := range a.vals {
		m, err := compute.CompareScalar(compute.Eq, arr, v)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = m
		} else {
			out, err = compute.Or(out, m)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
func (a *inAtom) keepStats(stats parquet.ColumnStats) bool {
	for _, v := range a.vals {
		if parquet.StatsKeepCompare("=", stats, v) {
			return true
		}
	}
	return false
}
func (a *inAtom) eqProbe() (arrow.Scalar, bool) { return arrow.Scalar{}, false }

// nullAtom is `col IS [NOT] NULL`.
type nullAtom struct {
	colIdx  int
	negated bool // true = IS NOT NULL
}

func (a *nullAtom) col() int { return a.colIdx }
func (a *nullAtom) eval(arr arrow.Array) (*arrow.BoolArray, error) {
	if a.negated {
		return compute.IsNotNullMask(arr), nil
	}
	return compute.IsNullMask(arr), nil
}
func (a *nullAtom) keepStats(stats parquet.ColumnStats) bool {
	if a.negated {
		return stats.NumRows == 0 || stats.NullCount < stats.NumRows
	}
	return stats.NumRows == 0 || stats.NullCount > 0
}
func (a *nullAtom) eqProbe() (arrow.Scalar, bool) { return arrow.Scalar{}, false }

// compiledPredicate is a conjunction of atoms implementing
// parquet.Predicate.
type compiledPredicate struct {
	atoms []atom
	cols  []int
}

func (p *compiledPredicate) Columns() []int { return p.cols }

func (p *compiledPredicate) Evaluate(cols map[int]arrow.Array, numRows int) (*arrow.BoolArray, error) {
	var out *arrow.BoolArray
	for _, a := range p.atoms {
		arr, ok := cols[a.col()]
		if !ok {
			return nil, fmt.Errorf("catalog: predicate column %d missing", a.col())
		}
		m, err := a.eval(arr)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = m
		} else {
			out, err = compute.And(out, m)
			if err != nil {
				return nil, err
			}
		}
	}
	if out == nil {
		return arrow.NewBool(arrow.NewBitmapSet(numRows), nil, numRows), nil
	}
	return out, nil
}

func (p *compiledPredicate) KeepColumnStats(col int, stats parquet.ColumnStats) bool {
	for _, a := range p.atoms {
		if a.col() == col && !a.keepStats(stats) {
			return false
		}
	}
	return true
}

func (p *compiledPredicate) EqProbes() []parquet.EqProbe {
	var out []parquet.EqProbe
	for _, a := range p.atoms {
		if v, ok := a.eqProbe(); ok {
			out = append(out, parquet.EqProbe{Col: a.col(), Value: v})
		}
	}
	return out
}

// literalOf unwraps (possibly casted) literal expressions.
func literalOf(e logical.Expr) (arrow.Scalar, bool) {
	switch x := e.(type) {
	case *logical.Literal:
		return x.Value, true
	case *logical.Cast:
		s, ok := literalOf(x.E)
		if !ok {
			return arrow.Scalar{}, false
		}
		out, err := compute.CastScalar(s, x.To)
		if err != nil {
			return arrow.Scalar{}, false
		}
		return out, true
	case *logical.Alias:
		return literalOf(x.E)
	}
	return arrow.Scalar{}, false
}

// columnIndexOf resolves a column reference to a schema index.
func columnIndexOf(e logical.Expr, schema *arrow.Schema) (int, bool) {
	c, ok := e.(*logical.Column)
	if !ok {
		return 0, false
	}
	i := schema.FieldIndex(c.Name)
	return i, i >= 0
}

// normalizeLiteral coerces a literal to the column's physical type so the
// compare kernel sees matching kinds.
func normalizeLiteral(s arrow.Scalar, colType *arrow.DataType) (arrow.Scalar, bool) {
	if s.Type.Equal(colType) {
		return s, true
	}
	out, err := compute.CastScalar(s, colType)
	if err != nil {
		return arrow.Scalar{}, false
	}
	// Refuse lossy numeric narrowing (e.g. 3.5 -> int) to stay correct.
	if colType.IsInteger() && (s.Type.IsFloat() || s.Type.ID == arrow.DECIMAL) {
		back, err := compute.CastScalar(out, s.Type)
		if err != nil || !back.Equal(s) {
			return arrow.Scalar{}, false
		}
	}
	return out, true
}

var cmpOpOf = map[logical.BinOp]compute.CmpOp{
	logical.OpEq: compute.Eq, logical.OpNeq: compute.Neq,
	logical.OpLt: compute.Lt, logical.OpLtEq: compute.LtEq,
	logical.OpGt: compute.Gt, logical.OpGtEq: compute.GtEq,
}

// compileConjunct compiles one filter conjunct into atoms, returning
// ok=false when the shape is unsupported.
func compileConjunct(e logical.Expr, schema *arrow.Schema) ([]atom, bool) {
	switch x := e.(type) {
	case *logical.BinaryExpr:
		if x.Op == logical.OpAnd {
			l, ok := compileConjunct(x.L, schema)
			if !ok {
				return nil, false
			}
			r, ok := compileConjunct(x.R, schema)
			if !ok {
				return nil, false
			}
			return append(l, r...), true
		}
		op, ok := cmpOpOf[x.Op]
		if !ok {
			return nil, false
		}
		if col, okc := columnIndexOf(x.L, schema); okc {
			if lit, okl := literalOf(x.R); okl && !lit.Null {
				if n, okn := normalizeLiteral(lit, schema.Field(col).Type); okn {
					return []atom{&cmpAtom{colIdx: col, op: op, lit: n}}, true
				}
			}
		}
		if col, okc := columnIndexOf(x.R, schema); okc {
			if lit, okl := literalOf(x.L); okl && !lit.Null {
				if n, okn := normalizeLiteral(lit, schema.Field(col).Type); okn {
					return []atom{&cmpAtom{colIdx: col, op: op.Flip(), lit: n}}, true
				}
			}
		}
		return nil, false
	case *logical.Like:
		col, okc := columnIndexOf(x.E, schema)
		if !okc || schema.Field(col).Type.ID != arrow.STRING || x.CaseInsensitive {
			return nil, false
		}
		lit, okl := literalOf(x.Pattern)
		if !okl || lit.Null {
			return nil, false
		}
		pattern := lit.AsString()
		m, err := compute.CompileLike(pattern, x.Negated)
		if err != nil {
			return nil, false
		}
		prefix := likePrefix(pattern)
		return []atom{&likeAtom{colIdx: col, matcher: m, prefix: prefix, negated: x.Negated}}, true
	case *logical.InList:
		if x.Negated {
			return nil, false
		}
		col, okc := columnIndexOf(x.E, schema)
		if !okc {
			return nil, false
		}
		vals := make([]arrow.Scalar, 0, len(x.List))
		for _, item := range x.List {
			lit, okl := literalOf(item)
			if !okl || lit.Null {
				return nil, false
			}
			n, okn := normalizeLiteral(lit, schema.Field(col).Type)
			if !okn {
				return nil, false
			}
			vals = append(vals, n)
		}
		return []atom{&inAtom{colIdx: col, vals: vals}}, true
	case *logical.Between:
		if x.Negated {
			return nil, false
		}
		col, okc := columnIndexOf(x.E, schema)
		if !okc {
			return nil, false
		}
		lo, okl := literalOf(x.Low)
		hi, okh := literalOf(x.High)
		if !okl || !okh || lo.Null || hi.Null {
			return nil, false
		}
		nlo, ok1 := normalizeLiteral(lo, schema.Field(col).Type)
		nhi, ok2 := normalizeLiteral(hi, schema.Field(col).Type)
		if !ok1 || !ok2 {
			return nil, false
		}
		return []atom{
			&cmpAtom{colIdx: col, op: compute.GtEq, lit: nlo},
			&cmpAtom{colIdx: col, op: compute.LtEq, lit: nhi},
		}, true
	case *logical.IsNull:
		col, okc := columnIndexOf(x.E, schema)
		if !okc {
			return nil, false
		}
		return []atom{&nullAtom{colIdx: col, negated: x.Negated}}, true
	}
	return nil, false
}

var likePrefixRe = regexp.MustCompile(`^([^%_\\]+)%$`)

// likePrefix returns the literal prefix of 'prefix%'-shaped patterns.
func likePrefix(pattern string) string {
	m := likePrefixRe.FindStringSubmatch(pattern)
	if m == nil {
		return ""
	}
	return m[1]
}

// CompileFilters compiles pushable filter conjuncts into a
// parquet.Predicate, reporting per-filter exactness.
func CompileFilters(filters []logical.Expr, schema *arrow.Schema) (parquet.Predicate, []bool) {
	exact := make([]bool, len(filters))
	var atoms []atom
	for i, f := range filters {
		if as, ok := compileConjunct(f, schema); ok {
			atoms = append(atoms, as...)
			exact[i] = true
		}
	}
	if len(atoms) == 0 {
		return nil, exact
	}
	colSet := map[int]bool{}
	var cols []int
	for _, a := range atoms {
		if !colSet[a.col()] {
			colSet[a.col()] = true
			cols = append(cols, a.col())
		}
	}
	return &compiledPredicate{atoms: atoms, cols: cols}, exact
}
