package csvio

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sample = `id,name,score,active,joined
1,alice,3.5,true,2020-01-15
2,bob,,false,2021-06-30
3,,7.25,true,2019-11-01
`

func TestInferSchema(t *testing.T) {
	path := writeFile(t, sample)
	schema, err := InferSchema(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]arrow.TypeID{
		"id": arrow.INT64, "name": arrow.STRING, "score": arrow.FLOAT64,
		"active": arrow.BOOL, "joined": arrow.DATE32,
	}
	for name, id := range expect {
		i := schema.FieldIndex(name)
		if i < 0 {
			t.Fatalf("missing field %s", name)
		}
		if schema.Field(i).Type.ID != id {
			t.Fatalf("%s: inferred %s", name, schema.Field(i).Type)
		}
	}
	if !schema.Field(schema.FieldIndex("score")).Nullable {
		t.Fatal("score has empty values, must be nullable")
	}
}

func TestReadTyped(t *testing.T) {
	path := writeFile(t, sample)
	schema, err := InferSchema(path, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path, schema, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	if b.ColumnByName("id").(*arrow.Int64Array).Value(2) != 3 {
		t.Fatal("id wrong")
	}
	if !b.ColumnByName("score").IsNull(1) {
		t.Fatal("empty must be null")
	}
	if b.ColumnByName("name").(*arrow.StringArray).Value(0) != "alice" {
		t.Fatal("name wrong")
	}
	d := b.ColumnByName("joined").(*arrow.Int32Array)
	if arrow.FormatDate32(d.Value(0)) != "2020-01-15" {
		t.Fatal("date wrong")
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestProjection(t *testing.T) {
	path := writeFile(t, sample)
	schema, _ := InferSchema(path, DefaultOptions())
	r, err := NewReader(path, schema, []int{2, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumCols() != 2 || b.Schema().Field(0).Name != "score" {
		t.Fatal("projection wrong")
	}
}

func TestNoHeaderAndDelimiter(t *testing.T) {
	path := writeFile(t, "1|x\n2|y\n")
	opts := Options{Delimiter: '|', Header: false}
	schema, err := InferSchema(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if schema.Field(0).Name != "column_1" || schema.Field(0).Type.ID != arrow.INT64 {
		t.Fatalf("schema = %s", schema)
	}
	r, err := NewReader(path, schema, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, _ := r.Next()
	if b.NumRows() != 2 {
		t.Fatal("no-header read wrong")
	}
}

func TestBatching(t *testing.T) {
	content := "x\n"
	for i := 0; i < 25; i++ {
		content += "1\n"
	}
	path := writeFile(t, content)
	schema, _ := InferSchema(path, DefaultOptions())
	opts := DefaultOptions()
	opts.BatchRows = 10
	r, _ := NewReader(path, schema, nil, opts)
	defer r.Close()
	total, batches := 0, 0
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += b.NumRows()
		batches++
	}
	if total != 25 || batches != 3 {
		t.Fatalf("total=%d batches=%d", total, batches)
	}
}

func TestParseErrorsSurface(t *testing.T) {
	path := writeFile(t, "id\n1\nnot-a-number\n")
	schema := arrow.NewSchema(arrow.NewField("id", arrow.Int64, false))
	r, _ := NewReader(path, schema, nil, DefaultOptions())
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("bad int must error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	schema := arrow.NewSchema(
		arrow.NewField("a", arrow.Int64, true),
		arrow.NewField("b", arrow.String, true),
		arrow.NewField("f", arrow.Float64, true),
	)
	ab := arrow.NewNumericBuilder[int64](arrow.Int64)
	ab.Append(1)
	ab.AppendNull()
	sb := arrow.NewStringBuilder(arrow.String)
	sb.Append("hello, world") // embedded comma exercises quoting
	sb.Append("plain")
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	fb.Append(2.5)
	fb.Append(-0.125)
	batch := arrow.NewRecordBatch(schema, []arrow.Array{ab.Finish(), sb.Finish(), fb.Finish()})

	path := filepath.Join(t.TempDir(), "rt.csv")
	if err := WriteFile(path, schema, []*arrow.RecordBatch{batch}, 0); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path, schema, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatal("row count")
	}
	if got.Column(1).(*arrow.StringArray).Value(0) != "hello, world" {
		t.Fatal("quoted round trip failed")
	}
	if !got.Column(0).IsNull(1) {
		t.Fatal("null round trip failed")
	}
	if got.Column(2).(*arrow.Float64Array).Value(1) != -0.125 {
		t.Fatal("float round trip failed")
	}
}
