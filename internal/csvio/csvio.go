// Package csvio implements a CSV data source: schema inference, typed
// vectorized decoding into arrow RecordBatches, and a writer. It backs the
// engine's CSV TableProvider (paper Section 5.2.2).
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"gofusion/internal/arrow"
)

// Options configures CSV reading.
type Options struct {
	// Delimiter defaults to ','.
	Delimiter rune
	// Header indicates the first row contains column names (default true
	// via DefaultOptions).
	Header bool
	// BatchRows is the output batch size (default 8192).
	BatchRows int
	// InferRows is how many rows to sample for schema inference
	// (default 1000).
	InferRows int
	// NullLiterals are strings decoded as NULL (default: empty string).
	NullLiterals []string
}

// DefaultOptions returns the recommended reader configuration.
func DefaultOptions() Options {
	return Options{Delimiter: ',', Header: true, BatchRows: 8192, InferRows: 1000}
}

func (o Options) withDefaults() Options {
	if o.Delimiter == 0 {
		o.Delimiter = ','
	}
	if o.BatchRows <= 0 {
		o.BatchRows = 8192
	}
	if o.InferRows <= 0 {
		o.InferRows = 1000
	}
	return o
}

func (o Options) isNull(s string) bool {
	if s == "" {
		return true
	}
	for _, n := range o.NullLiterals {
		if s == n {
			return true
		}
	}
	return false
}

// InferSchema samples the head of a CSV file and infers column names and
// types. Candidate types are tried narrow to wide:
// Int64 -> Float64 -> Date32 -> Timestamp -> Boolean -> Utf8.
func InferSchema(path string, opts Options) (*arrow.Schema, error) {
	opts = opts.withDefaults()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.Comma = opts.Delimiter
	r.ReuseRecord = true

	var names []string
	first, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: empty file %s: %w", path, err)
	}
	numCols := len(first)
	var sampled [][]string
	if opts.Header {
		names = append([]string(nil), first...)
	} else {
		names = make([]string, numCols)
		for i := range names {
			names[i] = fmt.Sprintf("column_%d", i+1)
		}
		sampled = append(sampled, append([]string(nil), first...))
	}
	for len(sampled) < opts.InferRows {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		sampled = append(sampled, append([]string(nil), rec...))
	}

	fields := make([]arrow.Field, numCols)
	for c := 0; c < numCols; c++ {
		isInt, isFloat, isDate, isTS, isBool := true, true, true, true, true
		nullable := false
		seen := false
		for _, rec := range sampled {
			v := rec[c]
			if opts.isNull(v) {
				nullable = true
				continue
			}
			seen = true
			if isInt {
				if _, err := strconv.ParseInt(v, 10, 64); err != nil {
					isInt = false
				}
			}
			if isFloat {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					isFloat = false
				}
			}
			if isDate {
				if _, err := arrow.ParseDate32(v); err != nil {
					isDate = false
				}
			}
			if isTS {
				if len(v) < 10 {
					isTS = false
				} else if _, err := arrow.ParseTimestamp(v); err != nil {
					isTS = false
				}
			}
			if isBool {
				if v != "true" && v != "false" && v != "TRUE" && v != "FALSE" {
					isBool = false
				}
			}
		}
		t := arrow.String
		switch {
		case !seen:
			t = arrow.String
			nullable = true
		case isInt:
			t = arrow.Int64
		case isFloat:
			t = arrow.Float64
		case isDate:
			t = arrow.Date32
		case isTS:
			t = arrow.Timestamp
		case isBool:
			t = arrow.Boolean
		}
		fields[c] = arrow.NewField(names[c], t, nullable || t == arrow.String)
	}
	return arrow.NewSchema(fields...), nil
}

// Reader decodes a CSV file into record batches of a fixed schema.
type Reader struct {
	f      *os.File
	r      *csv.Reader
	schema *arrow.Schema
	opts   Options
	// projection maps output columns to CSV field positions; nil = all.
	projection []int
	outSchema  *arrow.Schema
	done       bool
}

// NewReader opens a CSV file for typed decoding. projection selects file
// columns by index (nil reads all).
func NewReader(path string, schema *arrow.Schema, projection []int, opts Options) (*Reader, error) {
	opts = opts.withDefaults()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(f)
	r.Comma = opts.Delimiter
	r.ReuseRecord = true
	r.FieldsPerRecord = schema.NumFields()
	if opts.Header {
		if _, err := r.Read(); err != nil {
			f.Close()
			return nil, fmt.Errorf("csvio: reading header of %s: %w", path, err)
		}
	}
	out := schema
	if projection != nil {
		out = schema.Select(projection)
	}
	return &Reader{f: f, r: r, schema: schema, opts: opts, projection: projection, outSchema: out}, nil
}

// Schema returns the output (projected) schema.
func (rd *Reader) Schema() *arrow.Schema { return rd.outSchema }

// Next decodes the next batch, returning io.EOF at end of file.
func (rd *Reader) Next() (*arrow.RecordBatch, error) {
	if rd.done {
		return nil, io.EOF
	}
	cols := rd.projection
	if cols == nil {
		cols = make([]int, rd.schema.NumFields())
		for i := range cols {
			cols[i] = i
		}
	}
	builders := make([]arrow.Builder, len(cols))
	for i, c := range cols {
		builders[i] = arrow.NewBuilder(rd.schema.Field(c).Type)
	}
	rows := 0
	for rows < rd.opts.BatchRows {
		rec, err := rd.r.Read()
		if err == io.EOF {
			rd.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		for i, c := range cols {
			if err := appendParsed(builders[i], rec[c], rd.opts); err != nil {
				return nil, fmt.Errorf("csvio: row %d column %q: %w", rows, rd.schema.Field(c).Name, err)
			}
		}
		rows++
	}
	if rows == 0 {
		return nil, io.EOF
	}
	arrs := make([]arrow.Array, len(builders))
	for i, b := range builders {
		arrs[i] = b.Finish()
	}
	return arrow.NewRecordBatchWithRows(rd.outSchema, arrs, rows), nil
}

// Close releases the underlying file.
func (rd *Reader) Close() error { return rd.f.Close() }

func appendParsed(b arrow.Builder, v string, opts Options) error {
	if opts.isNull(v) {
		b.AppendNull()
		return nil
	}
	switch bb := b.(type) {
	case *arrow.NumericBuilder[int64]:
		switch b.DataType().ID {
		case arrow.TIMESTAMP:
			ts, err := arrow.ParseTimestamp(v)
			if err != nil {
				return err
			}
			bb.Append(ts)
		default:
			x, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return err
			}
			bb.Append(x)
		}
	case *arrow.NumericBuilder[float64]:
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		bb.Append(x)
	case *arrow.NumericBuilder[int32]:
		if b.DataType().ID == arrow.DATE32 {
			d, err := arrow.ParseDate32(v)
			if err != nil {
				return err
			}
			bb.Append(d)
		} else {
			x, err := strconv.ParseInt(v, 10, 32)
			if err != nil {
				return err
			}
			bb.Append(int32(x))
		}
	case *arrow.BoolBuilder:
		x, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		bb.Append(x)
	case *arrow.StringBuilder:
		bb.Append(v)
	default:
		return fmt.Errorf("unsupported CSV column type %s", b.DataType())
	}
	return nil
}

// WriteFile writes batches to a CSV file with a header row.
func WriteFile(path string, schema *arrow.Schema, batches []*arrow.RecordBatch, delimiter rune) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if delimiter != 0 {
		w.Comma = delimiter
	}
	header := make([]string, schema.NumFields())
	for i, fld := range schema.Fields() {
		header[i] = fld.Name
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, schema.NumFields())
	for _, batch := range batches {
		for r := 0; r < batch.NumRows(); r++ {
			for c := 0; c < batch.NumCols(); c++ {
				rec[c] = formatCSV(batch.Column(c), r)
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func formatCSV(a arrow.Array, i int) string {
	if a.IsNull(i) {
		return ""
	}
	s := a.GetScalar(i)
	switch s.Type.ID {
	case arrow.STRING:
		return s.AsString()
	case arrow.FLOAT64, arrow.FLOAT32:
		return strconv.FormatFloat(s.AsFloat64(), 'g', -1, 64)
	case arrow.BOOL:
		return strconv.FormatBool(s.AsBool())
	default:
		return s.String()
	}
}
