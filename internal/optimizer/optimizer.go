// Package optimizer implements the logical plan rewrites of paper Section
// 6.1: expression simplification, correlated subquery decorrelation,
// cross-join to inner-join conversion, filter pushdown (with OUTER join
// restrictions), outer-to-inner join conversion, statistics-based join
// input selection, limit pushdown, and projection (scan) pruning. Rules
// share the rewrite framework exposed to user-defined OptimizerRules
// (paper Section 7.6).
package optimizer

import (
	"gofusion/internal/functions"
	"gofusion/internal/logical"
)

// Rule is one logical rewrite pass.
type Rule interface {
	Name() string
	Apply(plan logical.Plan, ctx *Context) (logical.Plan, error)
}

// Context carries shared state into rules.
type Context struct {
	Reg *functions.Registry
}

// Optimizer runs an ordered list of rules, each to fixpoint-ish effect.
type Optimizer struct {
	rules []Rule
	ctx   *Context
}

// New returns the default rule pipeline.
func New(reg *functions.Registry) *Optimizer {
	return &Optimizer{
		ctx: &Context{Reg: reg},
		rules: []Rule{
			&SimplifyExpressions{},
			&EliminateDistinct{},
			&DecorrelateSubqueries{},
			&SimplifyExpressions{},
			&FilterPushdown{},
			&FilterPushdown{}, // second pass reaches filters exposed by the first
			&OuterToInner{},
			&FilterPushdown{},
			&CommonSubexpressionElimination{},
			&LimitPushdown{},
			// Pruning runs before the join swap: the swap's schema-restoring
			// projections reference every join column and would defeat the
			// reference-collection pruner.
			&PruneScans{},
			&JoinInputSwap{},
		},
	}
}

// WithRule appends a user-defined rule (paper Section 7.6).
func (o *Optimizer) WithRule(r Rule) *Optimizer {
	o.rules = append(o.rules, r)
	return o
}

// WithRuleFirst prepends a user-defined rule so it runs before the
// built-in pipeline (typical for macro expansions that must be rewritten
// before filter pushdown buries them in scans).
func (o *Optimizer) WithRuleFirst(r Rule) *Optimizer {
	o.rules = append([]Rule{r}, o.rules...)
	return o
}

// WithRules replaces the rule pipeline entirely.
func (o *Optimizer) WithRules(rules []Rule) *Optimizer {
	o.rules = rules
	return o
}

// Optimize rewrites a logical plan.
func (o *Optimizer) Optimize(plan logical.Plan) (logical.Plan, error) {
	var err error
	for _, r := range o.rules {
		plan, err = r.Apply(plan, o.ctx)
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// exprsOf enumerates the expressions embedded in a plan node.
func exprsOf(p logical.Plan) []logical.Expr {
	switch n := p.(type) {
	case *logical.Projection:
		return n.Exprs
	case *logical.Filter:
		return []logical.Expr{n.Predicate}
	case *logical.Aggregate:
		return append(append([]logical.Expr{}, n.GroupExprs...), n.AggExprs...)
	case *logical.Sort:
		out := make([]logical.Expr, len(n.Keys))
		for i, k := range n.Keys {
			out[i] = k.E
		}
		return out
	case *logical.Join:
		var out []logical.Expr
		for _, pair := range n.On {
			out = append(out, pair.L, pair.R)
		}
		if n.Filter != nil {
			out = append(out, n.Filter)
		}
		return out
	case *logical.Window:
		return n.WindowExprs
	case *logical.TableScan:
		return n.Filters
	case *logical.Values:
		var out []logical.Expr
		for _, row := range n.Rows {
			out = append(out, row...)
		}
		return out
	}
	return nil
}
