package optimizer

import (
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
)

var reg = functions.NewRegistry()

// table builds a MemTable-backed scan source with a known row count.
func table(t *testing.T, rows int64, fields ...arrow.Field) *catalog.MemTable {
	t.Helper()
	schema := arrow.NewSchema(fields...)
	builders := make([]arrow.Builder, len(fields))
	for i, f := range fields {
		builders[i] = arrow.NewBuilder(f.Type)
	}
	for r := int64(0); r < rows; r++ {
		for i, f := range fields {
			switch f.Type.ID {
			case arrow.INT64:
				builders[i].(*arrow.NumericBuilder[int64]).Append(r)
			case arrow.STRING:
				builders[i].(*arrow.StringBuilder).Append("v")
			case arrow.FLOAT64:
				builders[i].(*arrow.NumericBuilder[float64]).Append(float64(r))
			}
		}
	}
	cols := make([]arrow.Array, len(builders))
	for i, b := range builders {
		cols[i] = b.Finish()
	}
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{arrow.NewRecordBatchWithRows(schema, cols, int(rows))}})
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

func optimize(t *testing.T, plan logical.Plan) logical.Plan {
	t.Helper()
	out, err := New(reg).Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func explain(p logical.Plan) string { return logical.Explain(p) }

func TestConstantFoldingAndBooleanSimplify(t *testing.T) {
	src := table(t, 10, arrow.NewField("a", arrow.Int64, false))
	scan := logical.NewTableScan("t", src)
	// 1 + 2 = 3 folds; true AND (a = 3) simplifies to a = 3.
	pred := logical.And(
		logical.Lit(true),
		logical.Eq(logical.Col("a"), &logical.BinaryExpr{Op: logical.OpAdd, L: logical.Lit(1), R: logical.Lit(2)}),
	)
	plan := optimize(t, &logical.Filter{Input: scan, Predicate: pred})
	text := explain(plan)
	if !strings.Contains(text, "a = 3") {
		t.Fatalf("constant not folded:\n%s", text)
	}
	if strings.Contains(text, "true") {
		t.Fatalf("TRUE conjunct survived:\n%s", text)
	}
	// Constant-false filter becomes an empty relation.
	plan2 := optimize(t, &logical.Filter{Input: scan, Predicate: logical.Lit(false)})
	if _, ok := plan2.(*logical.EmptyRelation); !ok {
		t.Fatalf("false filter should empty the plan:\n%s", explain(plan2))
	}
}

func TestFilterPushdownIntoScan(t *testing.T) {
	src := table(t, 10, arrow.NewField("a", arrow.Int64, false), arrow.NewField("b", arrow.String, false))
	plan, err := logical.NewBuilder(reg).
		Scan("t", src).
		Project(logical.Col("a"), logical.Col("b")).
		Filter(logical.Eq(logical.Col("a"), logical.Lit(1))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := explain(optimize(t, plan))
	if !strings.Contains(text, "filters=[") {
		t.Fatalf("filter not pushed into scan:\n%s", text)
	}
}

func TestCrossJoinBecomesInner(t *testing.T) {
	l := table(t, 100, arrow.NewField("a", arrow.Int64, false))
	r := table(t, 100, arrow.NewField("b", arrow.Int64, false))
	rScan, _ := logical.NewBuilder(reg).Scan("r", r).Build()
	plan, err := logical.NewBuilder(reg).
		Scan("l", l).
		CrossJoin(rScan).
		Filter(logical.And(
			logical.Eq(logical.Col("a"), logical.Col("b")),
			&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("a"), R: logical.Lit(5)},
		)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := explain(optimize(t, plan))
	if !strings.Contains(text, "Inner Join") {
		t.Fatalf("cross join not converted:\n%s", text)
	}
	if !strings.Contains(text, "on=[") {
		t.Fatalf("equi pair not extracted:\n%s", text)
	}
	// The single-side predicate pushed below the join into the scan.
	if !strings.Contains(text, "TableScan: l filters=") {
		t.Fatalf("side predicate not pushed:\n%s", text)
	}
}

func TestOuterToInnerConversion(t *testing.T) {
	l := table(t, 10, arrow.NewField("a", arrow.Int64, false))
	r := table(t, 10, arrow.NewField("b", arrow.Int64, false))
	rScan, _ := logical.NewBuilder(reg).Scan("r", r).Build()
	plan, err := logical.NewBuilder(reg).
		Scan("l", l).
		Join(rScan, logical.LeftJoin, []logical.EquiPair{{L: logical.Col("a"), R: logical.Col("b")}}, nil).
		Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("b"), R: logical.Lit(3)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := explain(optimize(t, plan))
	if strings.Contains(text, "Left Join") {
		t.Fatalf("null-rejecting filter should convert LEFT to INNER:\n%s", text)
	}
	// IS NULL does NOT convert.
	plan2, _ := logical.NewBuilder(reg).
		Scan("l", l).
		Join(rScan, logical.LeftJoin, []logical.EquiPair{{L: logical.Col("a"), R: logical.Col("b")}}, nil).
		Filter(&logical.IsNull{E: logical.Col("b")}).
		Build()
	text2 := explain(optimize(t, plan2))
	if !strings.Contains(text2, "Left Join") {
		t.Fatalf("IS NULL must preserve LEFT join:\n%s", text2)
	}
}

func TestJoinInputSwapBySize(t *testing.T) {
	big := table(t, 10000, arrow.NewField("a", arrow.Int64, false))
	small := table(t, 10, arrow.NewField("b", arrow.Int64, false))
	rScan, _ := logical.NewBuilder(reg).Scan("small", small).Build()
	plan, err := logical.NewBuilder(reg).
		Scan("big", big).
		Join(rScan, logical.InnerJoin, []logical.EquiPair{{L: logical.Col("a"), R: logical.Col("b")}}, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := optimize(t, plan)
	// After the swap the join's left child scans the small table.
	found := false
	logical.VisitPlan(out, func(p logical.Plan) bool {
		if j, ok := p.(*logical.Join); ok {
			if scan, ok2 := j.Left.(*logical.TableScan); ok2 && scan.Name == "small" {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Fatalf("small side should become the build side:\n%s", explain(out))
	}
	// Output schema order preserved.
	if out.Schema().Field(0).Name != "a" {
		t.Fatalf("schema order changed: %s", out.Schema())
	}
}

func TestLimitPushdownToTopK(t *testing.T) {
	src := table(t, 100, arrow.NewField("a", arrow.Int64, false))
	plan, err := logical.NewBuilder(reg).
		Scan("t", src).
		Sort(logical.SortAsc(logical.Col("a"))).
		Limit(0, 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := explain(optimize(t, plan))
	if !strings.Contains(text, "fetch=5") || !strings.Contains(text, "Sort") {
		t.Fatalf("limit not fused into sort:\n%s", text)
	}
	// Bare scan limit.
	plan2, _ := logical.NewBuilder(reg).Scan("t", src).Limit(0, 7).Build()
	text2 := explain(optimize(t, plan2))
	if !strings.Contains(text2, "TableScan: t") || !strings.Contains(text2, "fetch=7") {
		t.Fatalf("limit not pushed into scan:\n%s", text2)
	}
}

func TestPruneScansKeepsReferencedColumns(t *testing.T) {
	src := table(t, 10,
		arrow.NewField("a", arrow.Int64, false),
		arrow.NewField("b", arrow.String, false),
		arrow.NewField("c", arrow.Float64, false),
	)
	plan, err := logical.NewBuilder(reg).
		Scan("t", src).
		Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("c"), R: logical.Lit(1.0)}).
		Project(logical.Col("a")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := optimize(t, plan)
	var scan *logical.TableScan
	logical.VisitPlan(out, func(p logical.Plan) bool {
		if s, ok := p.(*logical.TableScan); ok {
			scan = s
		}
		return true
	})
	if scan == nil || len(scan.Projection) != 2 {
		t.Fatalf("scan should keep exactly a and c:\n%s", explain(out))
	}
}

func TestDecorrelateExists(t *testing.T) {
	orders := table(t, 10, arrow.NewField("o_id", arrow.Int64, false))
	items := table(t, 10, arrow.NewField("i_oid", arrow.Int64, false))
	sub, _ := logical.NewBuilder(reg).
		Scan("items", items).
		Filter(logical.Eq(logical.Col("i_oid"), logical.Col("o_id"))). // correlated
		Build()
	plan, err := logical.NewBuilder(reg).
		Scan("orders", orders).
		Filter(&logical.Exists{Plan: sub}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := explain(optimize(t, plan))
	if !strings.Contains(text, "LeftSemi Join") {
		t.Fatalf("EXISTS not decorrelated:\n%s", text)
	}
	// Negated form becomes anti join (via NOT normalization).
	plan2, _ := logical.NewBuilder(reg).
		Scan("orders", orders).
		Filter(&logical.Not{E: &logical.Exists{Plan: sub}}).
		Build()
	text2 := explain(optimize(t, plan2))
	if !strings.Contains(text2, "LeftAnti Join") {
		t.Fatalf("NOT EXISTS not decorrelated:\n%s", text2)
	}
}

func TestDecorrelateScalarAgg(t *testing.T) {
	emp := table(t, 10,
		arrow.NewField("dept", arrow.Int64, false),
		arrow.NewField("sal", arrow.Float64, false),
	)
	// (SELECT avg(sal) FROM emp e2 WHERE e2.dept = emp.dept)
	inner, err := logical.NewBuilder(reg).
		Scan("e2", table(t, 10, arrow.NewField("dept", arrow.Int64, false), arrow.NewField("sal", arrow.Float64, false))).
		Filter(logical.Eq(logical.Col("e2.dept"), logical.Col("emp.dept"))).
		Aggregate(nil, []logical.Expr{&logical.AggFunc{Name: "avg", Args: []logical.Expr{logical.Col("e2.sal")}}}).
		Project(&logical.Column{Name: "avg(e2.sal)"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := logical.NewBuilder(reg).
		Scan("emp", emp).
		Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("sal"), R: &logical.ScalarSubquery{Plan: inner}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := explain(optimize(t, plan))
	if !strings.Contains(text, "Inner Join") || !strings.Contains(text, "Aggregate") {
		t.Fatalf("correlated scalar not regrouped:\n%s", text)
	}
	if strings.Contains(text, "scalar subquery") {
		t.Fatalf("subquery expression survived:\n%s", text)
	}
}

func TestOrFactoring(t *testing.T) {
	src := table(t, 10, arrow.NewField("a", arrow.Int64, false), arrow.NewField("b", arrow.Int64, false))
	// (a=b AND a>1) OR (a=b AND b<5) => a=b AND (a>1 OR b<5)
	pred := &logical.BinaryExpr{Op: logical.OpOr,
		L: logical.And(logical.Eq(logical.Col("a"), logical.Col("b")),
			&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("a"), R: logical.Lit(1)}),
		R: logical.And(logical.Eq(logical.Col("a"), logical.Col("b")),
			&logical.BinaryExpr{Op: logical.OpLt, L: logical.Col("b"), R: logical.Lit(5)}),
	}
	plan, _ := logical.NewBuilder(reg).Scan("t", src).Filter(pred).Build()
	text := explain(optimize(t, plan))
	// After factoring, both conjuncts are scan filters (a=b is a plain
	// column comparison on one table here).
	if strings.Count(text, "a = b") != 1 {
		t.Fatalf("common conjunct not factored:\n%s", text)
	}
}

func TestCustomRuleOrdering(t *testing.T) {
	src := table(t, 10, arrow.NewField("a", arrow.Int64, false))
	applied := []string{}
	mk := func(name string) Rule { return &probeRule{name: name, log: &applied} }
	o := New(reg)
	o.WithRule(mk("last"))
	o.WithRuleFirst(mk("first"))
	plan, _ := logical.NewBuilder(reg).Scan("t", src).Build()
	if _, err := o.Optimize(plan); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[0] != "first" || applied[1] != "last" {
		t.Fatalf("rule order = %v", applied)
	}
}

type probeRule struct {
	name string
	log  *[]string
}

func (r *probeRule) Name() string { return r.name }
func (r *probeRule) Apply(p logical.Plan, _ *Context) (logical.Plan, error) {
	*r.log = append(*r.log, r.name)
	return p, nil
}

func TestEstimateRows(t *testing.T) {
	src := table(t, 1000, arrow.NewField("a", arrow.Int64, false))
	scan := logical.NewTableScan("t", src)
	if EstimateRows(scan) != 1000 {
		t.Fatal("scan estimate wrong")
	}
	f := &logical.Filter{Input: scan, Predicate: logical.Lit(true)}
	if EstimateRows(f) != 200 {
		t.Fatalf("filter estimate = %d", EstimateRows(f))
	}
	agg, _ := logical.NewAggregate(scan, nil, []logical.Expr{&logical.AggFunc{Name: "count"}}, reg)
	if EstimateRows(agg) != 1 {
		t.Fatal("ungrouped agg estimate wrong")
	}
	lim := &logical.Limit{Input: scan, Fetch: 7}
	if EstimateRows(lim) != 7 {
		t.Fatal("limit estimate wrong")
	}
}

func TestCSEInAggregate(t *testing.T) {
	src := table(t, 10,
		arrow.NewField("p", arrow.Float64, false),
		arrow.NewField("d", arrow.Float64, false),
	)
	// sum(p*(1-d)) and avg(p*(1-d)) share the product.
	productOf := func() logical.Expr {
		return &logical.BinaryExpr{Op: logical.OpMul, L: logical.Col("p"),
			R: &logical.BinaryExpr{Op: logical.OpSub, L: logical.Lit(1.0), R: logical.Col("d")}}
	}
	plan, err := logical.NewBuilder(reg).
		Scan("t", src).
		Aggregate(nil, []logical.Expr{
			&logical.AggFunc{Name: "sum", Args: []logical.Expr{productOf()}},
			&logical.AggFunc{Name: "avg", Args: []logical.Expr{productOf()}},
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := optimize(t, plan)
	text := explain(out)
	if !strings.Contains(text, "__cse_1") {
		t.Fatalf("shared aggregate argument not factored:\n%s", text)
	}
	// Output names preserved.
	if !strings.Contains(out.Schema().String(), "sum(p * 1 - d)") {
		t.Fatalf("output names changed: %s", out.Schema())
	}
}

func TestCSEInProjection(t *testing.T) {
	src := table(t, 10, arrow.NewField("a", arrow.Float64, false))
	heavy := func() logical.Expr {
		return &logical.ScalarFunc{Name: "sqrt", Args: []logical.Expr{logical.Col("a")}}
	}
	plan, err := logical.NewBuilder(reg).
		Scan("t", src).
		Project(
			&logical.Alias{E: &logical.BinaryExpr{Op: logical.OpAdd, L: heavy(), R: logical.Lit(1.0)}, Name: "x"},
			&logical.Alias{E: &logical.BinaryExpr{Op: logical.OpMul, L: heavy(), R: logical.Lit(2.0)}, Name: "y"},
		).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := optimize(t, plan)
	if !strings.Contains(explain(out), "__cse_1") {
		t.Fatalf("shared projection subexpr not factored:\n%s", explain(out))
	}
}

func TestEliminateDistinctOverGroupBy(t *testing.T) {
	src := table(t, 10, arrow.NewField("a", arrow.Int64, false))
	agg, err := logical.NewAggregate(logical.NewTableScan("t", src),
		[]logical.Expr{logical.Col("a")}, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	out := optimize(t, &logical.Distinct{Input: agg})
	if _, ok := out.(*logical.Distinct); ok {
		t.Fatalf("distinct over grouped keys should be removed:\n%s", explain(out))
	}
	// Nested distincts collapse.
	out2 := optimize(t, &logical.Distinct{Input: &logical.Distinct{Input: logical.NewTableScan("t", src)}})
	if d, ok := out2.(*logical.Distinct); !ok {
		t.Fatal("outer distinct must remain")
	} else if _, ok := d.Input.(*logical.Distinct); ok {
		t.Fatal("inner distinct must collapse")
	}
}
