package optimizer

import (
	"fmt"
	"sync/atomic"

	"gofusion/internal/logical"
)

// DecorrelateSubqueries rewrites subquery expressions into joins (paper
// Section 6.1: "correlated subquery flattening"):
//
//   - [NOT] EXISTS (sub)        -> left semi/anti join on extracted
//     correlation predicates;
//   - e [NOT] IN (sub)          -> left semi/anti join on e = sub.col
//     plus extracted correlation;
//   - e <op> (scalar agg sub)   -> join against the subquery re-grouped
//     by its correlation keys (inner join; the comparison is strict), or
//     a cross join for uncorrelated scalars.
type DecorrelateSubqueries struct{}

// Name implements Rule.
func (*DecorrelateSubqueries) Name() string { return "decorrelate_subqueries" }

// sqCounter generates unique subquery aliases across nesting levels.
var sqCounter atomic.Int64

// Apply implements Rule.
func (r *DecorrelateSubqueries) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p, nil
		}
		input := f.Input
		var remaining []logical.Expr
		changed := false
		for _, conj := range logical.SplitConjunction(f.Predicate) {
			if !logical.HasSubquery(conj) {
				remaining = append(remaining, conj)
				continue
			}
			newInput, leftoverConj, err := r.rewriteConjunct(input, conj, ctx)
			if err != nil {
				return nil, err
			}
			input = newInput
			if leftoverConj != nil {
				remaining = append(remaining, leftoverConj)
			}
			changed = true
		}
		if !changed {
			return p, nil
		}
		if pred := logical.And(remaining...); pred != nil {
			return &logical.Filter{Input: input, Predicate: pred}, nil
		}
		return input, nil
	})
}

// corrPair is one extracted correlation equality: outer expr = inner expr.
type corrPair struct {
	outer logical.Expr
	inner logical.Expr
}

// extractCorrelation removes correlated conjuncts from Filter nodes in the
// subquery plan, returning the cleaned plan, equality pairs, and other
// correlated predicates.
func extractCorrelation(plan logical.Plan) (logical.Plan, []corrPair, []logical.Expr, error) {
	switch n := plan.(type) {
	case *logical.Filter:
		newInput, pairs, others, err := extractCorrelation(n.Input)
		if err != nil {
			return nil, nil, nil, err
		}
		schema := newInput.Schema()
		var kept []logical.Expr
		for _, c := range logical.SplitConjunction(n.Predicate) {
			if resolvable(c, schema) {
				kept = append(kept, c)
				continue
			}
			// Correlated conjunct.
			if be, ok := c.(*logical.BinaryExpr); ok && be.Op == logical.OpEq {
				switch {
				case resolvable(be.L, schema) && !resolvable(be.R, schema):
					pairs = append(pairs, corrPair{outer: be.R, inner: be.L})
					continue
				case resolvable(be.R, schema) && !resolvable(be.L, schema):
					pairs = append(pairs, corrPair{outer: be.L, inner: be.R})
					continue
				}
			}
			others = append(others, c)
		}
		out := newInput
		if pred := logical.And(kept...); pred != nil {
			out = &logical.Filter{Input: newInput, Predicate: pred}
		}
		return out, pairs, others, nil
	case *logical.Projection, *logical.SubqueryAlias, *logical.Aggregate,
		*logical.Sort, *logical.Distinct, *logical.Limit:
		children := plan.Children()
		newChild, pairs, others, err := extractCorrelation(children[0])
		if err != nil {
			return nil, nil, nil, err
		}
		if newChild == children[0] {
			return plan, pairs, others, nil
		}
		if len(pairs) == 0 && len(others) == 0 {
			return plan, nil, nil, nil
		}
		// Rebuilding typed nodes (Projection/Aggregate) requires schema
		// recomputation, but removing filter conjuncts never changes
		// schemas, so WithChildren is safe.
		return plan.WithChildren([]logical.Plan{newChild}), pairs, others, nil
	case *logical.Join:
		newLeft, lp, lo, err := extractCorrelation(n.Left)
		if err != nil {
			return nil, nil, nil, err
		}
		newRight, rp, ro, err := extractCorrelation(n.Right)
		if err != nil {
			return nil, nil, nil, err
		}
		pairs := append(lp, rp...)
		others := append(lo, ro...)
		if newLeft == n.Left && newRight == n.Right {
			return plan, pairs, others, nil
		}
		return logical.NewJoin(newLeft, newRight, n.Type, n.On, n.Filter), pairs, others, nil
	default:
		return plan, nil, nil, nil
	}
}

// stripRootProjection removes a top-level projection/sort/limit wrapper
// from an EXISTS subquery (its output is irrelevant).
func stripRootProjection(plan logical.Plan) logical.Plan {
	for {
		switch n := plan.(type) {
		case *logical.Projection:
			// Keep projections computing aggregates etc. only if input
			// schema would lose required columns; for EXISTS the input
			// always suffices.
			plan = n.Input
		case *logical.Sort:
			plan = n.Input
		case *logical.SubqueryAlias:
			return plan
		default:
			return plan
		}
	}
}

// rewriteConjunct rewrites one subquery-bearing conjunct, returning the
// new input plan and the residual predicate (or nil).
func (r *DecorrelateSubqueries) rewriteConjunct(input logical.Plan, conj logical.Expr, ctx *Context) (logical.Plan, logical.Expr, error) {
	// Subqueries may themselves contain subqueries (e.g. TPC-H Q20):
	// decorrelate each nested plan before flattening this level.
	var derr error
	conj, _ = logical.TransformExpr(conj, func(x logical.Expr) (logical.Expr, error) {
		if derr != nil {
			return x, nil
		}
		switch sq := x.(type) {
		case *logical.ScalarSubquery:
			if sq.Plan != nil {
				np, err := r.Apply(sq.Plan, ctx)
				if err != nil {
					derr = err
					return x, nil
				}
				return &logical.ScalarSubquery{Plan: np}, nil
			}
		case *logical.Exists:
			if sq.Plan != nil {
				np, err := r.Apply(sq.Plan, ctx)
				if err != nil {
					derr = err
					return x, nil
				}
				return &logical.Exists{Plan: np, Negated: sq.Negated}, nil
			}
		case *logical.InSubquery:
			if sq.Plan != nil {
				np, err := r.Apply(sq.Plan, ctx)
				if err != nil {
					derr = err
					return x, nil
				}
				return &logical.InSubquery{E: sq.E, Plan: np, Negated: sq.Negated}, nil
			}
		}
		return x, nil
	})
	if derr != nil {
		return nil, nil, derr
	}
	switch e := conj.(type) {
	case *logical.Exists:
		sub := stripRootProjection(e.Plan)
		cleaned, pairs, others, err := extractCorrelation(sub)
		if err != nil {
			return nil, nil, err
		}
		jt := logical.LeftSemiJoin
		if e.Negated {
			jt = logical.LeftAntiJoin
		}
		on := make([]logical.EquiPair, len(pairs))
		for i, pr := range pairs {
			on[i] = logical.EquiPair{L: pr.outer, R: pr.inner}
		}
		return logical.NewJoin(input, cleaned, jt, on, logical.And(others...)), nil, nil

	case *logical.InSubquery:
		sub := e.Plan
		cleaned, pairs, others, err := extractCorrelation(sub)
		if err != nil {
			return nil, nil, err
		}
		if cleaned.Schema().Len() < 1 {
			return nil, nil, fmt.Errorf("optimizer: IN subquery must produce one column")
		}
		f0 := cleaned.Schema().Field(0)
		jt := logical.LeftSemiJoin
		if e.Negated {
			jt = logical.LeftAntiJoin
		}
		on := []logical.EquiPair{{L: e.E, R: &logical.Column{Relation: f0.Qualifier, Name: f0.Name}}}
		for _, pr := range pairs {
			on = append(on, logical.EquiPair{L: pr.outer, R: pr.inner})
		}
		return logical.NewJoin(input, cleaned, jt, on, logical.And(others...)), nil, nil

	case *logical.BinaryExpr:
		// Comparison with a scalar subquery on one side.
		var sq *logical.ScalarSubquery
		if s, ok := e.L.(*logical.ScalarSubquery); ok {
			sq = s
		}
		if s, ok := e.R.(*logical.ScalarSubquery); ok {
			if sq != nil {
				return nil, nil, fmt.Errorf("optimizer: comparisons between two subqueries are unsupported")
			}
			sq = s
		}
		if sq == nil {
			break
		}
		alias := fmt.Sprintf("__sq_%d", sqCounter.Add(1))
		newInput, valueCol, err := r.planScalarJoin(input, sq.Plan, alias, ctx)
		if err != nil {
			return nil, nil, err
		}
		replaced, err := logical.TransformExpr(conj, func(x logical.Expr) (logical.Expr, error) {
			if x == sq {
				return valueCol, nil
			}
			return x, nil
		})
		if err != nil {
			return nil, nil, err
		}
		return newInput, replaced, nil
	}
	return nil, nil, fmt.Errorf("optimizer: unsupported subquery shape in %s", conj)
}

// planScalarJoin joins input with a scalar subquery, returning the new
// plan and the column holding the scalar value.
func (r *DecorrelateSubqueries) planScalarJoin(input logical.Plan, sub logical.Plan, alias string, ctx *Context) (logical.Plan, *logical.Column, error) {
	// Correlated aggregate shape: Projection(Aggregate(groups=[])).
	if proj, ok := sub.(*logical.Projection); ok {
		if agg, ok2 := proj.Input.(*logical.Aggregate); ok2 && len(agg.GroupExprs) == 0 {
			cleaned, pairs, others, err := extractCorrelation(agg.Input)
			if err != nil {
				return nil, nil, err
			}
			if len(others) > 0 {
				return nil, nil, fmt.Errorf("optimizer: non-equality correlation under aggregate is unsupported")
			}
			if len(pairs) > 0 {
				// Re-group the aggregate by the inner correlation keys.
				innerKeys := make([]logical.Expr, len(pairs))
				for i, pr := range pairs {
					innerKeys[i] = pr.inner
				}
				newAgg, err := logical.NewAggregate(cleaned, innerKeys, agg.AggExprs, ctx.Reg)
				if err != nil {
					return nil, nil, err
				}
				// Project: original scalar expression plus the group keys.
				exprs := append([]logical.Expr{}, proj.Exprs...)
				keyNames := make([]string, len(pairs))
				for i := range pairs {
					f := newAgg.Schema().Field(i)
					keyNames[i] = f.Name
					exprs = append(exprs, &logical.Column{Relation: f.Qualifier, Name: f.Name})
				}
				newProj, err := logical.NewProjection(newAgg, exprs, ctx.Reg)
				if err != nil {
					return nil, nil, err
				}
				aliased := logical.NewSubqueryAlias(newProj, alias)
				on := make([]logical.EquiPair, len(pairs))
				for i, pr := range pairs {
					on[i] = logical.EquiPair{
						L: pr.outer,
						R: &logical.Column{Relation: alias, Name: keyNames[i]},
					}
				}
				join := logical.NewJoin(input, aliased, logical.InnerJoin, on, nil)
				value := &logical.Column{Relation: alias, Name: aliased.Schema().Field(0).Name}
				return join, value, nil
			}
		}
	}
	// Uncorrelated scalar: cross join the (single-row) subquery.
	cleaned, pairs, others, err := extractCorrelation(sub)
	if err != nil {
		return nil, nil, err
	}
	if len(pairs) > 0 || len(others) > 0 {
		return nil, nil, fmt.Errorf("optimizer: unsupported correlated scalar subquery shape")
	}
	if cleaned.Schema().Len() < 1 {
		return nil, nil, fmt.Errorf("optimizer: scalar subquery must produce one column")
	}
	aliased := logical.NewSubqueryAlias(cleaned, alias)
	join := logical.NewJoin(input, aliased, logical.CrossJoin, nil, nil)
	value := &logical.Column{Relation: alias, Name: aliased.Schema().Field(0).Name}
	return join, value, nil
}
