package optimizer

import (
	"gofusion/internal/logical"
)

// FilterPushdown moves filter conjuncts toward the data sources (paper
// Sections 6.1 and 6.8): through projections (with substitution), into
// both sides of joins subject to OUTER-join restrictions, converting
// cross joins with equality conjuncts into inner joins, through
// aggregates (group-key predicates), through subquery aliases and unions,
// and finally into TableScan.Filters.
type FilterPushdown struct{}

// Name implements Rule.
func (*FilterPushdown) Name() string { return "filter_pushdown" }

// Apply implements Rule.
func (r *FilterPushdown) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p, nil
		}
		// Merge stacked filters first.
		for {
			inner, ok := f.Input.(*logical.Filter)
			if !ok {
				break
			}
			f = &logical.Filter{Input: inner.Input,
				Predicate: logical.And(f.Predicate, inner.Predicate)}
		}
		return r.push(f, ctx)
	})
}

// resolvable reports whether every column of e resolves in schema.
func resolvable(e logical.Expr, schema *logical.Schema) bool {
	for _, c := range logical.CollectColumns(e) {
		if _, err := schema.IndexOfColumn(c); err != nil {
			return false
		}
	}
	return true
}

func (r *FilterPushdown) push(f *logical.Filter, ctx *Context) (logical.Plan, error) {
	conjuncts := logical.SplitConjunction(f.Predicate)
	// Subquery-bearing conjuncts stay put for the decorrelation rule.
	var pushable, kept []logical.Expr
	for _, c := range conjuncts {
		if logical.HasSubquery(c) || logical.HasAggregates(c) || logical.HasWindow(c) {
			kept = append(kept, c)
		} else {
			pushable = append(pushable, c)
		}
	}
	rebuilt, leftover, err := r.pushInto(f.Input, pushable, ctx)
	if err != nil {
		return nil, err
	}
	remaining := logical.And(append(kept, leftover...)...)
	if remaining == nil {
		return rebuilt, nil
	}
	return &logical.Filter{Input: rebuilt, Predicate: remaining}, nil
}

// pushInto pushes conjuncts into plan, returning the rewritten plan and
// the conjuncts that could not be pushed.
func (r *FilterPushdown) pushInto(plan logical.Plan, conjuncts []logical.Expr, ctx *Context) (logical.Plan, []logical.Expr, error) {
	if len(conjuncts) == 0 {
		return plan, nil, nil
	}
	switch n := plan.(type) {
	case *logical.TableScan:
		out := *n
		out.Filters = append(append([]logical.Expr{}, n.Filters...), conjuncts...)
		return &out, nil, nil

	case *logical.Filter:
		merged := &logical.Filter{Input: n.Input,
			Predicate: logical.And(append(conjuncts, n.Predicate)...)}
		p, err := r.push(merged, ctx)
		return p, nil, err

	case *logical.Projection:
		// Substitute projection expressions into the predicate, then push
		// when the result references only input columns and is
		// deterministic-friendly (no window/agg).
		var pushed, blocked []logical.Expr
		sub := map[string]logical.Expr{}
		for i, e := range n.Exprs {
			sub[n.Schema().Field(i).Name] = stripAliasExpr(e)
		}
		for _, c := range conjuncts {
			replaced, err := substituteColumns(c, sub, n.Input.Schema())
			if err != nil || replaced == nil {
				blocked = append(blocked, c)
				continue
			}
			pushed = append(pushed, replaced)
		}
		if len(pushed) == 0 {
			return plan, conjuncts, nil
		}
		newInput, leftover, err := r.pushInto(n.Input, pushed, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			newInput = &logical.Filter{Input: newInput, Predicate: logical.And(leftover...)}
		}
		proj, err := logical.NewProjection(newInput, n.Exprs, ctx.Reg)
		if err != nil {
			return nil, nil, err
		}
		return proj, blocked, nil

	case *logical.SubqueryAlias:
		// Requalify predicate columns into the child's namespace by
		// positional mapping.
		inner := n.Input.Schema()
		outer := n.Schema()
		var pushed, blocked []logical.Expr
		for _, c := range conjuncts {
			rc, err := logical.TransformExpr(c, func(x logical.Expr) (logical.Expr, error) {
				col, ok := x.(*logical.Column)
				if !ok {
					return x, nil
				}
				i, err := outer.IndexOfColumn(col)
				if err != nil {
					return nil, err
				}
				f := inner.Field(i)
				return &logical.Column{Relation: f.Qualifier, Name: f.Name}, nil
			})
			if err != nil {
				blocked = append(blocked, c)
				continue
			}
			pushed = append(pushed, rc)
		}
		if len(pushed) == 0 {
			return plan, conjuncts, nil
		}
		newInput, leftover, err := r.pushInto(n.Input, pushed, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			newInput = &logical.Filter{Input: newInput, Predicate: logical.And(leftover...)}
		}
		return logical.NewSubqueryAlias(newInput, n.Alias), blocked, nil

	case *logical.Join:
		return r.pushIntoJoin(n, conjuncts, ctx)

	case *logical.Union:
		// Push a copy into every input (schemas are positionally
		// compatible; column names may differ, so requalify by position).
		newInputs := make([]logical.Plan, len(n.Inputs))
		for i, in := range n.Inputs {
			mapped := make([]logical.Expr, 0, len(conjuncts))
			ok := true
			for _, c := range conjuncts {
				rc, err := remapByPosition(c, n.Schema(), in.Schema())
				if err != nil {
					ok = false
					break
				}
				mapped = append(mapped, rc)
			}
			if !ok {
				return plan, conjuncts, nil
			}
			child, leftover, err := r.pushInto(in, mapped, ctx)
			if err != nil {
				return nil, nil, err
			}
			if len(leftover) > 0 {
				child = &logical.Filter{Input: child, Predicate: logical.And(leftover...)}
			}
			newInputs[i] = child
		}
		return &logical.Union{Inputs: newInputs, All: n.All}, nil, nil

	case *logical.Aggregate:
		// Predicates that reference only group keys commute with
		// aggregation.
		groupCols := map[string]bool{}
		for i := range n.GroupExprs {
			groupCols[n.Schema().Field(i).QualifiedName()] = true
			groupCols[n.Schema().Field(i).Name] = true
		}
		var pushed, blocked []logical.Expr
		for _, c := range conjuncts {
			ok := true
			for _, col := range logical.CollectColumns(c) {
				if !groupCols[col.String()] && !groupCols[col.Name] {
					ok = false
					break
				}
			}
			// The pushed predicate references the pre-aggregation columns;
			// group keys that are bare columns keep their names.
			if ok && resolvable(c, n.Input.Schema()) {
				pushed = append(pushed, c)
			} else {
				blocked = append(blocked, c)
			}
		}
		if len(pushed) == 0 {
			return plan, conjuncts, nil
		}
		newInput, leftover, err := r.pushInto(n.Input, pushed, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			newInput = &logical.Filter{Input: newInput, Predicate: logical.And(leftover...)}
		}
		agg, err := logical.NewAggregate(newInput, n.GroupExprs, n.AggExprs, ctx.Reg)
		if err != nil {
			return nil, nil, err
		}
		return agg, blocked, nil

	case *logical.Sort:
		newInput, leftover, err := r.pushInto(n.Input, conjuncts, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			newInput = &logical.Filter{Input: newInput, Predicate: logical.And(leftover...)}
		}
		return &logical.Sort{Input: newInput, Keys: n.Keys, Fetch: n.Fetch}, nil, nil

	case *logical.Distinct:
		newInput, leftover, err := r.pushInto(n.Input, conjuncts, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			newInput = &logical.Filter{Input: newInput, Predicate: logical.And(leftover...)}
		}
		return &logical.Distinct{Input: newInput}, nil, nil
	}
	// Limit, Window, Values, Extension: do not push through.
	return plan, conjuncts, nil
}

// stripAliasExpr unwraps aliases.
func stripAliasExpr(e logical.Expr) logical.Expr {
	if a, ok := e.(*logical.Alias); ok {
		return a.E
	}
	return e
}

// substituteColumns replaces column references with projection
// definitions; returns nil when substitution fails or produces an
// unresolvable expression.
func substituteColumns(e logical.Expr, sub map[string]logical.Expr, inputSchema *logical.Schema) (logical.Expr, error) {
	out, err := logical.TransformExpr(e, func(x logical.Expr) (logical.Expr, error) {
		if col, ok := x.(*logical.Column); ok {
			if def, ok2 := sub[col.Name]; ok2 {
				return def, nil
			}
		}
		return x, nil
	})
	if err != nil {
		return nil, err
	}
	if !resolvable(out, inputSchema) {
		return nil, nil
	}
	return out, nil
}

// remapByPosition rewrites column references resolved against `from` into
// references against `to` (positionally), for Union pushdown.
func remapByPosition(e logical.Expr, from, to *logical.Schema) (logical.Expr, error) {
	return logical.TransformExpr(e, func(x logical.Expr) (logical.Expr, error) {
		col, ok := x.(*logical.Column)
		if !ok {
			return x, nil
		}
		i, err := from.IndexOfColumn(col)
		if err != nil {
			return nil, err
		}
		f := to.Field(i)
		return &logical.Column{Relation: f.Qualifier, Name: f.Name}, nil
	})
}

// pushIntoJoin distributes conjuncts into join inputs, converting cross
// joins to inner joins when equality conjuncts link both sides.
func (r *FilterPushdown) pushIntoJoin(j *logical.Join, conjuncts []logical.Expr, ctx *Context) (logical.Plan, []logical.Expr, error) {
	ls, rs := j.Left.Schema(), j.Right.Schema()
	var toLeft, toRight, newOn []logical.Expr
	var newPairs []logical.EquiPair
	var joinFilters, blocked []logical.Expr

	leftPushable := j.Type == logical.InnerJoin || j.Type == logical.CrossJoin ||
		j.Type == logical.LeftJoin || j.Type == logical.LeftSemiJoin || j.Type == logical.LeftAntiJoin
	rightPushable := j.Type == logical.InnerJoin || j.Type == logical.CrossJoin ||
		j.Type == logical.RightJoin || j.Type == logical.RightSemiJoin || j.Type == logical.RightAntiJoin

	for _, c := range conjuncts {
		onLeft := resolvable(c, ls)
		onRight := resolvable(c, rs)
		switch {
		case onLeft && !onRight && leftPushable:
			toLeft = append(toLeft, c)
		case onRight && !onLeft && rightPushable:
			toRight = append(toRight, c)
		case onLeft && !onRight, onRight && !onLeft:
			// Side not pushable under this join type (e.g. right side of a
			// LEFT join): predicate stays above.
			blocked = append(blocked, c)
		default:
			// References both sides.
			if (j.Type == logical.InnerJoin || j.Type == logical.CrossJoin) && !logical.HasSubquery(c) {
				if be, ok := c.(*logical.BinaryExpr); ok && be.Op == logical.OpEq {
					switch {
					case resolvable(be.L, ls) && resolvable(be.R, rs):
						newPairs = append(newPairs, logical.EquiPair{L: be.L, R: be.R})
						continue
					case resolvable(be.L, rs) && resolvable(be.R, ls):
						newPairs = append(newPairs, logical.EquiPair{L: be.R, R: be.L})
						continue
					}
				}
				joinFilters = append(joinFilters, c)
				continue
			}
			blocked = append(blocked, c)
		}
	}
	_ = newOn

	newLeft := j.Left
	if len(toLeft) > 0 {
		nl, leftover, err := r.pushInto(j.Left, toLeft, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			nl = &logical.Filter{Input: nl, Predicate: logical.And(leftover...)}
		}
		newLeft = nl
	}
	newRight := j.Right
	if len(toRight) > 0 {
		nr, leftover, err := r.pushInto(j.Right, toRight, ctx)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			nr = &logical.Filter{Input: nr, Predicate: logical.And(leftover...)}
		}
		newRight = nr
	}

	jt := j.Type
	on := append(append([]logical.EquiPair{}, j.On...), newPairs...)
	filter := j.Filter
	for _, jf := range joinFilters {
		filter = logical.And(filter, jf)
	}
	if jt == logical.CrossJoin && (len(on) > 0 || filter != nil) {
		jt = logical.InnerJoin
	}
	return logical.NewJoin(newLeft, newRight, jt, on, filter), blocked, nil
}
