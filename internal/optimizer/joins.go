package optimizer

import (
	"gofusion/internal/catalog"
	"gofusion/internal/logical"
)

// OuterToInner converts outer joins to inner joins when a filter above
// them rejects NULLs from the padded side (paper Section 6.1:
// "outer-to-inner join conversion").
type OuterToInner struct{}

// Name implements Rule.
func (*OuterToInner) Name() string { return "outer_to_inner" }

// Apply implements Rule.
func (r *OuterToInner) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p, nil
		}
		j, ok := f.Input.(*logical.Join)
		if !ok {
			return p, nil
		}
		jt := j.Type
		for _, c := range logical.SplitConjunction(f.Predicate) {
			if (jt == logical.LeftJoin || jt == logical.FullJoin) && nullRejecting(c, j.Right.Schema()) {
				if jt == logical.LeftJoin {
					jt = logical.InnerJoin
				} else {
					jt = logical.LeftJoin
				}
			}
			if (jt == logical.RightJoin || jt == logical.FullJoin) && nullRejecting(c, j.Left.Schema()) {
				if jt == logical.RightJoin {
					jt = logical.InnerJoin
				} else {
					jt = logical.RightJoin
				}
			}
		}
		if jt == j.Type {
			return p, nil
		}
		return &logical.Filter{
			Input:     logical.NewJoin(j.Left, j.Right, jt, j.On, j.Filter),
			Predicate: f.Predicate,
		}, nil
	})
}

// nullRejecting conservatively reports whether the predicate evaluates to
// NULL or FALSE whenever all columns from schema are NULL: comparisons,
// LIKE, IN, BETWEEN, and IS NOT NULL over a column of the schema qualify.
func nullRejecting(e logical.Expr, schema *logical.Schema) bool {
	refsSide := false
	for _, c := range logical.CollectColumns(e) {
		if _, err := schema.IndexOfColumn(c); err == nil {
			refsSide = true
			break
		}
	}
	if !refsSide {
		return false
	}
	switch x := e.(type) {
	case *logical.BinaryExpr:
		return x.Op.IsComparison() || x.Op.IsArithmetic()
	case *logical.Like, *logical.InList, *logical.Between:
		return true
	case *logical.IsNull:
		return x.Negated
	}
	return false
}

// JoinInputSwap puts the estimated-smaller input on the build (left) side
// of inner joins (paper Section 6.4: "heuristically reorders joins based
// on statistics").
type JoinInputSwap struct{}

// Name implements Rule.
func (*JoinInputSwap) Name() string { return "join_input_swap" }

// Apply implements Rule.
func (r *JoinInputSwap) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		j, ok := p.(*logical.Join)
		if !ok || j.Type != logical.InnerJoin || len(j.On) == 0 {
			return p, nil
		}
		lrows := EstimateRows(j.Left)
		rrows := EstimateRows(j.Right)
		if lrows < 0 || rrows < 0 || lrows <= rrows {
			return p, nil
		}
		// Swap: build from the smaller side. Column order changes, so wrap
		// in a projection restoring the original schema.
		on := make([]logical.EquiPair, len(j.On))
		for i, pair := range j.On {
			on[i] = logical.EquiPair{L: pair.R, R: pair.L}
		}
		swapped := logical.NewJoin(j.Right, j.Left, logical.InnerJoin, on, j.Filter)
		exprs := make([]logical.Expr, j.Schema().Len())
		for i, f := range j.Schema().Fields() {
			exprs[i] = &logical.Column{Relation: f.Qualifier, Name: f.Name}
		}
		return logical.NewProjection(swapped, exprs, ctx.Reg)
	})
}

// EstimateRows is a crude cardinality estimator used by heuristic rules;
// -1 means unknown.
func EstimateRows(p logical.Plan) int64 {
	switch n := p.(type) {
	case *logical.TableScan:
		if prov, ok := n.Source.(catalog.TableProvider); ok {
			rows := prov.Statistics().NumRows
			if rows < 0 {
				return -1
			}
			for range n.Filters {
				rows = rows / 5
			}
			return rows
		}
		return -1
	case *logical.Filter:
		in := EstimateRows(n.Input)
		if in < 0 {
			return -1
		}
		return in / 5
	case *logical.Projection:
		return EstimateRows(n.Input)
	case *logical.SubqueryAlias:
		return EstimateRows(n.Input)
	case *logical.Limit:
		in := EstimateRows(n.Input)
		if n.Fetch >= 0 && (in < 0 || n.Fetch < in) {
			return n.Fetch
		}
		return in
	case *logical.Sort:
		return EstimateRows(n.Input)
	case *logical.Aggregate:
		in := EstimateRows(n.Input)
		if in < 0 {
			return -1
		}
		if len(n.GroupExprs) == 0 {
			return 1
		}
		est := in / 10
		if est < 1 {
			est = 1
		}
		return est
	case *logical.Distinct:
		in := EstimateRows(n.Input)
		if in < 0 {
			return -1
		}
		return in / 2
	case *logical.Join:
		l, r := EstimateRows(n.Left), EstimateRows(n.Right)
		if l < 0 || r < 0 {
			return -1
		}
		switch n.Type {
		case logical.LeftSemiJoin, logical.LeftAntiJoin:
			return l / 2
		case logical.RightSemiJoin, logical.RightAntiJoin:
			return r / 2
		case logical.CrossJoin:
			return l * r
		default:
			if l > r {
				return l
			}
			return r
		}
	case *logical.Union:
		var total int64
		for _, in := range n.Inputs {
			e := EstimateRows(in)
			if e < 0 {
				return -1
			}
			total += e
		}
		return total
	case *logical.Values:
		return int64(len(n.Rows))
	case *logical.EmptyRelation:
		if n.ProduceOneRow {
			return 1
		}
		return 0
	}
	return -1
}

// LimitPushdown moves limits toward sources: Limit over Sort becomes a
// Top-K sort; Limit over Projection commutes; Limit over a bare scan sets
// the scan's fetch count.
type LimitPushdown struct{}

// Name implements Rule.
func (*LimitPushdown) Name() string { return "limit_pushdown" }

// Apply implements Rule.
func (r *LimitPushdown) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		l, ok := p.(*logical.Limit)
		if !ok || l.Fetch < 0 {
			return p, nil
		}
		reach := l.Skip + l.Fetch
		switch inner := l.Input.(type) {
		case *logical.Sort:
			if inner.Fetch < 0 || inner.Fetch > reach {
				s := &logical.Sort{Input: inner.Input, Keys: inner.Keys, Fetch: reach}
				return &logical.Limit{Input: s, Skip: l.Skip, Fetch: l.Fetch}, nil
			}
			return p, nil
		case *logical.Projection:
			pushed := &logical.Limit{Input: inner.Input, Skip: l.Skip, Fetch: l.Fetch}
			proj, err := logical.NewProjection(pushed, inner.Exprs, ctx.Reg)
			if err != nil {
				return nil, err
			}
			return proj, nil
		case *logical.TableScan:
			if len(inner.Filters) == 0 && l.Skip == 0 {
				out := *inner
				if out.Fetch < 0 || out.Fetch > reach {
					out.Fetch = reach
				}
				return &logical.Limit{Input: &out, Skip: l.Skip, Fetch: l.Fetch}, nil
			}
			return p, nil
		}
		return p, nil
	})
}
