package optimizer

import (
	"gofusion/internal/arrow"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
)

// SimplifyExpressions folds constant subexpressions and applies boolean
// algebra identities (paper Section 6.1: "expression simplification").
type SimplifyExpressions struct{}

// Name implements Rule.
func (*SimplifyExpressions) Name() string { return "simplify_expressions" }

// Apply implements Rule.
func (r *SimplifyExpressions) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		switch n := p.(type) {
		case *logical.Filter:
			pred, err := simplify(n.Predicate, ctx)
			if err != nil {
				return nil, err
			}
			// A constant-true filter disappears; constant-false becomes an
			// empty relation.
			if lit, ok := pred.(*logical.Literal); ok && !lit.Value.Null && lit.Value.Type.ID == arrow.BOOL {
				if lit.Value.AsBool() {
					return n.Input, nil
				}
				return &logical.EmptyRelation{SchemaVal: n.Input.Schema()}, nil
			}
			return &logical.Filter{Input: n.Input, Predicate: pred}, nil
		case *logical.Projection:
			exprs := make([]logical.Expr, len(n.Exprs))
			changed := false
			for i, e := range n.Exprs {
				se, err := simplify(e, ctx)
				if err != nil {
					return nil, err
				}
				exprs[i] = se
				if se != e {
					changed = true
				}
			}
			if !changed {
				return p, nil
			}
			return rebuildProjection(n, exprs, ctx)
		}
		return p, nil
	})
}

// rebuildProjection preserves output names while replacing expressions.
func rebuildProjection(n *logical.Projection, exprs []logical.Expr, ctx *Context) (logical.Plan, error) {
	for i, e := range exprs {
		want := n.Schema().Field(i).Name
		if logical.OutputName(e) != want {
			exprs[i] = &logical.Alias{E: e, Name: want}
		}
	}
	return logical.NewProjection(n.Input, exprs, ctx.Reg)
}

// simplify rewrites one expression bottom-up.
func simplify(e logical.Expr, ctx *Context) (logical.Expr, error) {
	return logical.TransformExpr(e, func(x logical.Expr) (logical.Expr, error) {
		switch n := x.(type) {
		case *logical.BinaryExpr:
			if n.Op == logical.OpAnd {
				if b, ok := boolLit(n.L); ok {
					if b {
						return n.R, nil
					}
					return logical.Lit(false), nil
				}
				if b, ok := boolLit(n.R); ok {
					if b {
						return n.L, nil
					}
					return logical.Lit(false), nil
				}
			}
			if n.Op == logical.OpOr {
				if b, ok := boolLit(n.L); ok {
					if b {
						return logical.Lit(true), nil
					}
					return n.R, nil
				}
				if b, ok := boolLit(n.R); ok {
					if b {
						return logical.Lit(true), nil
					}
					return n.L, nil
				}
				// Join predicate extraction (paper Section 6.1): factor
				// conjuncts common to every OR branch out of the
				// disjunction, e.g. (A AND X) OR (A AND Y) => A AND (X OR Y),
				// exposing A (often a join equality) to pushdown.
				if factored := factorCommonConjuncts(n); factored != nil {
					return factored, nil
				}
			}
			return foldIfConstant(x, ctx)
		case *logical.Not:
			if inner, ok := n.E.(*logical.Not); ok {
				return inner.E, nil
			}
			if b, ok := boolLit(n.E); ok {
				return logical.Lit(!b), nil
			}
			// Push NOT into comparisons: NOT (a < b) => a >= b.
			if cmp, ok := n.E.(*logical.BinaryExpr); ok && cmp.Op.IsComparison() {
				return &logical.BinaryExpr{Op: negateCmp(cmp.Op), L: cmp.L, R: cmp.R}, nil
			}
			// NOT EXISTS / NOT IN normalize into their negated forms.
			if ex, ok := n.E.(*logical.Exists); ok {
				return &logical.Exists{Plan: ex.Plan, Raw: ex.Raw, Negated: !ex.Negated}, nil
			}
			if in, ok := n.E.(*logical.InSubquery); ok {
				return &logical.InSubquery{E: in.E, Plan: in.Plan, Raw: in.Raw, Negated: !in.Negated}, nil
			}
			return x, nil
		case *logical.Cast, *logical.Negative:
			return foldIfConstant(x, ctx)
		}
		return x, nil
	})
}

func negateCmp(op logical.BinOp) logical.BinOp {
	switch op {
	case logical.OpEq:
		return logical.OpNeq
	case logical.OpNeq:
		return logical.OpEq
	case logical.OpLt:
		return logical.OpGtEq
	case logical.OpLtEq:
		return logical.OpGt
	case logical.OpGt:
		return logical.OpLtEq
	default:
		return logical.OpLt
	}
}

func boolLit(e logical.Expr) (bool, bool) {
	lit, ok := e.(*logical.Literal)
	if !ok || lit.Value.Null || lit.Value.Type.ID != arrow.BOOL {
		return false, false
	}
	return lit.Value.AsBool(), true
}

// isConstant reports whether an expression contains only literals and
// deterministic operators.
func isConstant(e logical.Expr) bool {
	ok := true
	logical.VisitExpr(e, func(x logical.Expr) bool {
		switch x.(type) {
		case *logical.Literal, *logical.BinaryExpr, *logical.Cast, *logical.Negative,
			*logical.Not, *logical.IsNull, *logical.Case:
			return true
		case *logical.ScalarFunc:
			return true // built-in scalars are deterministic
		default:
			ok = false
			return false
		}
	})
	return ok
}

var emptySchema = logical.NewSchema()

// foldIfConstant evaluates constant expressions to literals by compiling
// and running them against a one-row empty batch.
func foldIfConstant(e logical.Expr, ctx *Context) (logical.Expr, error) {
	if _, already := e.(*logical.Literal); already {
		return e, nil
	}
	if !isConstant(e) {
		return e, nil
	}
	comp := physical.NewCompiler(emptySchema, ctx.Reg)
	pe, err := comp.Compile(e)
	if err != nil {
		return e, nil // non-compilable constants stay as-is
	}
	oneRow := arrow.NewRecordBatchWithRows(arrow.NewSchema(), nil, 1)
	d, err := pe.Evaluate(oneRow)
	if err != nil {
		return e, nil // runtime errors (e.g. div by zero) surface at exec
	}
	var s arrow.Scalar
	if d.IsArray() {
		if d.Array().Len() != 1 {
			return e, nil
		}
		s = d.Array().GetScalar(0)
	} else {
		s = d.ScalarValue()
	}
	return &logical.Literal{Value: s}, nil
}

// splitDisjunction flattens nested ORs.
func splitDisjunction(e logical.Expr) []logical.Expr {
	if b, ok := e.(*logical.BinaryExpr); ok && b.Op == logical.OpOr {
		return append(splitDisjunction(b.L), splitDisjunction(b.R)...)
	}
	return []logical.Expr{e}
}

// factorCommonConjuncts extracts conjuncts present in every disjunct of an
// OR, returning the rewritten expression or nil when nothing factors.
func factorCommonConjuncts(or *logical.BinaryExpr) logical.Expr {
	branches := splitDisjunction(or)
	if len(branches) < 2 {
		return nil
	}
	sets := make([][]logical.Expr, len(branches))
	for i, b := range branches {
		sets[i] = logical.SplitConjunction(b)
	}
	var common []logical.Expr
	for _, cand := range sets[0] {
		inAll := true
		for _, set := range sets[1:] {
			found := false
			for _, c := range set {
				if logical.ExprEqual(c, cand) {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, cand)
		}
	}
	if len(common) == 0 {
		return nil
	}
	isCommon := func(e logical.Expr) bool {
		for _, c := range common {
			if logical.ExprEqual(c, e) {
				return true
			}
		}
		return false
	}
	// Rebuild each branch without the common conjuncts.
	var rest logical.Expr
	for _, set := range sets {
		var remain []logical.Expr
		for _, c := range set {
			if !isCommon(c) {
				remain = append(remain, c)
			}
		}
		branch := logical.And(remain...)
		if branch == nil {
			// One branch reduces to TRUE: the OR adds nothing.
			rest = nil
			break
		}
		if rest == nil {
			rest = branch
		} else {
			rest = &logical.BinaryExpr{Op: logical.OpOr, L: rest, R: branch}
		}
	}
	out := logical.And(common...)
	if rest != nil {
		out = logical.And(out, rest)
	}
	return out
}
