package optimizer

import (
	"fmt"

	"gofusion/internal/logical"
)

// CommonSubexpressionElimination factors subexpressions that appear more
// than once in a projection into a lower projection computed once (paper
// Section 6.1), e.g. TPC-H Q1's `l_extendedprice * (1 - l_discount)`
// appearing in two aggregates.
type CommonSubexpressionElimination struct{}

// Name implements Rule.
func (*CommonSubexpressionElimination) Name() string { return "common_subexpression_elimination" }

// Apply implements Rule.
func (r *CommonSubexpressionElimination) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		switch n := p.(type) {
		case *logical.Projection:
			return r.rewriteProjection(n, ctx)
		case *logical.Aggregate:
			return r.rewriteAggregate(n, ctx)
		}
		return p, nil
	})
}

// rewriteAggregate factors subexpressions repeated across group keys and
// aggregate arguments into a projection below the aggregate (e.g. TPC-H
// Q1 computes `l_extendedprice * (1 - l_discount)` once for two sums).
func (r *CommonSubexpressionElimination) rewriteAggregate(agg *logical.Aggregate, ctx *Context) (logical.Plan, error) {
	// Candidate sources: group exprs and the args of each aggregate call.
	var sources []logical.Expr
	sources = append(sources, agg.GroupExprs...)
	for _, ae := range agg.AggExprs {
		call := ae
		if a, ok := call.(*logical.Alias); ok {
			call = a.E
		}
		if af, ok := call.(*logical.AggFunc); ok {
			sources = append(sources, af.Args...)
			if af.Filter != nil {
				sources = append(sources, af.Filter)
			}
		}
	}
	shared, sub := sharedSubexpressions(sources)
	if len(shared) == 0 {
		return agg, nil
	}
	inSchema := agg.Input.Schema()
	lowerExprs := make([]logical.Expr, 0, inSchema.Len()+len(shared))
	for _, f := range inSchema.Fields() {
		lowerExprs = append(lowerExprs, &logical.Column{Relation: f.Qualifier, Name: f.Name})
	}
	for i, e := range shared {
		lowerExprs = append(lowerExprs, &logical.Alias{E: e, Name: fmt.Sprintf("__cse_%d", i+1)})
	}
	lower, err := logical.NewProjection(agg.Input, lowerExprs, ctx.Reg)
	if err != nil {
		return agg, nil
	}
	// Rewritten expressions are aliased back to their original output
	// names so name-resolved references above the aggregate keep working
	// (bare-column group keys are never rewritten, preserving their
	// qualifiers).
	rewrite := substituteTopDown(sub)
	newGroups := make([]logical.Expr, len(agg.GroupExprs))
	for i, g := range agg.GroupExprs {
		ng := rewrite(g)
		if ng != g && logical.OutputName(ng) != logical.OutputName(g) {
			ng = &logical.Alias{E: ng, Name: logical.OutputName(g)}
		}
		newGroups[i] = ng
	}
	newAggs := make([]logical.Expr, len(agg.AggExprs))
	for i, ae := range agg.AggExprs {
		na := rewrite(ae)
		if na != ae && logical.OutputName(na) != logical.OutputName(ae) {
			na = &logical.Alias{E: na, Name: logical.OutputName(ae)}
		}
		newAggs[i] = na
	}
	out, err := logical.NewAggregate(lower, newGroups, newAggs, ctx.Reg)
	if err != nil {
		return agg, nil
	}
	return out, nil
}

// sharedSubexpressions finds outermost non-trivial subexpressions that
// occur at least twice, returning them plus the substitution map.
func sharedSubexpressions(sources []logical.Expr) ([]logical.Expr, map[string]*logical.Column) {
	counts := map[string]int{}
	exprOf := map[string]logical.Expr{}
	for _, e := range sources {
		logical.VisitExpr(e, func(x logical.Expr) bool {
			if !nontrivial(x) {
				return true
			}
			key := x.String()
			counts[key]++
			if _, ok := exprOf[key]; !ok {
				exprOf[key] = x
			}
			return true
		})
	}
	isShared := map[string]bool{}
	for key, n := range counts {
		if n >= 2 {
			isShared[key] = true
		}
	}
	if len(isShared) == 0 {
		return nil, nil
	}
	for key := range isShared {
		for _, c := range logical.ExprChildren(exprOf[key]) {
			markNestedShared(c, isShared)
		}
	}
	var shared []logical.Expr
	sub := map[string]*logical.Column{}
	i := 0
	for key, on := range isShared {
		if !on {
			continue
		}
		i++
		shared = append(shared, exprOf[key])
		sub[key] = &logical.Column{Name: fmt.Sprintf("__cse_%d", i)}
	}
	return shared, sub
}

// substituteTopDown returns a rewriter replacing whole-expression matches
// before descending.
func substituteTopDown(sub map[string]*logical.Column) func(logical.Expr) logical.Expr {
	var rewrite func(e logical.Expr) logical.Expr
	rewrite = func(e logical.Expr) logical.Expr {
		if a, ok := e.(*logical.Alias); ok {
			return &logical.Alias{E: rewrite(a.E), Name: a.Name}
		}
		if c, ok := sub[e.String()]; ok {
			return c
		}
		children := logical.ExprChildren(e)
		if len(children) == 0 {
			return e
		}
		newChildren := make([]logical.Expr, len(children))
		changed := false
		for i, ch := range children {
			newChildren[i] = rewrite(ch)
			if newChildren[i] != ch {
				changed = true
			}
		}
		if !changed {
			return e
		}
		return logical.ExprWithChildren(e, newChildren)
	}
	return rewrite
}

// nontrivial reports whether an expression is worth factoring: it must do
// real work (not a bare column/literal/alias) and be deterministic-safe.
func nontrivial(e logical.Expr) bool {
	switch e.(type) {
	case *logical.Column, *logical.Literal, *logical.Alias, *logical.Wildcard:
		return false
	}
	// Subquery and volatile shapes are not factored.
	return !logical.HasSubquery(e) && !logical.HasAggregates(e) && !logical.HasWindow(e)
}

func (r *CommonSubexpressionElimination) rewriteProjection(proj *logical.Projection, ctx *Context) (logical.Plan, error) {
	// Count non-trivial subexpressions across all projection expressions.
	counts := map[string]int{}
	exprOf := map[string]logical.Expr{}
	for _, e := range proj.Exprs {
		logical.VisitExpr(e, func(x logical.Expr) bool {
			if !nontrivial(x) {
				return true
			}
			key := x.String()
			counts[key]++
			if _, ok := exprOf[key]; !ok {
				exprOf[key] = x
			}
			return true // still count nested repeats
		})
	}
	// Candidates: repeated subexpressions not contained in a larger
	// repeated subexpression (keep the outermost).
	var shared []logical.Expr
	isShared := map[string]bool{}
	for key, n := range counts {
		if n >= 2 {
			isShared[key] = true
		}
	}
	if len(isShared) == 0 {
		return proj, nil
	}
	// Drop candidates nested inside another candidate.
	for key := range isShared {
		e := exprOf[key]
		for _, c := range logical.ExprChildren(e) {
			markNestedShared(c, isShared)
		}
	}
	for key := range isShared {
		if isShared[key] {
			shared = append(shared, exprOf[key])
		}
	}
	if len(shared) == 0 {
		return proj, nil
	}

	// Build the lower projection: input columns pass through, shared
	// expressions are computed once under synthetic names.
	inSchema := proj.Input.Schema()
	lowerExprs := make([]logical.Expr, 0, inSchema.Len()+len(shared))
	for _, f := range inSchema.Fields() {
		lowerExprs = append(lowerExprs, &logical.Column{Relation: f.Qualifier, Name: f.Name})
	}
	sub := map[string]*logical.Column{}
	for i, e := range shared {
		name := fmt.Sprintf("__cse_%d", i+1)
		lowerExprs = append(lowerExprs, &logical.Alias{E: e, Name: name})
		sub[e.String()] = &logical.Column{Name: name}
	}
	lower, err := logical.NewProjection(proj.Input, lowerExprs, ctx.Reg)
	if err != nil {
		return proj, nil // bail out rather than fail the query
	}

	// Rewrite the upper projection top-down so outer matches win.
	var rewrite func(e logical.Expr) logical.Expr
	rewrite = func(e logical.Expr) logical.Expr {
		if a, ok := e.(*logical.Alias); ok {
			return &logical.Alias{E: rewrite(a.E), Name: a.Name}
		}
		if c, ok := sub[e.String()]; ok {
			return c
		}
		children := logical.ExprChildren(e)
		if len(children) == 0 {
			return e
		}
		newChildren := make([]logical.Expr, len(children))
		changed := false
		for i, ch := range children {
			newChildren[i] = rewrite(ch)
			if newChildren[i] != ch {
				changed = true
			}
		}
		if !changed {
			return e
		}
		return logical.ExprWithChildren(e, newChildren)
	}
	upperExprs := make([]logical.Expr, len(proj.Exprs))
	for i, e := range proj.Exprs {
		ne := rewrite(e)
		// Preserve output names.
		want := proj.Schema().Field(i).Name
		if logical.OutputName(ne) != want {
			ne = &logical.Alias{E: ne, Name: want}
		}
		upperExprs[i] = ne
	}
	upper, err := logical.NewProjection(lower, upperExprs, ctx.Reg)
	if err != nil {
		return proj, nil
	}
	return upper, nil
}

// markNestedShared clears the shared flag of candidates strictly inside
// another candidate.
func markNestedShared(e logical.Expr, isShared map[string]bool) {
	logical.VisitExpr(e, func(x logical.Expr) bool {
		if isShared[x.String()] {
			isShared[x.String()] = false
		}
		return true
	})
}

// EliminateDistinct removes Distinct over inputs whose rows are already
// unique: an Aggregate whose group keys are exactly the output columns.
type EliminateDistinct struct{}

// Name implements Rule.
func (*EliminateDistinct) Name() string { return "eliminate_distinct" }

// Apply implements Rule.
func (*EliminateDistinct) Apply(plan logical.Plan, _ *Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		d, ok := p.(*logical.Distinct)
		if !ok {
			return p, nil
		}
		switch inner := d.Input.(type) {
		case *logical.Distinct:
			return inner, nil
		case *logical.Aggregate:
			// Grouped output with no aggregate columns is already distinct.
			if len(inner.AggExprs) == 0 && len(inner.GroupExprs) > 0 {
				return inner, nil
			}
		}
		return p, nil
	})
}
