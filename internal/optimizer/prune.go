package optimizer

import (
	"strings"

	"gofusion/internal/logical"
)

// PruneScans implements projection pushdown to the data sources (paper
// Section 6.8): every column referenced anywhere in the plan is
// collected, and each TableScan is narrowed to the referenced subset, so
// file readers decode only the needed columns.
type PruneScans struct{}

// Name implements Rule.
func (*PruneScans) Name() string { return "prune_scans" }

// Apply implements Rule.
func (r *PruneScans) Apply(plan logical.Plan, ctx *Context) (logical.Plan, error) {
	// Gather every column reference in the whole tree, qualified and not.
	type ref struct{ qualifier, name string }
	refs := map[ref]bool{}
	var walkPlan func(p logical.Plan)
	collect := func(e logical.Expr) {
		logical.VisitExpr(e, func(x logical.Expr) bool {
			if c, ok := x.(*logical.Column); ok {
				refs[ref{strings.ToLower(c.Relation), strings.ToLower(c.Name)}] = true
			}
			// Descend into subquery plans too.
			switch sq := x.(type) {
			case *logical.ScalarSubquery:
				if sq.Plan != nil {
					walkPlan(sq.Plan)
				}
			case *logical.Exists:
				if sq.Plan != nil {
					walkPlan(sq.Plan)
				}
			case *logical.InSubquery:
				if sq.Plan != nil {
					walkPlan(sq.Plan)
				}
			}
			return true
		})
	}
	walkPlan = func(p logical.Plan) {
		logical.VisitPlan(p, func(n logical.Plan) bool {
			for _, e := range exprsOf(n) {
				collect(e)
			}
			// SubqueryAlias re-qualifies its child: a reference to
			// alias.col requires the child's col (any qualifier).
			if sa, ok := n.(*logical.SubqueryAlias); ok {
				alias := strings.ToLower(sa.Alias)
				for _, f := range sa.Schema().Fields() {
					if refs[ref{alias, strings.ToLower(f.Name)}] || refs[ref{"", strings.ToLower(f.Name)}] {
						// Mark the underlying field as needed under its own
						// qualifier.
						for _, inf := range sa.Input.Schema().Fields() {
							if strings.EqualFold(inf.Name, f.Name) {
								refs[ref{strings.ToLower(inf.Qualifier), strings.ToLower(inf.Name)}] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	walkPlan(plan)

	// Projections and aliases can rename columns out from under us; only
	// prune scans whose columns are referenced directly. A scan column is
	// needed when referenced as (scanName, col) or ("", col).
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		scan, ok := p.(*logical.TableScan)
		if !ok || scan.Projection != nil {
			return p, nil
		}
		full := scan.Source.Schema()
		var keep []int
		lname := strings.ToLower(scan.Name)
		for i := 0; i < full.NumFields(); i++ {
			col := strings.ToLower(full.Field(i).Name)
			if refs[ref{lname, col}] || refs[ref{"", col}] {
				keep = append(keep, i)
			}
		}
		if len(keep) == full.NumFields() {
			return p, nil
		}
		if len(keep) == 0 {
			// Keep one (narrowest) column so the scan still produces row
			// counts for COUNT(*).
			best, bestW := 0, 1<<30
			for i := 0; i < full.NumFields(); i++ {
				w := full.Field(i).Type.BitWidth()
				if w == 0 {
					w = 1 << 20
				}
				if w < bestW {
					best, bestW = i, w
				}
			}
			keep = []int{best}
		}
		return scan.WithProjection(keep), nil
	})
}
