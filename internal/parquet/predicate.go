package parquet

import (
	"gofusion/internal/arrow"
)

// Predicate is the pushdown contract between the engine and the reader.
// The engine supplies an implementation wrapping its physical expressions;
// the reader uses it for row-group pruning (chunk statistics and Bloom
// filters), page pruning, and final row-level evaluation during late
// materialization.
type Predicate interface {
	// Columns returns the file-schema column indexes the predicate reads.
	Columns() []int
	// Evaluate evaluates the predicate over the given columns (keyed by
	// file-schema index, each with numRows rows), returning a boolean mask.
	Evaluate(cols map[int]arrow.Array, numRows int) (*arrow.BoolArray, error)
	// KeepColumnStats reports whether rows in a container with the given
	// per-column statistics might satisfy the predicate. Implementations
	// must be conservative: return true when unsure.
	KeepColumnStats(col int, stats ColumnStats) bool
	// EqProbes returns conjunctive equality requirements (col = literal)
	// suitable for Bloom filter probing, or nil.
	EqProbes() []EqProbe
}

// EqProbe states that the predicate requires column Col to equal Value.
type EqProbe struct {
	Col   int
	Value arrow.Scalar
}

// StatsKeepCompare is a helper for implementations: given min/max bounds,
// it reports whether any value in [min, max] can satisfy `value <op> lit`.
func StatsKeepCompare(op string, stats ColumnStats, lit arrow.Scalar) bool {
	if !stats.HasMinMax || lit.Null {
		return true
	}
	mn, mx := stats.Min, stats.Max
	if mn.Null || mx.Null {
		return true
	}
	if mn.Type.ID != lit.Type.ID {
		return true
	}
	switch op {
	case "=":
		return !scalarLess(lit, mn) && !scalarLess(mx, lit)
	case "!=":
		// Prunable only when every value equals lit (min == lit == max).
		allEqual := !scalarLess(mn, lit) && !scalarLess(lit, mn) &&
			!scalarLess(mx, lit) && !scalarLess(lit, mx)
		return !allEqual
	case "<":
		return scalarLess(mn, lit)
	case "<=":
		return !scalarLess(lit, mn)
	case ">":
		return scalarLess(lit, mx)
	case ">=":
		return !scalarLess(mx, lit)
	}
	return true
}
