package parquet

import (
	"io"
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
)

// writeMultiGroupFile writes n rows of (id, name) into one file with
// rowGroupRows-row row groups.
func writeMultiGroupFile(t *testing.T, n, rowGroupRows int) string {
	t.Helper()
	schema := arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("name", arrow.String, false),
	)
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		ib.Append(int64(i))
		sb.Append("n" + arrow.Int64Scalar(int64(i%13)).String())
	}
	path := filepath.Join(t.TempDir(), "multi.gpq")
	err := WriteFile(path, schema,
		[]*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{ib.Finish(), sb.Finish()})},
		WriterOptions{RowGroupRows: rowGroupRows, PageRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func collectIDs(t *testing.T, sc *Scanner) []int64 {
	t.Helper()
	var out []int64
	for {
		b, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		col := b.Column(0).(*arrow.Int64Array)
		for i := 0; i < b.NumRows(); i++ {
			out = append(out, col.Value(i))
		}
	}
}

func TestScanRowGroupSubset(t *testing.T) {
	path := writeMultiGroupFile(t, 1000, 100)
	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if fr.Metadata().NumRowGroups() != 10 {
		t.Fatalf("row groups = %d, want 10", fr.Metadata().NumRowGroups())
	}
	// Two disjoint subsets cover the file exactly.
	scA, err := fr.Scan(ScanOptions{RowGroups: []int{0, 2, 4, 6, 8}, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	scB, err := fr.Scan(ScanOptions{RowGroups: []int{1, 3, 5, 7, 9}, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	ids := append(collectIDs(t, scA), collectIDs(t, scB)...)
	if len(ids) != 1000 {
		t.Fatalf("rows = %d, want 1000", len(ids))
	}
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	// Subset scans honor the limit.
	scL, err := fr.Scan(ScanOptions{RowGroups: []int{3, 4}, Limit: 150})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectIDs(t, scL); len(got) != 150 || got[0] != 300 {
		t.Fatalf("limited subset scan wrong: len=%d first=%v", len(got), got[0])
	}
	// Out-of-range indexes are rejected.
	if _, err := fr.Scan(ScanOptions{RowGroups: []int{10}, Limit: -1}); err == nil {
		t.Fatal("row group 10 should be out of range")
	}
}

func TestScanReadaheadMatchesSynchronous(t *testing.T) {
	path := writeMultiGroupFile(t, 1000, 100)
	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	pred := &cmpPredicateBench{col: 0, lit: arrow.Int64Scalar(250)}
	run := func(readahead int) []int64 {
		sc, err := fr.Scan(ScanOptions{Predicate: pred, Limit: 400, Readahead: readahead})
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		return collectIDs(t, sc)
	}
	sync := run(0)
	pipe := run(2)
	if len(sync) != len(pipe) {
		t.Fatalf("row counts differ: sync=%d pipelined=%d", len(sync), len(pipe))
	}
	for i := range sync {
		if sync[i] != pipe[i] {
			t.Fatalf("row %d differs: %d vs %d", i, sync[i], pipe[i])
		}
	}
	if len(sync) != 400 {
		t.Fatalf("limit not applied: %d", len(sync))
	}
}

func TestScanReadaheadEarlyClose(t *testing.T) {
	path := writeMultiGroupFile(t, 1000, 100)
	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	sc, err := fr.Scan(ScanOptions{Readahead: 2, BatchRows: 50, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	// Abandon mid-scan: Close must stop the producer without deadlock,
	// and stay idempotent.
	sc.Close()
	sc.Close()
	// Close before first Next is also safe.
	sc2, err := fr.Scan(ScanOptions{Readahead: 1, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	sc2.Close()
}
