package parquet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

// WriterOptions configures GPQ file writing.
type WriterOptions struct {
	// RowGroupRows is the maximum rows per row group (default 131072).
	RowGroupRows int
	// PageRows is the maximum rows per data page (default 8192).
	PageRows int
	// Compression enables flate page compression (default on via
	// DefaultWriterOptions).
	Compression bool
	// Dictionary enables dictionary encoding of low-cardinality string
	// columns.
	Dictionary bool
	// BloomFilters builds per-chunk Bloom filters on integer and string
	// columns.
	BloomFilters bool
	// KV is arbitrary metadata stored in the footer (e.g. sort order).
	KV map[string]string
}

// DefaultWriterOptions returns the recommended writer configuration.
func DefaultWriterOptions() WriterOptions {
	return WriterOptions{
		RowGroupRows: 128 * 1024,
		PageRows:     8192,
		Compression:  true,
		Dictionary:   true,
		BloomFilters: true,
	}
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.RowGroupRows <= 0 {
		o.RowGroupRows = 128 * 1024
	}
	if o.PageRows <= 0 {
		o.PageRows = 8192
	}
	return o
}

// FileWriter writes record batches into a GPQ file.
type FileWriter struct {
	w           *bufio.Writer
	offset      int64
	schema      *arrow.Schema
	opts        WriterOptions
	footer      fileFooter
	pending     []*arrow.RecordBatch
	pendingRows int
	closed      bool
}

// NewFileWriter writes a GPQ file with the given schema to w.
func NewFileWriter(w io.Writer, schema *arrow.Schema, opts WriterOptions) (*FileWriter, error) {
	opts = opts.withDefaults()
	schemaJSON, err := arrow.MarshalSchema(schema)
	if err != nil {
		return nil, err
	}
	fw := &FileWriter{
		w:      bufio.NewWriterSize(w, 1<<20),
		schema: schema,
		opts:   opts,
		footer: fileFooter{Schema: schemaJSON, KV: opts.KV, Version: 1},
	}
	if err := fw.writeRaw([]byte(Magic)); err != nil {
		return nil, err
	}
	return fw, nil
}

func (fw *FileWriter) writeRaw(b []byte) error {
	n, err := fw.w.Write(b)
	fw.offset += int64(n)
	return err
}

// Write appends a batch; row groups are flushed as they fill.
func (fw *FileWriter) Write(batch *arrow.RecordBatch) error {
	if fw.closed {
		return fmt.Errorf("parquet: writer is closed")
	}
	if !batch.Schema().Equal(fw.schema) {
		return fmt.Errorf("parquet: batch schema %s does not match file schema %s", batch.Schema(), fw.schema)
	}
	fw.pending = append(fw.pending, batch)
	fw.pendingRows += batch.NumRows()
	for fw.pendingRows >= fw.opts.RowGroupRows {
		if err := fw.flushRowGroup(fw.opts.RowGroupRows); err != nil {
			return err
		}
	}
	return nil
}

// flushRowGroup writes the first `rows` pending rows as one row group.
func (fw *FileWriter) flushRowGroup(rows int) error {
	if rows > fw.pendingRows {
		rows = fw.pendingRows
	}
	if rows == 0 {
		return nil
	}
	// Gather exactly `rows` rows from pending batches.
	var parts []*arrow.RecordBatch
	need := rows
	for need > 0 {
		head := fw.pending[0]
		if head.NumRows() <= need {
			parts = append(parts, head)
			need -= head.NumRows()
			fw.pending = fw.pending[1:]
		} else {
			parts = append(parts, head.Slice(0, need))
			fw.pending[0] = head.Slice(need, head.NumRows()-need)
			need = 0
		}
	}
	fw.pendingRows -= rows
	group, err := compute.ConcatBatches(fw.schema, parts)
	if err != nil {
		return err
	}
	rgMeta := rowGroupMeta{NumRows: int64(group.NumRows())}
	for c := 0; c < group.NumCols(); c++ {
		chunkMeta, err := fw.writeColumnChunk(group.Column(c))
		if err != nil {
			return err
		}
		rgMeta.Columns = append(rgMeta.Columns, chunkMeta)
	}
	fw.footer.RowGroups = append(fw.footer.RowGroups, rgMeta)
	fw.footer.NumRows += int64(group.NumRows())
	return nil
}

func columnStats(a arrow.Array) statsMeta {
	meta := statsMeta{NullCount: int64(a.NullCount()), NumRows: int64(a.Len())}
	if mn, mx, ok := compute.MinMaxFast(a); ok {
		meta.Min = statsValueOf(mn)
		meta.Max = statsValueOf(mx)
		// Truncated string maxes must be widened to stay an upper bound.
		if meta.Max != nil && meta.Max.S != nil && mx.Type.ID == arrow.STRING && len(mx.AsString()) > 64 {
			widened := widenStringBound(*meta.Max.S)
			meta.Max.S = &widened
		}
	}
	return meta
}

// widenStringBound returns a string >= any string with the given prefix.
func widenStringBound(s string) string {
	b := []byte(s)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return s + "\xff"
}

func bloomEligible(t *arrow.DataType) bool {
	switch t.ID {
	case arrow.STRING, arrow.BINARY, arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64,
		arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64, arrow.DATE32, arrow.TIMESTAMP, arrow.DECIMAL:
		return true
	}
	return false
}

// tryBuildDict returns dictionary values and per-row indexes when the
// column is a string column whose cardinality makes dictionary encoding
// worthwhile.
func tryBuildDict(a arrow.Array) (*arrow.StringArray, []uint32, bool) {
	sa, ok := a.(*arrow.StringArray)
	if !ok {
		return nil, nil, false
	}
	n := sa.Len()
	if n < 64 {
		return nil, nil, false
	}
	const maxDict = 1 << 16
	dict := make(map[string]uint32, 1024)
	indexes := make([]uint32, n)
	db := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		if sa.IsNull(i) {
			continue
		}
		v := sa.Value(i)
		idx, ok := dict[v]
		if !ok {
			if len(dict) >= maxDict || len(dict) > n/2+16 {
				return nil, nil, false
			}
			idx = uint32(len(dict))
			key := string(sa.ValueBytes(i)) // copy out of shared buffer
			dict[key] = idx
			db.Append(key)
		}
		indexes[i] = idx
	}
	return db.Finish().(*arrow.StringArray), indexes, true
}

func (fw *FileWriter) writePage(body []byte) (off, length, rawLen int64, codec string, err error) {
	rawLen = int64(len(body))
	codecReq := CodecNone
	if fw.opts.Compression {
		codecReq = CodecFlate
	}
	stored, codec, err := compressBody(body, codecReq)
	if err != nil {
		return 0, 0, 0, "", err
	}
	off = fw.offset
	if err := fw.writeRaw(stored); err != nil {
		return 0, 0, 0, "", err
	}
	return off, int64(len(stored)), rawLen, codec, nil
}

func (fw *FileWriter) writeColumnChunk(col arrow.Array) (columnChunkMeta, error) {
	meta := columnChunkMeta{Stats: columnStats(col)}
	n := col.Len()

	var dictArr *arrow.StringArray
	var dictIdx []uint32
	useDict := false
	if fw.opts.Dictionary {
		dictArr, dictIdx, useDict = tryBuildDict(col)
	}
	if useDict {
		body, err := encodePlainPage(dictArr)
		if err != nil {
			return meta, err
		}
		off, length, rawLen, codec, err := fw.writePage(body)
		if err != nil {
			return meta, err
		}
		meta.Dict = &dictMeta{Offset: off, Len: length, NumValues: int64(dictArr.Len()), Codec: codec, RawLen: rawLen}
	}

	for start := 0; start < n; start += fw.opts.PageRows {
		end := start + fw.opts.PageRows
		if end > n {
			end = n
		}
		page := col.Slice(start, end-start)
		var body []byte
		var err error
		encoding := EncodingPlain
		if useDict {
			encoding = EncodingDict
			body = encodeDictIndexPage(dictIdx[start:end], page.Validity())
		} else {
			body, err = encodePlainPage(page)
			if err != nil {
				return meta, err
			}
		}
		off, length, rawLen, codec, err := fw.writePage(body)
		if err != nil {
			return meta, err
		}
		meta.Pages = append(meta.Pages, pageMeta{
			Offset:   off,
			Len:      length,
			NumRows:  int64(end - start),
			FirstRow: int64(start),
			Encoding: encoding,
			Codec:    codec,
			RawLen:   rawLen,
			Stats:    columnStats(page),
		})
	}

	if fw.opts.BloomFilters && bloomEligible(col.DataType()) {
		var bf *bloomFilter
		if useDict {
			bf = newBloomFilter(int64(dictArr.Len()))
			bf.insertArray(dictArr)
		} else {
			bf = newBloomFilter(int64(n))
			bf.insertArray(col)
		}
		off := fw.offset
		if err := fw.writeRaw(bf.bits); err != nil {
			return meta, err
		}
		meta.Bloom = &bloomMeta{Offset: off, Len: int64(len(bf.bits)), NumHashes: bf.k}
	}
	return meta, nil
}

// Close flushes remaining rows and writes the footer. The writer cannot be
// used afterwards.
func (fw *FileWriter) Close() error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	for fw.pendingRows > 0 {
		if err := fw.flushRowGroup(fw.opts.RowGroupRows); err != nil {
			return err
		}
	}
	footerJSON, err := json.Marshal(&fw.footer)
	if err != nil {
		return err
	}
	if err := fw.writeRaw(footerJSON); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(footerJSON)))
	copy(tail[4:], Magic)
	if err := fw.writeRaw(tail[:]); err != nil {
		return err
	}
	return fw.w.Flush()
}

// WriteFile writes all batches to path as a single GPQ file.
func WriteFile(path string, schema *arrow.Schema, batches []*arrow.RecordBatch, opts WriterOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fw, err := NewFileWriter(f, schema, opts)
	if err != nil {
		f.Close()
		return err
	}
	for _, b := range batches {
		if err := fw.Write(b); err != nil {
			f.Close()
			return err
		}
	}
	if err := fw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
