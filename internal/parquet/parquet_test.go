package parquet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

func testSchema() *arrow.Schema {
	return arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("name", arrow.String, true),
		arrow.NewField("score", arrow.Float64, true),
		arrow.NewField("flag", arrow.Boolean, true),
		arrow.NewField("day", arrow.Date32, true),
	)
}

// makeBatch builds rows [start, start+n) with deterministic contents:
// id = i, name = "name-<i%97>" (every 13th null), score = i/2 (every 7th
// null), flag = i%2, day = i%1000.
func makeBatch(start, n int) *arrow.RecordBatch {
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	bb := arrow.NewBoolBuilder()
	db := arrow.NewNumericBuilder[int32](arrow.Date32)
	for i := start; i < start+n; i++ {
		ib.Append(int64(i))
		if i%13 == 0 {
			sb.AppendNull()
		} else {
			sb.Append(fmt.Sprintf("name-%02d", i%97))
		}
		if i%7 == 0 {
			fb.AppendNull()
		} else {
			fb.Append(float64(i) / 2)
		}
		bb.Append(i%2 == 0)
		db.Append(int32(i % 1000))
	}
	return arrow.NewRecordBatch(testSchema(), []arrow.Array{
		ib.Finish(), sb.Finish(), fb.Finish(), bb.Finish(), db.Finish(),
	})
}

func writeTestFile(t *testing.T, path string, numRows int, opts WriterOptions) {
	t.Helper()
	var batches []*arrow.RecordBatch
	for start := 0; start < numRows; start += 1000 {
		n := 1000
		if start+n > numRows {
			n = numRows - start
		}
		batches = append(batches, makeBatch(start, n))
	}
	if err := WriteFile(path, testSchema(), batches, opts); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, sc *Scanner) *arrow.RecordBatch {
	t.Helper()
	var batches []*arrow.RecordBatch
	for {
		b, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	out, err := compute.ConcatBatches(sc.Schema(), batches)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, compression := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "t.gpq")
		opts := WriterOptions{RowGroupRows: 3000, PageRows: 500, Compression: compression, Dictionary: true, BloomFilters: true}
		writeTestFile(t, path, 10000, opts)

		fr, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fr.Close()
		if fr.NumRows() != 10000 {
			t.Fatalf("rows = %d", fr.NumRows())
		}
		if fr.Metadata().NumRowGroups() != 4 {
			t.Fatalf("row groups = %d", fr.Metadata().NumRowGroups())
		}
		if !fr.Schema().Equal(testSchema()) {
			t.Fatal("schema mismatch")
		}
		sc, err := fr.Scan(ScanOptions{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		got := scanAll(t, sc)
		want, err := compute.ConcatBatches(testSchema(), []*arrow.RecordBatch{makeBatch(0, 10000)})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("rows: got %d want %d", got.NumRows(), want.NumRows())
		}
		for c := 0; c < want.NumCols(); c++ {
			for r := 0; r < want.NumRows(); r += 37 {
				g, w := got.Column(c).GetScalar(r), want.Column(c).GetScalar(r)
				if !g.Equal(w) {
					t.Fatalf("compression=%v col %d row %d: got %v want %v", compression, c, r, g, w)
				}
			}
		}
	}
}

func TestProjectionPushdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 2000, DefaultWriterOptions())
	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	sc, err := fr.Scan(ScanOptions{Projection: []int{2, 0}, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, sc)
	if got.NumCols() != 2 || got.Schema().Field(0).Name != "score" || got.Schema().Field(1).Name != "id" {
		t.Fatalf("projection wrong: %s", got.Schema())
	}
	if got.Column(1).(*arrow.Int64Array).Value(100) != 100 {
		t.Fatal("projected values wrong")
	}
}

func TestLimitPushdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 5000, WriterOptions{RowGroupRows: 1000})
	fr, _ := OpenFile(path)
	defer fr.Close()
	sc, err := fr.Scan(ScanOptions{Limit: 1500, Projection: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, sc)
	if got.NumRows() != 1500 {
		t.Fatalf("limit: got %d rows", got.NumRows())
	}
	// Limit must stop reading row groups early.
	if sc.RowGroupsMatched > 2 {
		t.Fatalf("limit read %d row groups", sc.RowGroupsMatched)
	}
}

// cmpPredicate implements Predicate for a single `col <op> literal` atom.
type cmpPredicate struct {
	col int
	op  compute.CmpOp
	lit arrow.Scalar
}

func (p *cmpPredicate) Columns() []int { return []int{p.col} }

func (p *cmpPredicate) Evaluate(cols map[int]arrow.Array, numRows int) (*arrow.BoolArray, error) {
	return compute.CompareScalar(p.op, cols[p.col], p.lit)
}

func (p *cmpPredicate) KeepColumnStats(col int, stats ColumnStats) bool {
	return StatsKeepCompare(p.op.String(), stats, p.lit)
}

func (p *cmpPredicate) EqProbes() []EqProbe {
	if p.op == compute.Eq {
		return []EqProbe{{Col: p.col, Value: p.lit}}
	}
	return nil
}

func TestPredicatePushdownPrunesRowGroups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	// ids are monotonically increasing, so row-group stats are disjoint.
	writeTestFile(t, path, 10000, WriterOptions{RowGroupRows: 1000, PageRows: 100})
	fr, _ := OpenFile(path)
	defer fr.Close()
	pred := &cmpPredicate{col: 0, op: compute.Gt, lit: arrow.Int64Scalar(8999)}
	sc, err := fr.Scan(ScanOptions{Predicate: pred, Projection: []int{0, 1}, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, sc)
	if got.NumRows() != 1000 {
		t.Fatalf("got %d rows", got.NumRows())
	}
	if sc.RowGroupsPruned != 9 || sc.RowGroupsMatched != 1 {
		t.Fatalf("pruned=%d matched=%d", sc.RowGroupsPruned, sc.RowGroupsMatched)
	}
	// Verify values actually satisfy the predicate.
	ids := got.Column(0).(*arrow.Int64Array)
	for i := 0; i < ids.Len(); i++ {
		if ids.Value(i) <= 8999 {
			t.Fatal("predicate violated")
		}
	}
}

func TestPagePruningAndLateMaterialization(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 10000, WriterOptions{RowGroupRows: 10000, PageRows: 100})
	fr, _ := OpenFile(path)
	defer fr.Close()
	pred := &cmpPredicate{col: 0, op: compute.Eq, lit: arrow.Int64Scalar(5555)}
	sc, err := fr.Scan(ScanOptions{Predicate: pred, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, sc)
	if got.NumRows() != 1 {
		t.Fatalf("got %d rows", got.NumRows())
	}
	if got.Column(1).(*arrow.StringArray).Value(0) != fmt.Sprintf("name-%02d", 5555%97) {
		t.Fatal("late materialized value wrong")
	}
	// 100 pages exist; all but one should be skipped by page stats.
	if sc.PagesSkipped < 90 {
		t.Fatalf("pages skipped = %d", sc.PagesSkipped)
	}
}

func TestBloomFilterPrunesImpossibleEquality(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 5000, DefaultWriterOptions())
	fr, _ := OpenFile(path)
	defer fr.Close()
	// "zzz" is not a value of name; min/max alone cannot prove absence
	// ... actually it can, so probe a value inside the min/max range.
	pred := &cmpPredicate{col: 1, op: compute.Eq, lit: arrow.StringScalar("name-0x")}
	sc, err := fr.Scan(ScanOptions{Predicate: pred, Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, sc)
	if got.NumRows() != 0 {
		t.Fatal("no rows should match")
	}
	if sc.RowGroupsPruned == 0 {
		t.Fatal("bloom filter should have pruned the row group")
	}
}

func TestPredicateResultsMatchPostFilter(t *testing.T) {
	// Property-style check: pushdown scan == full scan + filter, across
	// several operators and both ablation modes.
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 8000, WriterOptions{RowGroupRows: 1500, PageRows: 200, Dictionary: true, Compression: true, BloomFilters: true})
	fr, _ := OpenFile(path)
	defer fr.Close()

	full := func() *arrow.RecordBatch {
		sc, err := fr.Scan(ScanOptions{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		return scanAll(t, sc)
	}()

	rng := rand.New(rand.NewSource(7))
	ops := []compute.CmpOp{compute.Eq, compute.Neq, compute.Lt, compute.LtEq, compute.Gt, compute.GtEq}
	for trial := 0; trial < 20; trial++ {
		var pred *cmpPredicate
		switch trial % 3 {
		case 0:
			pred = &cmpPredicate{col: 0, op: ops[rng.Intn(len(ops))], lit: arrow.Int64Scalar(rng.Int63n(9000))}
		case 1:
			pred = &cmpPredicate{col: 1, op: ops[rng.Intn(len(ops))], lit: arrow.StringScalar(fmt.Sprintf("name-%02d", rng.Intn(99)))}
		case 2:
			pred = &cmpPredicate{col: 2, op: ops[rng.Intn(len(ops))], lit: arrow.Float64Scalar(float64(rng.Intn(4000)))}
		}
		for _, ablate := range []ScanOptions{
			{Predicate: pred, Limit: -1},
			{Predicate: pred, Limit: -1, DisablePruning: true},
			{Predicate: pred, Limit: -1, DisableLateMaterialization: true},
		} {
			sc, err := fr.Scan(ablate)
			if err != nil {
				t.Fatal(err)
			}
			got := scanAll(t, sc)
			// Reference: evaluate on the full batch.
			mask, err := compute.CompareScalar(pred.op, full.Column(pred.col), pred.lit)
			if err != nil {
				t.Fatal(err)
			}
			want, err := compute.FilterBatch(full, mask)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumRows() != want.NumRows() {
				t.Fatalf("trial %d opts %+v: got %d rows want %d", trial, ablate, got.NumRows(), want.NumRows())
			}
			for r := 0; r < got.NumRows(); r += 101 {
				for c := 0; c < got.NumCols(); c++ {
					if !got.Column(c).GetScalar(r).Equal(want.Column(c).GetScalar(r)) {
						t.Fatalf("trial %d row %d col %d mismatch", trial, r, c)
					}
				}
			}
		}
	}
}

func TestChunkAndFileStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 3000, WriterOptions{RowGroupRows: 1000})
	fr, _ := OpenFile(path)
	defer fr.Close()
	cs := fr.Metadata().ColumnChunkStats(1, 0) // second row group, id column
	if !cs.HasMinMax || cs.Min.AsInt64() != 1000 || cs.Max.AsInt64() != 1999 {
		t.Fatalf("chunk stats wrong: %+v", cs)
	}
	fileStats := fr.Metadata().ColumnStatsForFile(0)
	if fileStats.Min.AsInt64() != 0 || fileStats.Max.AsInt64() != 2999 || fileStats.NumRows != 3000 {
		t.Fatalf("file stats wrong: %+v", fileStats)
	}
	nameStats := fr.Metadata().ColumnStatsForFile(1)
	if nameStats.NullCount == 0 {
		t.Fatal("null count missing")
	}
}

func TestDictionaryEncodingActuallyUsed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 5000, WriterOptions{RowGroupRows: 5000, Dictionary: true})
	fr, _ := OpenFile(path)
	defer fr.Close()
	chunk := fr.Metadata().footer.RowGroups[0].Columns[1]
	if chunk.Dict == nil {
		t.Fatal("low-cardinality string column should be dictionary encoded")
	}
	if chunk.Pages[0].Encoding != EncodingDict {
		t.Fatal("pages should use dict encoding")
	}
	// High-cardinality column must not be dict encoded: id as string.
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < 5000; i++ {
		sb.Append(fmt.Sprintf("unique-%d", i))
	}
	schema := arrow.NewSchema(arrow.NewField("u", arrow.String, false))
	path2 := filepath.Join(t.TempDir(), "u.gpq")
	if err := WriteFile(path2, schema, []*arrow.RecordBatch{arrow.NewRecordBatch(schema, []arrow.Array{sb.Finish()})}, WriterOptions{Dictionary: true}); err != nil {
		t.Fatal(err)
	}
	fr2, _ := OpenFile(path2)
	defer fr2.Close()
	if fr2.Metadata().footer.RowGroups[0].Columns[0].Dict != nil {
		t.Fatal("high-cardinality column should not be dict encoded")
	}
}

func TestRowSelectionAlgebra(t *testing.T) {
	a := FromRanges([]RowRange{{0, 10}, {20, 30}})
	b := FromRanges([]RowRange{{5, 25}})
	got := a.Intersect(b)
	want := []RowRange{{5, 10}, {20, 25}}
	if len(got.Ranges()) != 2 || got.Ranges()[0] != want[0] || got.Ranges()[1] != want[1] {
		t.Fatalf("intersect = %+v", got.Ranges())
	}
	if got.Count() != 10 {
		t.Fatalf("count = %d", got.Count())
	}
	if !a.Overlaps(25, 40) || a.Overlaps(10, 20) {
		t.Fatal("overlaps wrong")
	}
	// FromRanges merges adjacent/overlapping and drops empties.
	m := FromRanges([]RowRange{{0, 5}, {5, 8}, {9, 9}, {10, 12}})
	if len(m.Ranges()) != 2 || m.Ranges()[0] != (RowRange{0, 8}) {
		t.Fatalf("merge = %+v", m.Ranges())
	}
	if SelectAll(0).IsEmpty() != true || SelectNone().Count() != 0 {
		t.Fatal("empty selections wrong")
	}
}

func TestCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	// Truncated file.
	bad := filepath.Join(dir, "bad.gpq")
	if err := os.WriteFile(bad, []byte("GP"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Fatal("truncated file must fail")
	}
	// Wrong magic.
	bad2 := filepath.Join(dir, "bad2.gpq")
	if err := os.WriteFile(bad2, bytes.Repeat([]byte("x"), 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad2); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Valid header, corrupt footer length.
	good := filepath.Join(dir, "good.gpq")
	writeTestFile(t, good, 100, WriterOptions{})
	data, _ := os.ReadFile(good)
	data[len(data)-8] = 0xFF
	data[len(data)-7] = 0xFF
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(good); err == nil {
		t.Fatal("corrupt footer must fail")
	}
}

func TestStatsKeepCompare(t *testing.T) {
	stats := ColumnStats{
		Min: arrow.Int64Scalar(10), Max: arrow.Int64Scalar(20),
		HasMinMax: true, NumRows: 100,
	}
	cases := []struct {
		op   string
		lit  int64
		keep bool
	}{
		{"=", 15, true}, {"=", 5, false}, {"=", 25, false}, {"=", 10, true}, {"=", 20, true},
		{"<", 10, false}, {"<", 11, true},
		{"<=", 9, false}, {"<=", 10, true},
		{">", 20, false}, {">", 19, true},
		{">=", 21, false}, {">=", 20, true},
		{"!=", 15, true},
	}
	for _, c := range cases {
		if got := StatsKeepCompare(c.op, stats, arrow.Int64Scalar(c.lit)); got != c.keep {
			t.Fatalf("%s %d: got %v want %v", c.op, c.lit, got, c.keep)
		}
	}
	// != prunes only constant chunks.
	constStats := ColumnStats{Min: arrow.Int64Scalar(5), Max: arrow.Int64Scalar(5), HasMinMax: true}
	if StatsKeepCompare("!=", constStats, arrow.Int64Scalar(5)) {
		t.Fatal("!= on constant chunk should prune")
	}
	// Missing stats always keep.
	if !StatsKeepCompare("=", ColumnStats{}, arrow.Int64Scalar(1)) {
		t.Fatal("missing stats must keep")
	}
}

func TestBloomFilterBasics(t *testing.T) {
	bf := newBloomFilter(1000)
	vals := arrow.NewStringFromSlice([]string{"a", "b", "c"})
	bf.insertArray(vals)
	for _, v := range []string{"a", "b", "c"} {
		if !bf.MightContain(arrow.StringScalar(v)) {
			t.Fatalf("false negative for %q", v)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if bf.MightContain(arrow.StringScalar(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 100 {
		t.Fatalf("false positive rate too high: %d/1000", fp)
	}
	// Nulls are never "contained" decisively.
	if !bf.MightContain(arrow.NullScalar(arrow.String)) {
		t.Fatal("null probe must fail open")
	}
}

func TestWriterRejectsSchemaMismatch(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, testSchema(), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	other := arrow.NewSchema(arrow.NewField("x", arrow.Int64, false))
	err = fw.Write(arrow.NewRecordBatch(other, []arrow.Array{arrow.NewInt64([]int64{1})}))
	if err == nil {
		t.Fatal("schema mismatch must fail")
	}
}

func TestKVMetadata(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	opts := DefaultWriterOptions()
	opts.KV = map[string]string{"sort_order": "id ASC"}
	writeTestFile(t, path, 100, opts)
	fr, _ := OpenFile(path)
	defer fr.Close()
	if fr.Metadata().KV["sort_order"] != "id ASC" {
		t.Fatal("kv metadata lost")
	}
}
