package parquet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

// FileReader reads GPQ files with projection, predicate, and limit
// pushdown.
type FileReader struct {
	r    io.ReaderAt
	size int64
	meta *FileMetadata
	// closer is set when the reader owns the underlying file.
	closer io.Closer
	// fingerprint identifies the file version (path|size|mtime) for the
	// shared page cache and the mmap registry; empty for readers over
	// arbitrary io.ReaderAt sources.
	fingerprint string
	// mm is the shared memory mapping when the mmap fast path is active;
	// readRange then returns zero-copy views instead of heap copies.
	mm *Mapping
}

// fileFingerprint identifies a file version for cache keying: a changed
// file gets a new fingerprint, so stale cache entries are never served.
func fileFingerprint(path string, st os.FileInfo) string {
	return fmt.Sprintf("%s|%d|%d", path, st.Size(), st.ModTime().UnixNano())
}

// openMapped opens path, preferring the shared mmap fast path: when the
// file maps, the descriptor is closed immediately (the mapping outlives
// it) and the returned reader serves zero-copy reads. Otherwise the
// reader owns the descriptor as before.
func openMapped(path string) (r io.ReaderAt, size int64, fp string, mm *Mapping, closer io.Closer, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, "", nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, "", nil, nil, err
	}
	size = st.Size()
	fp = fileFingerprint(path, st)
	if m := mapFile(f, size, fp); m != nil {
		f.Close()
		return m, size, fp, m, nil, nil
	}
	return f, size, fp, nil, f, nil
}

// OpenFile opens a GPQ file from the filesystem, using a shared memory
// mapping for reads when the platform supports it.
func OpenFile(path string) (*FileReader, error) {
	r, size, fp, mm, closer, err := openMapped(path)
	if err != nil {
		return nil, err
	}
	meta, err := ReadMetadata(r, size)
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	return &FileReader{r: r, size: size, meta: meta, closer: closer, fingerprint: fp, mm: mm}, nil
}

// OpenFileWithMeta opens a GPQ file reusing an already-parsed footer
// (e.g. the catalog's metadata cache), skipping the footer decode that
// OpenFile performs. The metadata must describe the file at path.
func OpenFileWithMeta(path string, meta *FileMetadata) (*FileReader, error) {
	r, size, fp, mm, closer, err := openMapped(path)
	if err != nil {
		return nil, err
	}
	return &FileReader{r: r, size: size, meta: meta, closer: closer, fingerprint: fp, mm: mm}, nil
}

// NewReader reads a GPQ file from any random-access source.
func NewReader(r io.ReaderAt, size int64) (*FileReader, error) {
	meta, err := ReadMetadata(r, size)
	if err != nil {
		return nil, err
	}
	return &FileReader{r: r, size: size, meta: meta}, nil
}

// ReadMetadata decodes only the footer of a GPQ file; catalogs use this to
// plan without touching data pages.
func ReadMetadata(r io.ReaderAt, size int64) (*FileMetadata, error) {
	if size < int64(len(Magic))*2+4 {
		return nil, errFormat
	}
	head := make([]byte, 4)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, err
	}
	if string(head) != Magic {
		return nil, fmt.Errorf("parquet: bad magic %q", head)
	}
	tail := make([]byte, 8)
	if _, err := r.ReadAt(tail, size-8); err != nil {
		return nil, err
	}
	if string(tail[4:]) != Magic {
		return nil, fmt.Errorf("parquet: bad trailing magic")
	}
	footerLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if footerLen <= 0 || footerLen > size-8 {
		return nil, errFormat
	}
	footerJSON := make([]byte, footerLen)
	if _, err := r.ReadAt(footerJSON, size-8-footerLen); err != nil {
		return nil, err
	}
	var footer fileFooter
	if err := json.Unmarshal(footerJSON, &footer); err != nil {
		return nil, fmt.Errorf("parquet: decoding footer: %w", err)
	}
	schema, err := arrow.UnmarshalSchema(footer.Schema)
	if err != nil {
		return nil, err
	}
	return &FileMetadata{Schema: schema, NumRows: footer.NumRows, KV: footer.KV, footer: &footer}, nil
}

// Metadata returns the decoded file metadata.
func (fr *FileReader) Metadata() *FileMetadata { return fr.meta }

// Schema returns the file schema.
func (fr *FileReader) Schema() *arrow.Schema { return fr.meta.Schema }

// NumRows returns the total row count.
func (fr *FileReader) NumRows() int64 { return fr.meta.NumRows }

// Fingerprint identifies the file version backing this reader for cache
// keying; empty when the reader wraps an arbitrary io.ReaderAt.
func (fr *FileReader) Fingerprint() string { return fr.fingerprint }

// Close releases the underlying file when the reader owns it. Mapped
// readers hold no descriptor, so Close is a no-op for them (the mapping
// is process-lifetime by design — see Mapping).
func (fr *FileReader) Close() error {
	if fr.closer != nil {
		return fr.closer.Close()
	}
	return nil
}

// readRange returns length bytes at off. Mapped readers return an
// immutable zero-copy view of the mapping; otherwise a fresh copy.
func (fr *FileReader) readRange(off, length int64) ([]byte, error) {
	if fr.mm != nil {
		return fr.mm.Bytes(off, length)
	}
	buf := make([]byte, length)
	if _, err := fr.r.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (fr *FileReader) readPageBody(off, length, rawLen int64, codec string) ([]byte, error) {
	stored, err := fr.readRange(off, length)
	if err != nil {
		return nil, err
	}
	return decompressBody(stored, codec, rawLen)
}

// chunkDict loads and caches the dictionary page of a column chunk.
func (fr *FileReader) chunkDict(chunk *columnChunkMeta) (*arrow.StringArray, error) {
	body, err := fr.readPageBody(chunk.Dict.Offset, chunk.Dict.Len, chunk.Dict.RawLen, chunk.Dict.Codec)
	if err != nil {
		return nil, err
	}
	arr, err := decodePlainPage(body, arrow.String)
	if err != nil {
		return nil, err
	}
	return arr.(*arrow.StringArray), nil
}

// decodePage decodes one data page of a column chunk.
func (fr *FileReader) decodePage(chunk *columnChunkMeta, page *pageMeta, t *arrow.DataType, dict *arrow.StringArray) (arrow.Array, error) {
	body, err := fr.readPageBody(page.Offset, page.Len, page.RawLen, page.Codec)
	if err != nil {
		return nil, err
	}
	switch page.Encoding {
	case EncodingPlain:
		return decodePlainPage(body, t)
	case EncodingDict:
		return decodeDictIndexPage(body, dict, t)
	}
	return nil, fmt.Errorf("parquet: unknown encoding %q", page.Encoding)
}

// loadDict returns the chunk dictionary, shared through the page cache
// when one is attached (key Page=DictPage).
func (s *Scanner) loadDict(rg, col int, chunk *columnChunkMeta) (*arrow.StringArray, error) {
	if s.opts.Cache == nil || s.fr.fingerprint == "" {
		return s.fr.chunkDict(chunk)
	}
	key := PageKey{File: s.fr.fingerprint, RowGroup: rg, Col: col, Page: DictPage}
	arr, hit, err := s.opts.Cache.CachedPage(key, func() (arrow.Array, error) {
		return s.fr.chunkDict(chunk)
	})
	if err != nil {
		return nil, err
	}
	s.countCache(hit)
	return arr.(*arrow.StringArray), nil
}

// loadPage decodes one data page, shared through the page cache when one
// is attached. Cached arrays are immutable shared views.
func (s *Scanner) loadPage(rg, col, pi int, chunk *columnChunkMeta, page *pageMeta, t *arrow.DataType, dict *arrow.StringArray) (arrow.Array, error) {
	if s.opts.Cache == nil || s.fr.fingerprint == "" {
		return s.fr.decodePage(chunk, page, t, dict)
	}
	key := PageKey{File: s.fr.fingerprint, RowGroup: rg, Col: col, Page: pi}
	arr, hit, err := s.opts.Cache.CachedPage(key, func() (arrow.Array, error) {
		return s.fr.decodePage(chunk, page, t, dict)
	})
	if err != nil {
		return nil, err
	}
	s.countCache(hit)
	return arr, nil
}

func (s *Scanner) countCache(hit bool) {
	if hit {
		s.PageCacheHits++
	} else {
		s.PageCacheMisses++
	}
}

// readColumnSelection decodes the rows of (rowGroup, col) covered by sel,
// in row order, skipping pages with no selected rows. Fully-selected
// pages pass through untouched; partially-selected pages are filtered
// with a vectorized mask (cheaper than assembling per-range slices when
// the selection is fragmented).
func (s *Scanner) readColumnSelection(rg, col int, sel RowSelection) (arrow.Array, error) {
	fr := s.fr
	chunk := &fr.meta.footer.RowGroups[rg].Columns[col]
	t := fr.meta.Schema.Field(col).Type
	var dict *arrow.StringArray
	var parts []arrow.Array
	for pi := range chunk.Pages {
		page := &chunk.Pages[pi]
		start, end := page.FirstRow, page.FirstRow+page.NumRows
		pageSel := sel.IntersectRange(start, end)
		if pageSel.IsEmpty() {
			continue
		}
		if page.Encoding == EncodingDict && dict == nil {
			var err error
			if dict, err = s.loadDict(rg, col, chunk); err != nil {
				return nil, err
			}
		}
		arr, err := s.loadPage(rg, col, pi, chunk, page, t, dict)
		if err != nil {
			return nil, err
		}
		if pageSel.Count() == page.NumRows {
			parts = append(parts, arr)
			continue
		}
		n := int(page.NumRows)
		bits := arrow.NewBitmap(n)
		for _, r := range pageSel.Ranges() {
			for row := r.Start; row < r.End; row++ {
				bits.Set(int(row - start))
			}
		}
		mask := arrow.NewBool(bits, nil, n)
		filtered, err := compute.Filter(arr, mask)
		if err != nil {
			return nil, err
		}
		parts = append(parts, filtered)
	}
	if len(parts) == 0 {
		return arrow.NewBuilder(t).Finish(), nil
	}
	return compute.Concat(parts)
}

// ScanOptions configures a pushed-down scan.
type ScanOptions struct {
	// Projection lists file-schema column indexes to read; nil means all.
	Projection []int
	// Predicate is evaluated during the scan; matching rows are returned.
	Predicate Predicate
	// Limit stops the scan after this many rows; <0 means no limit.
	Limit int64
	// BatchRows sets the output batch size (default 8192).
	BatchRows int
	// RowGroups restricts the scan to these row-group indexes, scanned in
	// the order given; nil means every row group. This is the unit of
	// intra-file scan parallelism: a table provider can split one file
	// across partitions by handing each scanner a disjoint subset.
	RowGroups []int
	// Readahead is the number of row groups a background goroutine decodes
	// ahead of the consumer (I/O + decode overlap); 0 keeps the scan fully
	// synchronous.
	Readahead int
	// DisablePruning turns off row-group and page statistics pruning
	// (predicate still evaluated row-level); used by ablation benchmarks.
	DisablePruning bool
	// DisableLateMaterialization decodes all projected columns before
	// evaluating the predicate; used by ablation benchmarks.
	DisableLateMaterialization bool
	// Cache, when set, shares decoded pages across scanners through the
	// process-wide page cache (requires a reader opened from a path, which
	// carries the file fingerprint the cache keys on).
	Cache *PageCache
}

// groupResult carries one decoded row group through the readahead pipeline.
type groupResult struct {
	batches []*arrow.RecordBatch
	err     error
}

// Scanner incrementally produces filtered, projected batches.
type Scanner struct {
	fr        *FileReader
	opts      ScanOptions
	schema    *arrow.Schema
	remaining int64
	groups    []int
	gi        int
	queue     []*arrow.RecordBatch

	// Readahead pipeline state (nil/unused when opts.Readahead == 0).
	// The producer goroutine owns queue/remaining/counters; the consumer
	// side only touches pending and the channel.
	startOnce sync.Once
	closeOnce sync.Once
	out       chan groupResult
	quit      chan struct{}
	pending   []*arrow.RecordBatch

	// Pruning counters for EXPLAIN-style introspection and tests. With
	// readahead enabled they are only safe to read after Next returned
	// io.EOF (the pipeline channel close publishes them).
	RowGroupsPruned  int
	RowGroupsMatched int
	PagesSkipped     int
	// BloomSkipped counts row groups rejected by a Bloom filter probe (a
	// subset of RowGroupsPruned).
	BloomSkipped int
	// PageCacheHits / PageCacheMisses count shared-page-cache lookups by
	// this scanner (hits include joining another scanner's in-flight
	// decode). Zero when no cache is attached.
	PageCacheHits   int
	PageCacheMisses int
}

// Scan starts a pushed-down scan over the file.
func (fr *FileReader) Scan(opts ScanOptions) (*Scanner, error) {
	if opts.BatchRows <= 0 {
		opts.BatchRows = 8192
	}
	if opts.Projection == nil {
		opts.Projection = make([]int, fr.meta.Schema.NumFields())
		for i := range opts.Projection {
			opts.Projection[i] = i
		}
	}
	for _, c := range opts.Projection {
		if c < 0 || c >= fr.meta.Schema.NumFields() {
			return nil, fmt.Errorf("parquet: projection column %d out of range", c)
		}
	}
	groups := opts.RowGroups
	if groups == nil {
		groups = make([]int, fr.meta.NumRowGroups())
		for i := range groups {
			groups[i] = i
		}
	} else {
		for _, rg := range groups {
			if rg < 0 || rg >= fr.meta.NumRowGroups() {
				return nil, fmt.Errorf("parquet: row group %d out of range", rg)
			}
		}
	}
	limit := opts.Limit
	if limit < 0 {
		limit = -1
	}
	return &Scanner{
		fr:        fr,
		opts:      opts,
		schema:    fr.meta.Schema.Select(opts.Projection),
		remaining: limit,
		groups:    groups,
	}, nil
}

// Schema returns the projected output schema.
func (s *Scanner) Schema() *arrow.Schema { return s.schema }

// Next returns the next batch, or (nil, io.EOF) at end of scan.
func (s *Scanner) Next() (*arrow.RecordBatch, error) {
	if s.opts.Readahead > 0 {
		return s.nextPipelined()
	}
	for {
		if len(s.queue) > 0 {
			b := s.queue[0]
			s.queue = s.queue[1:]
			return b, nil
		}
		if s.remaining == 0 || s.gi >= len(s.groups) {
			return nil, io.EOF
		}
		rg := s.groups[s.gi]
		s.gi++
		if err := s.scanRowGroup(rg); err != nil {
			return nil, err
		}
	}
}

// Close stops the readahead goroutine (if any). Abandoning a pipelined
// scan without Close leaks the producer; Close is safe to call multiple
// times and on synchronous scanners.
func (s *Scanner) Close() {
	s.closeOnce.Do(func() {
		if s.quit != nil {
			close(s.quit)
		}
	})
	if s.out != nil {
		// Drain so a producer blocked on send observes quit promptly.
		for range s.out {
		}
	}
}

// nextPipelined serves batches from the background decode pipeline.
func (s *Scanner) nextPipelined() (*arrow.RecordBatch, error) {
	s.startOnce.Do(s.startPrefetch)
	for {
		if len(s.pending) > 0 {
			b := s.pending[0]
			s.pending = s.pending[1:]
			return b, nil
		}
		res, ok := <-s.out
		if !ok {
			return nil, io.EOF
		}
		if res.err != nil {
			return nil, res.err
		}
		s.pending = res.batches
	}
}

// startPrefetch launches the readahead producer: it decodes row groups
// sequentially (preserving limit accounting and pruning order) and parks
// up to opts.Readahead decoded groups in a bounded channel while the
// consumer drains the current one.
func (s *Scanner) startPrefetch() {
	depth := s.opts.Readahead
	if depth > 2 {
		depth = 2 // double-buffering captures nearly all of the overlap
	}
	s.quit = make(chan struct{})
	s.out = make(chan groupResult, depth)
	go func() {
		defer close(s.out)
		for _, rg := range s.groups {
			if s.remaining == 0 {
				return
			}
			select {
			case <-s.quit:
				return
			default:
			}
			err := s.scanRowGroup(rg)
			res := groupResult{batches: s.queue, err: err}
			s.queue = nil
			if err == nil && len(res.batches) == 0 {
				continue // pruned or fully filtered: nothing to publish
			}
			select {
			case s.out <- res:
			case <-s.quit:
				return
			}
			if err != nil {
				return
			}
		}
	}()
}

// keepRowGroup applies chunk statistics and Bloom filter pruning.
func (s *Scanner) keepRowGroup(rg int) bool {
	pred := s.opts.Predicate
	for _, col := range pred.Columns() {
		if !pred.KeepColumnStats(col, s.fr.meta.ColumnChunkStats(rg, col)) {
			return false
		}
	}
	for _, probe := range pred.EqProbes() {
		chunk := &s.fr.meta.footer.RowGroups[rg].Columns[probe.Col]
		if chunk.Bloom == nil {
			continue
		}
		bits, err := s.fr.readRange(chunk.Bloom.Offset, chunk.Bloom.Len)
		if err != nil {
			return true // fail open
		}
		bf := &bloomFilter{bits: bits, k: chunk.Bloom.NumHashes}
		if !bf.MightContain(probe.Value) {
			s.BloomSkipped++
			return false
		}
	}
	return true
}

// candidateSelection intersects per-column page-statistics selections for
// the predicate columns.
func (s *Scanner) candidateSelection(rg int, numRows int64) RowSelection {
	pred := s.opts.Predicate
	sel := SelectAll(numRows)
	for _, col := range pred.Columns() {
		chunk := &s.fr.meta.footer.RowGroups[rg].Columns[col]
		t := s.fr.meta.Schema.Field(col).Type
		var ranges []RowRange
		for pi := range chunk.Pages {
			page := &chunk.Pages[pi]
			if pred.KeepColumnStats(col, page.Stats.toStats(t)) {
				ranges = append(ranges, RowRange{page.FirstRow, page.FirstRow + page.NumRows})
			} else {
				s.PagesSkipped++
			}
		}
		sel = sel.Intersect(FromRanges(ranges))
		if sel.IsEmpty() {
			break
		}
	}
	return sel
}

// maskToSelection converts a boolean mask aligned to sel's rows into an
// exact row selection. The scan works byte-at-a-time over the packed
// (value AND validity) bits so all-false bytes skip 8 rows at once — this
// runs once per predicate scan over every candidate row.
func maskToSelection(sel RowSelection, mask *arrow.BoolArray) RowSelection {
	n := mask.Len()
	vals := mask.ValuesBitmap()
	valid := mask.Validity()
	// effective[i] = value AND valid.
	nb := (n + 7) / 8
	effective := make([]byte, nb)
	for i := 0; i < nb; i++ {
		b := byte(0)
		if i < len(vals) {
			b = vals[i]
		}
		if valid != nil {
			if i < len(valid) {
				b &= valid[i]
			} else {
				b = 0
			}
		}
		effective[i] = b
	}
	var out []RowRange
	push := func(row int64) {
		if k := len(out); k > 0 && out[k-1].End == row {
			out[k-1].End = row + 1
		} else {
			out = append(out, RowRange{row, row + 1})
		}
	}
	i := 0
	for _, r := range sel.Ranges() {
		row := r.Start
		for row < r.End {
			// Byte-aligned fast paths.
			if i%8 == 0 && r.End-row >= 8 {
				b := effective[i/8]
				switch b {
				case 0x00:
					i += 8
					row += 8
					continue
				case 0xFF:
					if k := len(out); k > 0 && out[k-1].End == row {
						out[k-1].End = row + 8
					} else {
						out = append(out, RowRange{row, row + 8})
					}
					i += 8
					row += 8
					continue
				}
			}
			if effective[i/8]&(1<<(i%8)) != 0 {
				push(row)
			}
			i++
			row++
		}
	}
	return RowSelection{ranges: out}
}

func (s *Scanner) scanRowGroup(rg int) error {
	numRows := s.fr.meta.RowGroupRows(rg)
	pred := s.opts.Predicate

	sel := SelectAll(numRows)
	if pred != nil {
		if !s.opts.DisablePruning {
			if !s.keepRowGroup(rg) {
				s.RowGroupsPruned++
				return nil
			}
			sel = s.candidateSelection(rg, numRows)
			if sel.IsEmpty() {
				s.RowGroupsPruned++
				return nil
			}
		}
		if s.opts.DisableLateMaterialization {
			// Ablation mode: decode every projected column in full, then
			// filter — the strategy late materialization avoids.
			return s.scanRowGroupEager(rg, numRows)
		}
		// Decode predicate columns within the candidate selection and
		// evaluate to get the exact row selection.
		predCols := make(map[int]arrow.Array, len(pred.Columns()))
		for _, col := range pred.Columns() {
			arr, err := s.readColumnSelection(rg, col, sel)
			if err != nil {
				return err
			}
			predCols[col] = arr
		}
		mask, err := pred.Evaluate(predCols, int(sel.Count()))
		if err != nil {
			return err
		}
		sel = maskToSelection(sel, mask)
		if sel.IsEmpty() {
			return nil
		}
	}
	s.RowGroupsMatched++

	// Apply any remaining limit by truncating the selection.
	if s.remaining >= 0 && sel.Count() > s.remaining {
		var kept []RowRange
		left := s.remaining
		for _, r := range sel.Ranges() {
			if left <= 0 {
				break
			}
			take := minI64(r.End-r.Start, left)
			kept = append(kept, RowRange{r.Start, r.Start + take})
			left -= take
		}
		sel = RowSelection{ranges: kept}
	}

	cols := make([]arrow.Array, len(s.opts.Projection))
	for i, col := range s.opts.Projection {
		arr, err := s.readColumnSelection(rg, col, sel)
		if err != nil {
			return err
		}
		cols[i] = arr
	}
	total := int(sel.Count())
	if s.remaining > 0 {
		s.remaining -= int64(total)
	}
	batch := arrow.NewRecordBatchWithRows(s.schema, cols, total)
	for off := 0; off < total; off += s.opts.BatchRows {
		n := s.opts.BatchRows
		if off+n > total {
			n = total - off
		}
		s.queue = append(s.queue, batch.Slice(off, n))
	}
	return nil
}

// scanRowGroupEager decodes every projected column of a row group fully,
// evaluates the predicate afterwards, and filters — the late
// materialization ablation baseline.
func (s *Scanner) scanRowGroupEager(rg int, numRows int64) error {
	all := SelectAll(numRows)
	pred := s.opts.Predicate
	predCols := make(map[int]arrow.Array, len(pred.Columns()))
	for _, col := range pred.Columns() {
		arr, err := s.readColumnSelection(rg, col, all)
		if err != nil {
			return err
		}
		predCols[col] = arr
	}
	cols := make([]arrow.Array, len(s.opts.Projection))
	for i, col := range s.opts.Projection {
		if arr, ok := predCols[col]; ok {
			cols[i] = arr
			continue
		}
		arr, err := s.readColumnSelection(rg, col, all)
		if err != nil {
			return err
		}
		cols[i] = arr
	}
	mask, err := pred.Evaluate(predCols, int(numRows))
	if err != nil {
		return err
	}
	batch := arrow.NewRecordBatchWithRows(s.schema, cols, int(numRows))
	filtered, err := compute.FilterBatch(batch, compute.CoalesceBoolToFalse(mask))
	if err != nil {
		return err
	}
	if filtered.NumRows() == 0 {
		return nil
	}
	s.RowGroupsMatched++
	total := filtered.NumRows()
	if s.remaining >= 0 && int64(total) > s.remaining {
		filtered = filtered.Slice(0, int(s.remaining))
		total = filtered.NumRows()
	}
	if s.remaining > 0 {
		s.remaining -= int64(total)
	}
	for off := 0; off < total; off += s.opts.BatchRows {
		n := s.opts.BatchRows
		if off+n > total {
			n = total - off
		}
		s.queue = append(s.queue, filtered.Slice(off, n))
	}
	return nil
}
