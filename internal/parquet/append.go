package parquet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"gofusion/internal/arrow"
)

// AppendFile appends batches to an existing GPQ file in place: the old
// footer is overwritten with new row groups continuing the file's data
// section, and a footer carrying the combined row-group list is written
// after them. Readers opened before the append keep working — old row
// groups' pages are byte-identical at their old offsets — while new opens
// see the grown file (and a rotated size/mtime fingerprint, so mmap
// registries and page caches key the new contents separately). The file's
// declared sort order, if any, is dropped: appended rows need not extend
// it. Appending zero rows is a no-op that leaves the file untouched.
func AppendFile(path string, batches []*arrow.RecordBatch, opts WriterOptions) error {
	rows := 0
	for _, b := range batches {
		rows += b.NumRows()
	}
	if rows == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	err = appendTo(f, batches, opts)
	cerr := f.Close()
	if err != nil {
		return err
	}
	return cerr
}

func appendTo(f *os.File, batches []*arrow.RecordBatch, opts WriterOptions) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	meta, err := ReadMetadata(f, size)
	if err != nil {
		return err
	}
	for _, b := range batches {
		if !b.Schema().Equal(meta.Schema) {
			return fmt.Errorf("parquet: append schema %s does not match file schema %s",
				b.Schema(), meta.Schema)
		}
	}
	var tail [8]byte
	if _, err := f.ReadAt(tail[:], size-8); err != nil {
		return err
	}
	footerLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	dataEnd := size - 8 - footerLen
	if dataEnd < int64(len(Magic)) {
		return errFormat
	}
	if _, err := f.Seek(dataEnd, 0); err != nil {
		return err
	}

	opts = opts.withDefaults()
	// Resume the writer exactly where the data section ended, carrying the
	// existing row-group list forward so Close writes the combined footer.
	fw := &FileWriter{
		w:      bufio.NewWriterSize(f, 1<<20),
		offset: dataEnd,
		schema: meta.Schema,
		opts:   opts,
		footer: *meta.footer,
	}
	if fw.footer.KV != nil {
		kv := make(map[string]string, len(fw.footer.KV))
		for k, v := range fw.footer.KV {
			if k == "sort_order" {
				continue
			}
			kv[k] = v
		}
		fw.footer.KV = kv
	}
	for _, b := range batches {
		if err := fw.Write(b); err != nil {
			return err
		}
	}
	if err := fw.Close(); err != nil {
		return err
	}
	return f.Sync()
}
