//go:build !unix

package parquet

import (
	"fmt"
	"os"
)

// Mapping is unavailable on this platform; readers keep the io.ReaderAt
// path. The type exists so platform-independent code can hold *Mapping.
type Mapping struct{}

func (m *Mapping) Size() int64 { return 0 }

func (m *Mapping) ReadAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("parquet: mmap unsupported on this platform")
}

func (m *Mapping) Bytes(off, n int64) ([]byte, error) {
	return nil, fmt.Errorf("parquet: mmap unsupported on this platform")
}

func mmapSupported() bool { return false }

func mapFile(f *os.File, size int64, fingerprint string) *Mapping { return nil }
