package parquet

import (
	"gofusion/internal/arrow"
	"gofusion/internal/memory"
)

// PageKey identifies one decoded page of one file version. File is the
// reader's content fingerprint (path|size|mtime), so an overwritten file
// keys new entries and stale ones age out of the LRU untouched.
type PageKey struct {
	File     string
	RowGroup int
	Col      int
	// Page is the page index within the column chunk; DictPage (-1)
	// addresses the chunk's dictionary page.
	Page int
}

// DictPage is the PageKey.Page value for a column chunk's dictionary.
const DictPage = -1

// PageCache is the process-wide cache of decoded pages: a byte-budget,
// memory-pool-charged LRU of immutable arrow arrays shared across every
// scanner (and session) that reads the same file version. Concurrent
// decodes of one page collapse into a single load (singleflight), so the
// morsel and static scan paths deduplicate in-flight work.
//
// Cached arrays are shared views: consumers must never mutate their
// buffers, and anything derived by filtering/concatenation is freshly
// allocated so eviction cannot invalidate downstream batches.
type PageCache struct {
	lru *memory.SizedLRU[PageKey, arrow.Array]
}

// NewPageCache returns a page cache bounded to maxBytes. When pool is
// non-nil every resident byte is charged to it, so cached pages compete
// with running operators and evict under memory pressure.
func NewPageCache(maxBytes int64, pool memory.Pool) *PageCache {
	return &PageCache{lru: memory.NewSizedLRU[PageKey, arrow.Array](maxBytes, pool, "page-cache")}
}

// CachedPage returns the shared decoded array for key, running load on a
// miss. The hit result reports whether this caller's load was skipped
// (resident entry or joined in-flight decode). The returned array is an
// immutable shared view owned by the cache: callers may read it and wrap
// it in batches, but must not mutate its buffers or assume it stays
// resident.
func (pc *PageCache) CachedPage(key PageKey, load func() (arrow.Array, error)) (arrow.Array, bool, error) {
	return pc.lru.GetOrLoad(key, func() (arrow.Array, int64, error) {
		arr, err := load()
		if err != nil {
			return nil, 0, err
		}
		return arr, arrow.ArraySize(arr), nil
	})
}

// Stats returns the cache's cumulative counters and current residency.
func (pc *PageCache) Stats() memory.SizedStats { return pc.lru.Stats() }

// Clear drops all resident pages (tests and invalidation).
func (pc *PageCache) Clear() { pc.lru.Clear() }

// Close drops resident pages and frees the pool reservation.
func (pc *PageCache) Close() { pc.lru.Close() }
