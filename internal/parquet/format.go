// Package parquet implements GPQ, a simplified but real columnar file
// format standing in for Apache Parquet. A GPQ file contains row groups;
// each row group contains one column chunk per field; each chunk contains
// data pages (plain or dictionary encoded, optionally flate-compressed)
// plus min/max/null-count statistics at page and chunk granularity, and an
// optional split-block Bloom filter. The reader implements projection,
// predicate and limit pushdown with page-level late materialization
// (paper Section 6.8).
//
// File layout:
//
//	"GPQ1" | page data ... | footer JSON | footer length (4B LE) | "GPQ1"
package parquet

import (
	"encoding/json"
	"fmt"
	"math"

	"gofusion/internal/arrow"
)

// Magic is the leading and trailing file marker.
const Magic = "GPQ1"

// Encodings for data pages.
const (
	EncodingPlain = "plain"
	EncodingDict  = "dict"
)

// Codecs for page compression.
const (
	CodecNone  = ""
	CodecFlate = "flate"
)

// statsValue is a JSON-friendly variant holding a typed min or max value.
type statsValue struct {
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
	B *bool    `json:"b,omitempty"`
}

func statsValueOf(s arrow.Scalar) *statsValue {
	if s.Null {
		return nil
	}
	switch s.Type.ID {
	case arrow.FLOAT32, arrow.FLOAT64:
		f := s.AsFloat64()
		if math.IsNaN(f) {
			return nil
		}
		return &statsValue{F: &f}
	case arrow.STRING, arrow.BINARY:
		v := s.AsString()
		// Truncate long stats values; min stays a valid lower bound and max
		// is widened by bumping the last byte.
		if len(v) > 64 {
			v = v[:64]
		}
		return &statsValue{S: &v}
	case arrow.BOOL:
		b := s.AsBool()
		return &statsValue{B: &b}
	default:
		i := s.AsInt64()
		return &statsValue{I: &i}
	}
}

func (v *statsValue) toScalar(t *arrow.DataType) arrow.Scalar {
	if v == nil {
		return arrow.NullScalar(t)
	}
	switch {
	case v.I != nil:
		switch t.ID {
		case arrow.INT8:
			return arrow.NewScalar(t, int8(*v.I))
		case arrow.INT16:
			return arrow.NewScalar(t, int16(*v.I))
		case arrow.INT32, arrow.DATE32:
			return arrow.NewScalar(t, int32(*v.I))
		case arrow.UINT8:
			return arrow.NewScalar(t, uint8(*v.I))
		case arrow.UINT16:
			return arrow.NewScalar(t, uint16(*v.I))
		case arrow.UINT32:
			return arrow.NewScalar(t, uint32(*v.I))
		case arrow.UINT64:
			return arrow.NewScalar(t, uint64(*v.I))
		default:
			return arrow.NewScalar(t, *v.I)
		}
	case v.F != nil:
		if t.ID == arrow.FLOAT32 {
			return arrow.NewScalar(t, float32(*v.F))
		}
		return arrow.NewScalar(t, *v.F)
	case v.S != nil:
		return arrow.NewScalar(t, *v.S)
	case v.B != nil:
		return arrow.NewScalar(t, *v.B)
	}
	return arrow.NullScalar(t)
}

// ColumnStats summarizes the values in a page or column chunk, used for
// zone-map style pruning. Min/Max are inclusive bounds; a truncated string
// max is widened so the bound stays valid.
type ColumnStats struct {
	Min       arrow.Scalar
	Max       arrow.Scalar
	HasMinMax bool
	NullCount int64
	NumRows   int64
}

type statsMeta struct {
	Min       *statsValue `json:"min,omitempty"`
	Max       *statsValue `json:"max,omitempty"`
	NullCount int64       `json:"nulls"`
	NumRows   int64       `json:"rows"`
}

func (m statsMeta) toStats(t *arrow.DataType) ColumnStats {
	cs := ColumnStats{NullCount: m.NullCount, NumRows: m.NumRows}
	if m.Min != nil && m.Max != nil {
		cs.Min = m.Min.toScalar(t)
		cs.Max = m.Max.toScalar(t)
		cs.HasMinMax = true
	} else {
		cs.Min = arrow.NullScalar(t)
		cs.Max = arrow.NullScalar(t)
	}
	return cs
}

type pageMeta struct {
	Offset   int64     `json:"off"`
	Len      int64     `json:"len"`
	NumRows  int64     `json:"rows"`
	FirstRow int64     `json:"first"` // row index within the row group
	Encoding string    `json:"enc"`
	Codec    string    `json:"codec,omitempty"`
	RawLen   int64     `json:"raw"`
	Stats    statsMeta `json:"stats"`
}

type dictMeta struct {
	Offset    int64  `json:"off"`
	Len       int64  `json:"len"`
	NumValues int64  `json:"n"`
	Codec     string `json:"codec,omitempty"`
	RawLen    int64  `json:"raw"`
}

type bloomMeta struct {
	Offset    int64 `json:"off"`
	Len       int64 `json:"len"`
	NumHashes int   `json:"k"`
}

type columnChunkMeta struct {
	Pages []pageMeta `json:"pages"`
	Dict  *dictMeta  `json:"dict,omitempty"`
	Bloom *bloomMeta `json:"bloom,omitempty"`
	Stats statsMeta  `json:"stats"`
}

type rowGroupMeta struct {
	NumRows int64             `json:"rows"`
	Columns []columnChunkMeta `json:"cols"`
}

type fileFooter struct {
	Schema    json.RawMessage   `json:"schema"`
	NumRows   int64             `json:"rows"`
	RowGroups []rowGroupMeta    `json:"groups"`
	KV        map[string]string `json:"kv,omitempty"`
	Version   int               `json:"v"`
}

// FileMetadata is the decoded footer of a GPQ file, exposed so catalogs can
// cache it and plan from statistics without re-opening files.
type FileMetadata struct {
	Schema  *arrow.Schema
	NumRows int64
	KV      map[string]string
	footer  *fileFooter
}

// NumRowGroups returns the number of row groups.
func (m *FileMetadata) NumRowGroups() int { return len(m.footer.RowGroups) }

// RowGroupRows returns the number of rows in row group i.
func (m *FileMetadata) RowGroupRows(i int) int64 { return m.footer.RowGroups[i].NumRows }

// ColumnChunkStats returns the chunk-level statistics for (rowGroup, col).
func (m *FileMetadata) ColumnChunkStats(rg, col int) ColumnStats {
	t := m.Schema.Field(col).Type
	return m.footer.RowGroups[rg].Columns[col].Stats.toStats(t)
}

// ColumnStatsForFile aggregates chunk statistics across all row groups.
func (m *FileMetadata) ColumnStatsForFile(col int) ColumnStats {
	t := m.Schema.Field(col).Type
	agg := ColumnStats{Min: arrow.NullScalar(t), Max: arrow.NullScalar(t)}
	for rg := range m.footer.RowGroups {
		cs := m.ColumnChunkStats(rg, col)
		agg.NullCount += cs.NullCount
		agg.NumRows += cs.NumRows
		if cs.HasMinMax {
			if !agg.HasMinMax {
				agg.Min, agg.Max, agg.HasMinMax = cs.Min, cs.Max, true
			} else {
				if scalarLess(cs.Min, agg.Min) {
					agg.Min = cs.Min
				}
				if scalarLess(agg.Max, cs.Max) {
					agg.Max = cs.Max
				}
			}
		}
	}
	return agg
}

func scalarLess(a, b arrow.Scalar) bool {
	if a.Null || b.Null {
		return false
	}
	switch a.Type.ID {
	case arrow.FLOAT32, arrow.FLOAT64:
		return a.AsFloat64() < b.AsFloat64()
	case arrow.STRING, arrow.BINARY:
		return a.AsString() < b.AsString()
	case arrow.BOOL:
		return !a.AsBool() && b.AsBool()
	default:
		return a.AsInt64() < b.AsInt64()
	}
}

var errFormat = fmt.Errorf("parquet: malformed GPQ file")
