package parquet

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"gofusion/internal/arrow"
)

// Page body layouts (before optional compression):
//
//	numeric plain: u32 n | u32 validLen | valid | raw values
//	string plain:  u32 n | u32 validLen | valid | offsets (n+1)*4 | u32 dataLen | data
//	bool plain:    u32 n | u32 validLen | valid | value bitmap
//	dict indexes:  u32 n | u32 validLen | valid | u32 indexes n*4
//
// A chunk's dictionary page is encoded as a string-plain page.

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func encodePlainPage(a arrow.Array) ([]byte, error) {
	n := a.Len()
	body := appendU32(nil, uint32(n))
	valid := a.Validity()
	body = appendU32(body, uint32(len(valid)))
	body = append(body, valid...)
	switch arr := a.(type) {
	case *arrow.Int8Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Int16Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Int32Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Int64Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Uint8Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Uint16Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Uint32Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Uint64Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Float32Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.Float64Array:
		return append(body, arrow.NumericBytes(arr.Values())...), nil
	case *arrow.BoolArray:
		vb := arr.ValuesBitmap()
		full := arrow.NewBitmap(n)
		copy(full, vb)
		return append(body, full...), nil
	case *arrow.StringArray:
		// Re-base offsets so sliced arrays encode correctly.
		offs := arr.Offsets()
		base := offs[0]
		for i := 0; i <= n; i++ {
			body = appendU32(body, uint32(offs[i]-base))
		}
		data := arr.Data()[base:offs[n]]
		body = appendU32(body, uint32(len(data)))
		return append(body, data...), nil
	default:
		return nil, fmt.Errorf("parquet: unsupported column type %s", a.DataType())
	}
}

func decodePlainPage(body []byte, t *arrow.DataType) (arrow.Array, error) {
	if len(body) < 8 {
		return nil, errFormat
	}
	n := int(binary.LittleEndian.Uint32(body))
	validLen := int(binary.LittleEndian.Uint32(body[4:]))
	pos := 8
	if pos+validLen > len(body) {
		return nil, errFormat
	}
	var valid arrow.Bitmap
	if validLen > 0 {
		valid = arrow.Bitmap(body[pos : pos+validLen])
	}
	pos += validLen
	rest := body[pos:]
	switch t.ID {
	case arrow.INT8:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[int8](rest[:n]), valid), nil
	case arrow.INT16:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[int16](rest[:n*2]), valid), nil
	case arrow.INT32, arrow.DATE32:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[int32](rest[:n*4]), valid), nil
	case arrow.INT64, arrow.TIMESTAMP, arrow.DECIMAL:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[int64](rest[:n*8]), valid), nil
	case arrow.UINT8:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[uint8](rest[:n]), valid), nil
	case arrow.UINT16:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[uint16](rest[:n*2]), valid), nil
	case arrow.UINT32:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[uint32](rest[:n*4]), valid), nil
	case arrow.UINT64:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[uint64](rest[:n*8]), valid), nil
	case arrow.FLOAT32:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[float32](rest[:n*4]), valid), nil
	case arrow.FLOAT64:
		return arrow.NewNumeric(t, arrow.BytesToNumeric[float64](rest[:n*8]), valid), nil
	case arrow.BOOL:
		nb := (n + 7) / 8
		if len(rest) < nb {
			return nil, errFormat
		}
		return arrow.NewBool(arrow.Bitmap(rest[:nb]), valid, n), nil
	case arrow.STRING, arrow.BINARY:
		offLen := (n + 1) * 4
		if len(rest) < offLen+4 {
			return nil, errFormat
		}
		offsets := arrow.BytesToNumeric[int32](rest[:offLen])
		dataLen := int(binary.LittleEndian.Uint32(rest[offLen:]))
		data := rest[offLen+4 : offLen+4+dataLen]
		return arrow.NewString(t, offsets, data, valid), nil
	}
	return nil, fmt.Errorf("parquet: unsupported page type %s", t)
}

func encodeDictIndexPage(indexes []uint32, valid arrow.Bitmap) []byte {
	body := appendU32(nil, uint32(len(indexes)))
	body = appendU32(body, uint32(len(valid)))
	body = append(body, valid...)
	return append(body, arrow.NumericBytes(indexes)...)
}

func decodeDictIndexPage(body []byte, dict *arrow.StringArray, t *arrow.DataType) (arrow.Array, error) {
	if len(body) < 8 {
		return nil, errFormat
	}
	n := int(binary.LittleEndian.Uint32(body))
	validLen := int(binary.LittleEndian.Uint32(body[4:]))
	pos := 8
	var valid arrow.Bitmap
	if validLen > 0 {
		valid = arrow.Bitmap(body[pos : pos+validLen])
	}
	pos += validLen
	if len(body) < pos+n*4 {
		return nil, errFormat
	}
	indexes := arrow.BytesToNumeric[uint32](body[pos : pos+n*4])
	// Materialize strings from the dictionary.
	offsets := make([]int32, n+1)
	total := 0
	for i, idx := range indexes {
		if valid == nil || valid.Get(i) {
			total += len(dict.ValueBytes(int(idx)))
		}
		_ = i
	}
	data := make([]byte, 0, total)
	for i, idx := range indexes {
		if valid == nil || valid.Get(i) {
			data = append(data, dict.ValueBytes(int(idx))...)
		}
		offsets[i+1] = int32(len(data))
	}
	return arrow.NewString(t, offsets, data, valid), nil
}

// compressBody applies the codec, returning the stored bytes and the codec
// actually used (compression is skipped when it does not help).
func compressBody(body []byte, codec string) ([]byte, string, error) {
	if codec != CodecFlate || len(body) < 128 {
		return body, CodecNone, nil
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, "", err
	}
	if _, err := w.Write(body); err != nil {
		return nil, "", err
	}
	if err := w.Close(); err != nil {
		return nil, "", err
	}
	if buf.Len() >= len(body) {
		return body, CodecNone, nil
	}
	return buf.Bytes(), CodecFlate, nil
}

func decompressBody(stored []byte, codec string, rawLen int64) ([]byte, error) {
	switch codec {
	case CodecNone:
		return stored, nil
	case CodecFlate:
		r := flate.NewReader(bytes.NewReader(stored))
		out := make([]byte, 0, rawLen)
		buf := bytes.NewBuffer(out)
		if _, err := io.Copy(buf, r); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("parquet: unknown codec %q", codec)
}
