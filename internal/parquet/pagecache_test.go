package parquet

import (
	"io"
	"path/filepath"
	"sync"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/memory"
)

// distinctPages counts the page-cache keys a full scan of the file can
// touch: every data page of every column chunk, plus one dictionary page
// per dict-encoded chunk.
func distinctPages(meta *FileMetadata) int {
	n := 0
	for _, rg := range meta.footer.RowGroups {
		for _, ch := range rg.Columns {
			n += len(ch.Pages)
			if ch.Dict != nil {
				n++
			}
		}
	}
	return n
}

// TestPageCacheConcurrentExactlyOnce hammers one file with concurrent
// cold scanners sharing a cache and asserts singleflight collapsed every
// decode: loader executions equal the number of distinct pages, not
// scanners x pages.
func TestPageCacheConcurrentExactlyOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 6000, WriterOptions{RowGroupRows: 2000, PageRows: 500, Dictionary: true})

	pc := NewPageCache(64<<20, nil)
	defer pc.Close()

	fr0, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr0.Close()
	want := distinctPages(fr0.Metadata())
	ref := func() *arrow.RecordBatch {
		sc, err := fr0.Scan(ScanOptions{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		return scanAll(t, sc)
	}()

	const scanners = 8
	var wg sync.WaitGroup
	got := make([]*arrow.RecordBatch, scanners)
	errs := make([]error, scanners)
	for i := 0; i < scanners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fr, err := OpenFile(path)
			if err != nil {
				errs[i] = err
				return
			}
			defer fr.Close()
			sc, err := fr.Scan(ScanOptions{Limit: -1, Cache: pc})
			if err != nil {
				errs[i] = err
				return
			}
			var batches []*arrow.RecordBatch
			for {
				b, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs[i] = err
					return
				}
				batches = append(batches, b)
			}
			out, err := compute.ConcatBatches(sc.Schema(), batches)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = out
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("scanner %d: %v", i, err)
		}
	}
	st := pc.Stats()
	if int(st.Loads) != want {
		t.Fatalf("loader ran %d times, want exactly %d (one per distinct page)", st.Loads, want)
	}
	if st.Hits == 0 {
		t.Fatal("concurrent scanners recorded zero cache hits")
	}
	for i, b := range got {
		if b.NumRows() != ref.NumRows() {
			t.Fatalf("scanner %d: rows %d != %d", i, b.NumRows(), ref.NumRows())
		}
		for c := 0; c < ref.NumCols(); c++ {
			for r := 0; r < ref.NumRows(); r += 53 {
				if !b.Column(c).GetScalar(r).Equal(ref.Column(c).GetScalar(r)) {
					t.Fatalf("scanner %d: col %d row %d differs from uncached scan", i, c, r)
				}
			}
		}
	}
}

// TestPageCacheEvictionTightBudget scans through a cache far smaller than
// the file under a bounded pool: entries must cycle (evictions observed),
// residency must respect both budgets, results must stay correct, and
// Close must return every charged byte.
func TestPageCacheEvictionTightBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 8000, WriterOptions{RowGroupRows: 1000, PageRows: 250})

	pool := memory.NewGreedyPool(32 << 10)
	pc := NewPageCache(16<<10, pool)

	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	var want *arrow.RecordBatch
	for pass := 0; pass < 3; pass++ {
		sc, err := fr.Scan(ScanOptions{Limit: -1, Cache: pc})
		if err != nil {
			t.Fatal(err)
		}
		got := scanAll(t, sc)
		if want == nil {
			want = got
			continue
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("pass %d: rows %d != %d", pass, got.NumRows(), want.NumRows())
		}
		for c := 0; c < want.NumCols(); c++ {
			for r := 0; r < want.NumRows(); r += 97 {
				if !got.Column(c).GetScalar(r).Equal(want.Column(c).GetScalar(r)) {
					t.Fatalf("pass %d: col %d row %d drifted under eviction", pass, c, r)
				}
			}
		}
	}
	st := pc.Stats()
	if st.Evictions == 0 {
		t.Fatal("tight budget produced zero evictions")
	}
	if st.Bytes > 16<<10 {
		t.Fatalf("resident %d bytes exceed 16KiB budget", st.Bytes)
	}
	if pool.Reserved() != st.Bytes {
		t.Fatalf("pool charge %d != resident bytes %d", pool.Reserved(), st.Bytes)
	}
	pc.Close()
	if pool.Reserved() != 0 {
		t.Fatalf("Close leaked %d pool bytes", pool.Reserved())
	}
}

// TestMmapFallbackEquivalence compares a (possibly) mmap-backed scan with
// the forced io.ReaderAt path: identical rows, and on unix the default
// open actually maps the file.
func TestMmapFallbackEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 5000, WriterOptions{RowGroupRows: 2000, PageRows: 500, Compression: true, Dictionary: true})

	frA, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer frA.Close()
	scA, err := frA.Scan(ScanOptions{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	a := scanAll(t, scA)
	if mmapSupported() && frA.mm == nil {
		t.Fatal("mmap supported but file was not mapped")
	}

	t.Setenv("GOFUSION_NO_MMAP", "1")
	frB, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer frB.Close()
	if frB.mm != nil {
		t.Fatal("GOFUSION_NO_MMAP set but file was mapped")
	}
	scB, err := frB.Scan(ScanOptions{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	b := scanAll(t, scB)

	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows: mmap %d vs readerat %d", a.NumRows(), b.NumRows())
	}
	for c := 0; c < a.NumCols(); c++ {
		for r := 0; r < a.NumRows(); r++ {
			if !a.Column(c).GetScalar(r).Equal(b.Column(c).GetScalar(r)) {
				t.Fatalf("col %d row %d: mmap and readerat scans disagree", c, r)
			}
		}
	}
}

// TestFingerprintChangesOnRewrite ensures the page-cache key namespace
// rotates when a file is rewritten: a stale cache entry can never serve
// bytes from the old file contents.
func TestFingerprintChangesOnRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.gpq")
	writeTestFile(t, path, 1000, DefaultWriterOptions())
	fr1, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := fr1.Fingerprint()
	fr1.Close()

	writeTestFile(t, path, 1500, DefaultWriterOptions())
	fr2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr2.Close()
	if fp1 == fr2.Fingerprint() {
		t.Fatalf("fingerprint %q did not change after rewrite", fp1)
	}
}
