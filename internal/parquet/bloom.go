package parquet

import (
	"encoding/binary"
	"math"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

// bloomFilter is a classic Bloom filter over 64-bit value hashes with k
// probe positions derived by double hashing. It answers "definitely not
// present" / "maybe present" for equality predicates, letting the reader
// skip whole row groups.
type bloomFilter struct {
	bits []byte
	k    int
}

// newBloomFilter sizes a filter for the expected number of distinct values
// at roughly a 1% false positive rate (10 bits/value, 7 hashes), capped at
// 256 KiB.
func newBloomFilter(expected int64) *bloomFilter {
	bits := expected * 10
	if bits < 512 {
		bits = 512
	}
	const maxBits = 256 * 1024 * 8
	if bits > maxBits {
		bits = maxBits
	}
	return &bloomFilter{bits: make([]byte, (bits+7)/8), k: 7}
}

func (b *bloomFilter) nbits() uint64 { return uint64(len(b.bits)) * 8 }

func (b *bloomFilter) insertHash(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)
	n := b.nbits()
	for i := 0; i < b.k; i++ {
		pos := uint64(h1+uint32(i)*h2) % n
		b.bits[pos>>3] |= 1 << (pos & 7)
	}
}

func (b *bloomFilter) mightContainHash(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)
	n := b.nbits()
	for i := 0; i < b.k; i++ {
		pos := uint64(h1+uint32(i)*h2) % n
		if b.bits[pos>>3]&(1<<(pos&7)) == 0 {
			return false
		}
	}
	return true
}

// hashScalarForBloom hashes a scalar consistently with hashArrayForBloom.
func hashScalarForBloom(s arrow.Scalar) (uint64, bool) {
	if s.Null {
		return 0, false
	}
	switch s.Type.ID {
	case arrow.STRING:
		return compute.HashBytes([]byte(s.AsString())), true
	case arrow.BINARY:
		return compute.HashBytes(s.Val.([]byte)), true
	case arrow.BOOL:
		if s.AsBool() {
			return compute.HashBytes([]byte{1}), true
		}
		return compute.HashBytes([]byte{0}), true
	case arrow.FLOAT32, arrow.FLOAT64:
		var buf [8]byte
		f := s.AsFloat64()
		if f == 0 {
			f = 0
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(int64FromFloatBits(f)))
		return compute.HashBytes(buf[:]), true
	default:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(s.AsInt64()))
		return compute.HashBytes(buf[:]), true
	}
}

func int64FromFloatBits(f float64) int64 {
	// Consistent with hashScalarForBloom callers only; bit pattern identity.
	return int64(math.Float64bits(f))
}

// insertArray adds every valid value of the array.
func (b *bloomFilter) insertArray(a arrow.Array) {
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) {
			continue
		}
		if h, ok := hashScalarForBloom(a.GetScalar(i)); ok {
			b.insertHash(h)
		}
	}
}

// MightContain reports whether the value may be present.
func (b *bloomFilter) MightContain(s arrow.Scalar) bool {
	h, ok := hashScalarForBloom(s)
	if !ok {
		return true
	}
	return b.mightContainHash(h)
}
