package parquet

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

func benchFile(b *testing.B, compression bool) string {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.gpq")
	schema := arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("name", arrow.String, false),
		arrow.NewField("score", arrow.Float64, false),
	)
	var batches []*arrow.RecordBatch
	for start := 0; start < 100_000; start += 10_000 {
		ib := arrow.NewNumericBuilder[int64](arrow.Int64)
		sb := arrow.NewStringBuilder(arrow.String)
		fb := arrow.NewNumericBuilder[float64](arrow.Float64)
		for i := start; i < start+10_000; i++ {
			ib.Append(int64(i))
			sb.Append("name-" + arrow.Int64Scalar(int64(i%97)).String())
			fb.Append(float64(i) / 3)
		}
		batches = append(batches, arrow.NewRecordBatch(schema, []arrow.Array{ib.Finish(), sb.Finish(), fb.Finish()}))
	}
	opts := DefaultWriterOptions()
	opts.Compression = compression
	if err := WriteFile(path, schema, batches, opts); err != nil {
		b.Fatal(err)
	}
	return path
}

func scanAllBench(b *testing.B, path string, opts ScanOptions) int64 {
	b.Helper()
	fr, err := OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer fr.Close()
	sc, err := fr.Scan(opts)
	if err != nil {
		b.Fatal(err)
	}
	var rows int64
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			return rows
		}
		if err != nil {
			b.Fatal(err)
		}
		rows += int64(batch.NumRows())
	}
}

func BenchmarkFullScanUncompressed(b *testing.B) {
	path := benchFile(b, false)
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllBench(b, path, ScanOptions{Limit: -1})
	}
}

func BenchmarkFullScanCompressed(b *testing.B) {
	path := benchFile(b, true)
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllBench(b, path, ScanOptions{Limit: -1})
	}
}

func BenchmarkSelectiveScanWithPruning(b *testing.B) {
	path := benchFile(b, true)
	pred := &cmpPredicateBench{col: 0, lit: arrow.Int64Scalar(99_000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllBench(b, path, ScanOptions{Predicate: pred, Limit: -1})
	}
}

func BenchmarkSelectiveScanNoPruning(b *testing.B) {
	path := benchFile(b, true)
	pred := &cmpPredicateBench{col: 0, lit: arrow.Int64Scalar(99_000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllBench(b, path, ScanOptions{Predicate: pred, Limit: -1,
			DisablePruning: true, DisableLateMaterialization: true})
	}
}

// cmpPredicateBench is `col > lit`.
type cmpPredicateBench struct {
	col int
	lit arrow.Scalar
}

func (p *cmpPredicateBench) Columns() []int { return []int{p.col} }
func (p *cmpPredicateBench) Evaluate(cols map[int]arrow.Array, _ int) (*arrow.BoolArray, error) {
	return compute.CompareScalar(compute.Gt, cols[p.col], p.lit)
}
func (p *cmpPredicateBench) KeepColumnStats(_ int, stats ColumnStats) bool {
	return StatsKeepCompare(">", stats, p.lit)
}
func (p *cmpPredicateBench) EqProbes() []EqProbe { return nil }
