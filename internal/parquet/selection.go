package parquet

// RowRange is a half-open range [Start, End) of row indexes within a row
// group.
type RowRange struct {
	Start int64
	End   int64
}

// RowSelection is a sorted, non-overlapping set of row ranges. It is the
// currency of late materialization: predicate evaluation on early columns
// narrows the selection, and later columns decode only selected pages.
type RowSelection struct {
	ranges []RowRange
}

// SelectAll returns a selection covering [0, n).
func SelectAll(n int64) RowSelection {
	if n == 0 {
		return RowSelection{}
	}
	return RowSelection{ranges: []RowRange{{0, n}}}
}

// SelectNone returns an empty selection.
func SelectNone() RowSelection { return RowSelection{} }

// FromRanges builds a selection from sorted non-overlapping ranges.
func FromRanges(ranges []RowRange) RowSelection {
	out := make([]RowRange, 0, len(ranges))
	for _, r := range ranges {
		if r.End <= r.Start {
			continue
		}
		if n := len(out); n > 0 && out[n-1].End >= r.Start {
			if r.End > out[n-1].End {
				out[n-1].End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return RowSelection{ranges: out}
}

// Ranges returns the underlying ranges; callers must not mutate them.
func (s RowSelection) Ranges() []RowRange { return s.ranges }

// IsEmpty reports whether no rows are selected.
func (s RowSelection) IsEmpty() bool { return len(s.ranges) == 0 }

// Count returns the number of selected rows.
func (s RowSelection) Count() int64 {
	var n int64
	for _, r := range s.ranges {
		n += r.End - r.Start
	}
	return n
}

// Intersect returns rows present in both selections.
func (s RowSelection) Intersect(o RowSelection) RowSelection {
	var out []RowRange
	i, j := 0, 0
	for i < len(s.ranges) && j < len(o.ranges) {
		a, b := s.ranges[i], o.ranges[j]
		start := maxI64(a.Start, b.Start)
		end := minI64(a.End, b.End)
		if start < end {
			out = append(out, RowRange{start, end})
		}
		if a.End < b.End {
			i++
		} else {
			j++
		}
	}
	return RowSelection{ranges: out}
}

// IntersectRange returns the part of the selection inside [start, end).
func (s RowSelection) IntersectRange(start, end int64) RowSelection {
	return s.Intersect(RowSelection{ranges: []RowRange{{start, end}}})
}

// Overlaps reports whether any selected row falls in [start, end).
func (s RowSelection) Overlaps(start, end int64) bool {
	for _, r := range s.ranges {
		if r.Start >= end {
			return false
		}
		if r.End > start {
			return true
		}
	}
	return false
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
