//go:build unix

package parquet

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

// mmapSupported gates the mmap fast path; GOFUSION_NO_MMAP=1 forces the
// io.ReaderAt fallback (useful for A/B testing and constrained mounts).
func mmapSupported() bool { return os.Getenv("GOFUSION_NO_MMAP") == "" }

// Mapping is a read-only memory mapping of one GPQ file version. Decoded
// arrays alias mapping bytes zero-copy (uncompressed page bodies feed
// unsafe slice casts directly), so a mapping is NEVER unmapped: dropping
// it would leave live arrays pointing at unmapped memory. Mappings are
// process-lifetime, deduplicated per file version in a registry; a file
// that changes on disk gets a fresh mapping under its new fingerprint and
// the old one is simply abandoned to the OS (clean pages cost no RSS once
// evicted by the kernel).
type Mapping struct {
	data []byte
}

// Size returns the mapped length in bytes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// ReadAt implements io.ReaderAt over the mapping (copies).
func (m *Mapping) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return 0, fmt.Errorf("parquet: mmap read at %d outside mapping of %d bytes", off, len(m.data))
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("parquet: mmap short read at %d", off)
	}
	return n, nil
}

// Bytes returns a zero-copy view of [off, off+n). The returned slice
// aliases the mapping and must be treated as immutable.
func (m *Mapping) Bytes(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return nil, fmt.Errorf("parquet: mmap range [%d,%d) outside mapping of %d bytes", off, off+n, len(m.data))
	}
	return m.data[off : off+n : off+n], nil
}

// mmapRegistry deduplicates mappings per file version so N readers of one
// file share one mapping (and so remapping churn cannot accumulate).
var mmapRegistry = struct {
	sync.Mutex
	byFingerprint map[string]*Mapping
}{byFingerprint: map[string]*Mapping{}}

// mapFile returns the shared read-only mapping for the open file, keyed
// by its content fingerprint. Returns nil when mmap is unavailable or
// disabled; callers then keep the io.ReaderAt path.
func mapFile(f *os.File, size int64, fingerprint string) *Mapping {
	if !mmapSupported() || size <= 0 {
		return nil
	}
	mmapRegistry.Lock()
	defer mmapRegistry.Unlock()
	if m, ok := mmapRegistry.byFingerprint[fingerprint]; ok {
		return m
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	m := &Mapping{data: data}
	mmapRegistry.byFingerprint[fingerprint] = m
	return m
}
