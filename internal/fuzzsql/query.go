package fuzzsql

import (
	"strconv"
	"strings"
)

// Join describes an optional second table in the FROM clause.
type Join struct {
	Left  bool // LEFT OUTER vs INNER
	Table string
	On    Expr
}

// Query is a structured SQL query: the generator produces these and the
// shrinker edits them, so every transformation stays syntactically valid.
// Rendering is deterministic (SQL() is a pure function of the fields).
type Query struct {
	Distinct bool
	// Items are the select-list expressions, rendered as `expr AS cN`.
	Items []Expr
	From  string
	Join  *Join
	Where Expr
	// GroupBy keys; when set, Items must be group keys or aggregates.
	GroupBy []Expr
	Having  Expr
	// Order sorts by every output ordinal (a total order over output rows
	// up to full-row duplicates, making LIMIT deterministic under the
	// normalized comparison). OrderDesc gives each ordinal's direction.
	Order     bool
	OrderDesc []bool
	Limit     int64 // <0 means no LIMIT
}

// SQL renders the query.
func (q *Query) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, e := range q.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.SQL())
		sb.WriteString(" AS c")
		sb.WriteString(strconv.Itoa(i))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.From)
	if q.Join != nil {
		if q.Join.Left {
			sb.WriteString(" LEFT JOIN ")
		} else {
			sb.WriteString(" JOIN ")
		}
		sb.WriteString(q.Join.Table)
		sb.WriteString(" ON ")
		sb.WriteString(q.Join.On.SQL())
	}
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.SQL())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.SQL())
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(q.Having.SQL())
	}
	if q.Order {
		sb.WriteString(" ORDER BY ")
		for i := range q.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(strconv.Itoa(i + 1))
			if i < len(q.OrderDesc) && q.OrderDesc[i] {
				sb.WriteString(" DESC")
			} else {
				sb.WriteString(" ASC")
			}
		}
	}
	if q.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(q.Limit, 10))
	}
	return sb.String()
}

// NumClauses counts top-level clauses (SELECT and FROM plus each optional
// clause); the shrinker's quality target is expressed in these units.
func (q *Query) NumClauses() int {
	n := 2 // SELECT + FROM
	if q.Join != nil {
		n++
	}
	if q.Where != nil {
		n++
	}
	if len(q.GroupBy) > 0 {
		n++
	}
	if q.Having != nil {
		n++
	}
	if q.Order {
		n++
	}
	if q.Limit >= 0 {
		n++
	}
	return n
}

// Clone returns a copy whose clause slices can be edited independently.
// Expr trees are immutable, so sharing them is safe.
func (q *Query) Clone() *Query {
	out := *q
	out.Items = append([]Expr(nil), q.Items...)
	out.GroupBy = append([]Expr(nil), q.GroupBy...)
	out.OrderDesc = append([]bool(nil), q.OrderDesc...)
	if q.Join != nil {
		j := *q.Join
		out.Join = &j
	}
	return &out
}
