package fuzzsql

import (
	"strings"
	"testing"
	"time"
)

// TestGeneratorDeterministic: the same seed must yield the same query
// stream (repro-ability of any reported failure depends on this).
func TestGeneratorDeterministic(t *testing.T) {
	ds := NewDataset(42)
	g1, g2 := NewGen(42, ds), NewGen(42, ds)
	for i := 0; i < 50; i++ {
		a, b := g1.Query().SQL(), g2.Query().SQL()
		if a != b {
			t.Fatalf("query %d diverged:\n%s\n%s", i, a, b)
		}
	}
}

// TestFixedSeedMatrix is the deterministic harness entry required by the
// acceptance criteria: >=300 random queries across the full config matrix
// and every storage format must agree with the baseline, with zero
// panics.
func TestFixedSeedMatrix(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	rep, err := Run(Options{
		Seed: 1,
		N:    n,
		Dir:  t.TempDir(),
		Log:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("differential failures:\n%s", rep.Summary())
	}
	if rep.Queries < n {
		t.Fatalf("ran %d queries, want >= %d", rep.Queries, n)
	}
	// Every successful query also passed exec.CheckPlanMetrics (wired into
	// Harness.Check). The memory-limited config must additionally have
	// exercised the spill paths somewhere in the run; a zero here means
	// spill instrumentation (or spilling itself) silently broke.
	if rep.SpillCounts["p4-spill"] == 0 {
		t.Fatalf("p4-spill config recorded no operator spills across %d queries", rep.Queries)
	}
}

// TestShrinkerReducesInjectedMismatch injects a synthetic failure
// predicate (any query whose SQL contains an avg aggregate "fails") into
// the shrinker and checks that a fully-loaded query reduces to a <=3
// clause repro that still trips the predicate.
func TestShrinkerReducesInjectedMismatch(t *testing.T) {
	full := &Query{
		Distinct: false,
		Items: []Expr{
			&Col{Name: "b", T: TInt},
			&Agg{Fn: "avg", Arg: &Col{Name: "c", T: TFloat}},
			&Agg{Fn: "sum", Arg: &Bin{Op: "*", L: &Col{Name: "a", T: TInt}, R: &Lit{T: TInt, Int: 3}, T: TInt}},
		},
		From: "t1",
		Join: &Join{Left: true, Table: "t2",
			On: &Bin{Op: "=", L: &Col{Name: "a", T: TInt}, R: &Col{Name: "x", T: TInt}, T: TBool}},
		Where: &Bin{Op: ">", L: &Col{Name: "e", T: TInt}, R: &Lit{T: TInt, Int: 40}, T: TBool},
		GroupBy: []Expr{
			&Col{Name: "b", T: TInt},
		},
		Having: &Bin{Op: ">", L: &Agg{Fn: "count", Star: true}, R: &Lit{T: TInt, Int: 0}, T: TBool},
		Order:  true, OrderDesc: []bool{false, true, false},
		Limit: 7,
	}
	if full.NumClauses() != 8 {
		t.Fatalf("test setup: expected a fully-loaded query, got %d clauses", full.NumClauses())
	}
	stillFails := func(q *Query) bool { return strings.Contains(q.SQL(), "avg(") }
	if !stillFails(full) {
		t.Fatal("test setup: predicate must hold on the full query")
	}
	min := Shrink(full, stillFails)
	if !stillFails(min) {
		t.Fatalf("shrunk query no longer fails: %s", min.SQL())
	}
	if got := min.NumClauses(); got > 3 {
		t.Fatalf("shrinker left %d clauses (want <= 3): %s", got, min.SQL())
	}
	t.Logf("shrunk %d -> %d clauses: %s", full.NumClauses(), min.NumClauses(), min.SQL())
}

// TestShrinkerOnRealHarness wires the shrinker to the real differential
// predicate with a query that does NOT fail: Shrink must return quickly
// with the original query intact (no reduction can "fail harder" than
// passing).
func TestShrinkerOnRealHarness(t *testing.T) {
	ds := NewDataset(7)
	h, err := NewHarness(ds, t.TempDir(), []EngineConfig{DefaultConfigs()[0]}, []Format{Mem})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	q := NewGen(7, ds).Query()
	if fail := h.CheckQuery(q); fail != nil {
		t.Fatalf("unexpected failure: %s", fail)
	}
}

// TestReproSource checks the emitted repro embeds the failing query and
// the pinned seed.
func TestReproSource(t *testing.T) {
	f := &Failure{SQL: "SELECT 1 AS c0 FROM t1", Format: GPQ, Config: "p4-spill", Detail: "x"}
	src := ReproSource(99, f)
	for _, want := range []string{"SELECT 1 AS c0 FROM t1", "NewDataset(99)", `"p4-spill"`, `Format("gpq")`} {
		if !strings.Contains(src, want) {
			t.Fatalf("repro source missing %q:\n%s", want, src)
		}
	}
}

// TestRunDuration: a duration-bounded run terminates.
func TestRunDuration(t *testing.T) {
	rep, err := Run(Options{Seed: 3, Duration: 2 * time.Second, N: 40, Dir: t.TempDir(),
		Formats: []Format{Mem}, Configs: DefaultConfigs()[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("no queries ran")
	}
}
