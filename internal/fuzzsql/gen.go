package fuzzsql

import (
	"math/rand"
)

// Gen is the seeded random query generator. Queries are biased toward the
// engine features most recently rewritten (multi-column group keys, join
// probes, range predicates that exercise row-group pruning) and obey the
// determinism rules that make differential comparison sound:
//
//   - division only by non-zero literals (no data-dependent errors);
//   - LIMIT only together with an ORDER BY over every output ordinal, so
//     the kept prefix is unique up to full-row duplicates;
//   - no volatile or session-dependent functions.
type Gen struct {
	rng *rand.Rand
	ds  *Dataset
}

// NewGen creates a generator over the dataset's schema.
func NewGen(seed int64, ds *Dataset) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), ds: ds}
}

// pct rolls an n% chance.
func (g *Gen) pct(n int) bool { return g.rng.Intn(100) < n }

// scope returns the columns visible to the query being generated.
func (g *Gen) scope(join bool) []Column {
	cols := append([]Column(nil), g.ds.Tables[0].Cols...)
	if join {
		cols = append(cols, g.ds.Tables[1].Cols...)
	}
	return cols
}

// colsOf filters a scope by type.
func colsOf(scope []Column, t ValType) []Column {
	var out []Column
	for _, c := range scope {
		if c.T == t {
			out = append(out, c)
		}
	}
	return out
}

// Query generates one random query.
func (g *Gen) Query() *Query {
	q := &Query{From: g.ds.Tables[0].Name, Limit: -1}
	join := g.pct(40)
	if join {
		q.Join = g.genJoin()
	}
	scope := g.scope(join)
	if g.pct(55) {
		g.genGrouped(q, scope)
	} else {
		g.genScalar(q, scope)
	}
	if g.pct(65) {
		q.Where = g.genExpr(scope, TBool, 2)
	}
	if g.pct(70) {
		q.Order = true
		q.OrderDesc = make([]bool, len(q.Items))
		for i := range q.OrderDesc {
			q.OrderDesc[i] = g.pct(50)
		}
		if g.pct(45) {
			q.Limit = int64(1 + g.rng.Intn(20))
		}
	}
	return q
}

// genJoin builds the join clause: an equi-join on the int key columns,
// sometimes with an extra pushed-down conjunct.
func (g *Gen) genJoin() *Join {
	on := Expr(&Bin{Op: "=", L: &Col{Name: "a", T: TInt}, R: &Col{Name: "x", T: TInt}, T: TBool})
	if g.pct(30) {
		extra := g.genExpr(g.scope(true), TBool, 1)
		on = &Bin{Op: "AND", L: on, R: extra, T: TBool}
	}
	return &Join{Left: g.pct(40), Table: g.ds.Tables[1].Name, On: on}
}

// genScalar fills a plain (non-aggregating) select list.
func (g *Gen) genScalar(q *Query, scope []Column) {
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		t := []ValType{TInt, TInt, TFloat, TStr, TDate, TBool}[g.rng.Intn(6)]
		q.Items = append(q.Items, g.genExpr(scope, t, 2))
	}
	q.Distinct = g.pct(15)
}

// genGrouped fills GROUP BY keys, aggregate items, and HAVING.
func (g *Gen) genGrouped(q *Query, scope []Column) {
	nKeys := g.rng.Intn(3) // 0 = global aggregate
	for i := 0; i < nKeys; i++ {
		q.GroupBy = append(q.GroupBy, g.genGroupKey(scope))
	}
	q.Items = append([]Expr(nil), q.GroupBy...)
	nAggs := 1 + g.rng.Intn(3)
	for i := 0; i < nAggs; i++ {
		q.Items = append(q.Items, g.genAgg(scope))
	}
	if g.pct(40) {
		agg := g.genAgg(scope)
		lit := DefaultLit(agg.VType())
		if agg.VType() == TInt {
			lit = &Lit{T: TInt, Int: int64(g.rng.Intn(40) - 10)}
		}
		op := []string{"<", "<=", ">", ">=", "<>"}[g.rng.Intn(5)]
		q.Having = &Bin{Op: op, L: agg, R: lit, T: TBool}
	}
}

// genGroupKey picks a column or a small derived expression (CASE buckets,
// arithmetic bucketing) so multi-column and expression group keys both
// appear.
func (g *Gen) genGroupKey(scope []Column) Expr {
	c := scope[g.rng.Intn(len(scope))]
	col := &Col{Name: c.Name, T: c.T}
	switch {
	case g.pct(55):
		return col
	case c.T == TInt:
		return &Bin{Op: "/", L: col, R: &Lit{T: TInt, Int: int64(2 + g.rng.Intn(6))}, T: TInt}
	default:
		return &Case{
			Cond: g.genExpr(scope, TBool, 1),
			Then: DefaultLit(c.T),
			Else: col,
		}
	}
}

// genAgg builds one aggregate expression.
func (g *Gen) genAgg(scope []Column) Expr {
	switch g.rng.Intn(6) {
	case 0:
		return &Agg{Fn: "count", Star: true}
	case 1:
		c := scope[g.rng.Intn(len(scope))]
		return &Agg{Fn: "count", Arg: &Col{Name: c.Name, T: c.T}}
	case 2:
		t := []ValType{TInt, TFloat}[g.rng.Intn(2)]
		return &Agg{Fn: "avg", Arg: g.genExpr(scope, t, 1)}
	case 3:
		t := []ValType{TInt, TFloat}[g.rng.Intn(2)]
		return &Agg{Fn: "sum", Arg: g.genExpr(scope, t, 1)}
	default:
		fn := []string{"min", "max"}[g.rng.Intn(2)]
		t := []ValType{TInt, TFloat, TStr, TDate}[g.rng.Intn(4)]
		return &Agg{Fn: fn, Arg: g.genExpr(scope, t, 1)}
	}
}

// genExpr builds a random expression of the requested type with bounded
// depth.
func (g *Gen) genExpr(scope []Column, t ValType, depth int) Expr {
	if depth <= 0 {
		return g.genLeaf(scope, t)
	}
	switch t {
	case TInt, TFloat:
		switch g.rng.Intn(5) {
		case 0:
			return g.genLeaf(scope, t)
		case 1:
			op := []string{"+", "-", "*"}[g.rng.Intn(3)]
			return &Bin{Op: op, L: g.genExpr(scope, t, depth-1), R: g.genExpr(scope, t, depth-1), T: t}
		case 2:
			// Division by a non-zero literal only: data-dependent division
			// errors would make both-sides-agree comparisons vacuous.
			return &Bin{Op: "/", L: g.genExpr(scope, t, depth-1), R: g.nonZeroLit(t), T: t}
		case 3:
			return &Neg{E: g.genExpr(scope, t, depth-1)}
		default:
			return &Case{
				Cond: g.genExpr(scope, TBool, depth-1),
				Then: g.genExpr(scope, t, depth-1),
				Else: g.genExpr(scope, t, depth-1),
			}
		}
	case TStr, TDate:
		if g.pct(30) {
			return &Case{
				Cond: g.genExpr(scope, TBool, depth-1),
				Then: g.genLeaf(scope, t),
				Else: g.genLeaf(scope, t),
			}
		}
		return g.genLeaf(scope, t)
	default: // TBool
		switch g.rng.Intn(6) {
		case 0:
			op := []string{"AND", "OR"}[g.rng.Intn(2)]
			return &Bin{Op: op, L: g.genExpr(scope, TBool, depth-1), R: g.genExpr(scope, TBool, depth-1), T: TBool}
		case 1:
			return &Not{E: g.genExpr(scope, TBool, depth-1)}
		case 2:
			c := scope[g.rng.Intn(len(scope))]
			return &IsNull{E: &Col{Name: c.Name, T: c.T}, Negate: g.pct(50)}
		default:
			ct := []ValType{TInt, TInt, TFloat, TStr, TDate}[g.rng.Intn(5)]
			op := []string{"=", "<>", "<", "<=", ">", ">="}[g.rng.Intn(6)]
			return &Bin{Op: op, L: g.genExpr(scope, ct, depth-1), R: g.genLeaf(scope, ct), T: TBool}
		}
	}
}

// genLeaf returns a column of the type when one exists (70%), else a
// literal.
func (g *Gen) genLeaf(scope []Column, t ValType) Expr {
	cols := colsOf(scope, t)
	if len(cols) > 0 && g.pct(70) {
		c := cols[g.rng.Intn(len(cols))]
		return &Col{Name: c.Name, T: c.T}
	}
	return g.genLit(t)
}

func (g *Gen) genLit(t ValType) Expr {
	switch t {
	case TInt:
		return &Lit{T: TInt, Int: int64(g.rng.Intn(2*keyDomain+1) - keyDomain)}
	case TFloat:
		return &Lit{T: TFloat, Float: float64(g.rng.Intn(200)-100) + 0.5}
	case TStr:
		return &Lit{T: TStr, Str: "s_" + string(rune('0'+g.rng.Intn(10)))}
	case TDate:
		return &Lit{T: TDate, Str: dateString(epochDay + g.rng.Intn(dateRange))}
	default:
		return &Lit{T: TBool, Bool: g.pct(50)}
	}
}

func (g *Gen) nonZeroLit(t ValType) Expr {
	if t == TInt {
		v := int64(1 + g.rng.Intn(9))
		if g.pct(30) {
			v = -v
		}
		return &Lit{T: TInt, Int: v}
	}
	v := float64(1+g.rng.Intn(9)) + 0.5
	if g.pct(30) {
		v = -v
	}
	return &Lit{T: TFloat, Float: v}
}
