package fuzzsql

import (
	"context"
	"io"
	"os"
	"sync"
	"testing"

	"gofusion/internal/core"
	"gofusion/internal/exec"
	"gofusion/internal/testutil"
)

// TestChurnSoak cycles ingest -> query -> cancel against live stream
// tables and a memory-limited spilling session. Every cycle starts a
// streaming query, feeds it from a concurrent writer, cancels it
// mid-stream (before the source seals), and tears the table down. The
// test is bracketed by the goroutine-leak check; the sanitize-tagged
// TestMain additionally fails the package on any leaked reservation or
// spill file, and the spill session's pool peak must not drift across
// cycles (a growing peak means per-query state survives cancellation).
func TestChurnSoak(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()

	cycles := 25
	if testing.Short() {
		cycles = 5
	}
	ds := NewDataset(21)
	tbl := ds.Tables[0] // t1: watermark column e rises with the row index
	chunks := tableChunks(tbl, 5)
	spillDir := t.TempDir()

	// Streaming session: tail scans and watermark aggregation, always
	// cancelled mid-stream. Spill session: bounded memory-limited sort
	// whose reservation peak must stay flat cycle over cycle.
	s := core.NewSession(core.SessionConfig{TargetPartitions: 2})
	defer s.Close()
	sp := core.NewSession(core.SessionConfig{TargetPartitions: 1, MemoryLimit: 4 << 10, SpillDir: spillDir})
	defer sp.Close()

	streaming := []string{
		"SELECT e, count(*) AS c0 FROM churn GROUP BY e",
		"SELECT a, e FROM churn WHERE e >= 10",
	}
	var peaks []int64
	var spills int64
	for cycle := 0; cycle < cycles; cycle++ {
		query := streaming[cycle%len(streaming)]

		st, err := s.RegisterStream("churn", tbl.Schema, "e")
		if err != nil {
			t.Fatal(err)
		}
		df, err := s.SQL(query)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := df.Execute(context.Background())
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, c := range chunks {
				if err := st.Append(c...); err != nil {
					t.Errorf("cycle %d: append: %v", cycle, err)
					return
				}
			}
		}()
		// One batch proves the pipeline is live; Close then cancels the
		// query while the tail is still open (the source never seals).
		if _, err := qs.Next(); err == io.EOF {
			t.Fatalf("cycle %d: stream ended before any batch", cycle)
		} else if err != nil {
			t.Fatalf("cycle %d: first batch: %v", cycle, err)
		}
		qs.Close()
		wg.Wait()
		s.DeregisterTable("churn")

		// Bounded churn on the spilling session: register, sort, drop.
		if err := sp.RegisterBatches("churn_sort", tbl.Schema, tbl.Batches); err != nil {
			t.Fatal(err)
		}
		df2, err := sp.SQL("SELECT a, b, c FROM churn_sort ORDER BY c, a")
		if err != nil {
			t.Fatal(err)
		}
		_, qm, err := df2.CollectWithMetrics()
		if err != nil {
			t.Fatalf("cycle %d: sort: %v", cycle, err)
		}
		peaks = append(peaks, qm.PoolReservedPeak)
		n, _ := exec.PlanSpillStats(qm.Plan)
		spills += n
		sp.DeregisterTable("churn_sort")
	}

	for i, p := range peaks {
		if p != peaks[0] {
			t.Errorf("pool peak drifted: cycle 0 peaked at %d bytes, cycle %d at %d", peaks[0], i, p)
		}
	}
	if spills == 0 {
		t.Error("memory-limited session never spilled; the soak is not exercising spill cleanup")
	}
	// Each query's DiskManager removes the spill dir on close; a surviving
	// file (or the dir itself) means a spill outlived its query.
	if ents, err := os.ReadDir(spillDir); err == nil && len(ents) != 0 {
		t.Errorf("%d spill files leaked in %s", len(ents), spillDir)
	}
}
