package fuzzsql

import (
	"fmt"
	"os"
	"time"
)

// Options parameterizes a fuzzing run.
type Options struct {
	// Seed drives both the dataset and the query stream.
	Seed int64
	// N is the number of queries to generate (0 with Duration set means
	// unbounded).
	N int
	// Duration, when positive, stops the run at the deadline even if N
	// queries have not been generated.
	Duration time.Duration
	// Configs and Formats default to the full matrix.
	Configs []EngineConfig
	Formats []Format
	// Dir is the scratch directory for CSV/GPQ files; empty creates (and
	// removes) a temp dir.
	Dir string
	// MaxFailures stops the run after this many distinct failures
	// (default 3). Each failure is shrunk before being reported.
	MaxFailures int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// ShrunkFailure is a failure with its minimized repro.
type ShrunkFailure struct {
	Failure
	MinimalSQL string
	NumClauses int
	Repro      string
}

// Report summarizes a run.
type Report struct {
	Seed     int64
	Queries  int
	Elapsed  time.Duration
	Failures []ShrunkFailure
	// SpillCounts totals each config's operator spill events across every
	// successful query (copied from the harness at the end of the run).
	SpillCounts map[string]int64
}

// Run generates queries and checks each across the matrix, shrinking any
// failure. It returns an error only on harness setup problems; query
// disagreements are reported in Report.Failures.
func Run(opts Options) (*Report, error) {
	if len(opts.Configs) == 0 {
		opts.Configs = DefaultConfigs()
	}
	if len(opts.Formats) == 0 {
		opts.Formats = AllFormats
	}
	if opts.MaxFailures <= 0 {
		opts.MaxFailures = 3
	}
	if opts.N <= 0 && opts.Duration <= 0 {
		opts.N = 300
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "fuzzsql")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	ds := NewDataset(opts.Seed)
	h, err := NewHarness(ds, dir, opts.Configs, opts.Formats)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	gen := NewGen(opts.Seed, ds)

	start := time.Now()
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	rep := &Report{Seed: opts.Seed}
	for {
		if opts.N > 0 && rep.Queries >= opts.N {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		q := gen.Query()
		rep.Queries++
		fail := h.CheckQuery(q)
		if fail == nil {
			if rep.Queries%100 == 0 {
				logf("fuzzsql: %d queries, %d failures, %s elapsed",
					rep.Queries, len(rep.Failures), time.Since(start).Round(time.Millisecond))
			}
			continue
		}
		logf("fuzzsql: query %d FAILED (%s/%s); shrinking...", rep.Queries, fail.Format, fail.Config)
		min := Shrink(q, func(c *Query) bool { return h.CheckQuery(c) != nil })
		minFail := h.CheckQuery(min)
		if minFail == nil { // flaky failure: report the original unshrunk
			minFail = fail
			min = q
		}
		rep.Failures = append(rep.Failures, ShrunkFailure{
			Failure:    *minFail,
			MinimalSQL: min.SQL(),
			NumClauses: min.NumClauses(),
			Repro:      ReproSource(opts.Seed, minFail),
		})
		if len(rep.Failures) >= opts.MaxFailures {
			logf("fuzzsql: stopping after %d failures", len(rep.Failures))
			break
		}
	}
	rep.Elapsed = time.Since(start)
	rep.SpillCounts = h.SpillCounts
	return rep, nil
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("fuzzsql: seed=%d queries=%d failures=%d elapsed=%s\n",
		r.Seed, r.Queries, len(r.Failures), r.Elapsed.Round(time.Millisecond))
	for i, f := range r.Failures {
		s += fmt.Sprintf("\n--- failure %d (%s/%s, %d clauses) ---\n%s\nminimal: %s\n\nrepro:\n%s\n",
			i+1, f.Format, f.Config, f.NumClauses, f.Detail, f.MinimalSQL, f.Repro)
	}
	return s
}
