package fuzzsql

import (
	"strings"
	"testing"
	"time"

	"gofusion/internal/arrow"
)

// TestReplayDeterministicChunks: chunking must be a pure function of the
// dataset so a replay run is reproducible from its seed, and the chunks
// must reassemble to exactly the batch dataset (same rows, same order).
func TestReplayDeterministicChunks(t *testing.T) {
	ds := NewDataset(5)
	for _, tbl := range ds.Tables {
		chunks := tableChunks(tbl, 6)
		if len(chunks) != 6 {
			t.Fatalf("%s: got %d chunks", tbl.Name, len(chunks))
		}
		var total int64
		for _, c := range chunks {
			total += chunkRows(c)
		}
		var want int64
		for _, b := range tbl.Batches {
			want += int64(b.NumRows())
		}
		if total != want {
			t.Fatalf("%s: chunks cover %d rows, table has %d", tbl.Name, total, want)
		}
		// Every chunk but possibly the last must be non-empty for a table
		// bigger than the step count.
		for k, c := range chunks {
			if chunkRows(c) == 0 && want >= 6 {
				t.Fatalf("%s: chunk %d is empty", tbl.Name, k)
			}
		}
	}
}

// TestReplayDifferential is the streaming acceptance gate: the seeded
// dataset is replayed as timed micro-batches into every (config, target)
// session — in-memory INSERTs, in-place GPQ appends via COPY INTO, and a
// live stream table — with exact-count probes after every step, then
// >=300 generated queries over the final state must agree with the
// one-shot batch baseline across the whole config matrix.
func TestReplayDifferential(t *testing.T) {
	n, steps := 300, 6
	if testing.Short() {
		n, steps = 60, 4
	}
	rep, err := RunReplay(ReplayOptions{
		Seed:     11,
		N:        n,
		Steps:    steps,
		Interval: time.Millisecond,
		Dir:      t.TempDir(),
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("replay divergence:\n%s", rep.Summary())
	}
	if rep.Queries < n {
		t.Fatalf("ran %d differential queries, want >= %d", rep.Queries, n)
	}
	// Probes must have covered every (step, table, engine) combination; a
	// zero here means the ingestion loop silently skipped the checks.
	minProbes := steps * len(DefaultConfigs()) * len(ReplayTargets)
	if rep.Probes < minProbes {
		t.Fatalf("ran %d probes, want >= %d", rep.Probes, minProbes)
	}
}

// TestReplayDetectsStaleCount: the probe machinery itself must catch a
// wrong count — feed it an off-by-one expectation and require a failure
// that names the stale read (a probe that cannot fail proves nothing).
func TestReplayDetectsStaleCount(t *testing.T) {
	ds := NewDataset(3)
	chunks := map[string][][]*arrow.RecordBatch{}
	for _, tbl := range ds.Tables {
		chunks[tbl.Name] = tableChunks(tbl, 2)
	}
	e, err := newReplayEngine(t.TempDir(), DefaultConfigs()[0], Mem, ds, chunks)
	if err != nil {
		t.Fatal(err)
	}
	defer e.s.Close()
	want := chunkRows(chunks["t1"][0])
	if f := e.checkCount("SELECT count(*) AS c0 FROM t1", want); f != nil {
		t.Fatalf("correct expectation flagged: %s", f)
	}
	f := e.checkCount("SELECT count(*) AS c0 FROM t1", want+1)
	if f == nil {
		t.Fatal("off-by-one expectation not flagged")
	}
	if !strings.Contains(f.Detail, "stale read") {
		t.Fatalf("unexpected detail: %s", f.Detail)
	}
}
