package fuzzsql

import (
	"fmt"
	"path/filepath"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/baseline"
	"gofusion/internal/core"
	"gofusion/internal/csvio"
	"gofusion/internal/exec"
	"gofusion/internal/parquet"
	"gofusion/internal/testutil"
)

// Format is a storage backend for the generated tables. The same rows are
// materialized to all formats; comparisons are always within one format
// (engine config vs baseline), so format-specific schema inference (CSV)
// can never cause false positives.
type Format string

const (
	Mem Format = "mem"
	CSV Format = "csv"
	GPQ Format = "gpq"
)

// AllFormats lists every backend.
var AllFormats = []Format{Mem, CSV, GPQ}

// EngineConfig is one point in the engine's configuration matrix.
type EngineConfig struct {
	Name string
	Cfg  core.SessionConfig
}

// DefaultConfigs returns the matrix exercised by the harness: serial vs
// partitioned, forced spill, no readahead, tiny exchange buffers, and
// tiny batches. All of these must agree with each other and with the
// baseline.
func DefaultConfigs() []EngineConfig {
	return []EngineConfig{
		{"p1", core.SessionConfig{TargetPartitions: 1}},
		{"p4", core.SessionConfig{TargetPartitions: 4}},
		// 4KiB genuinely forces sort/aggregate spills on the generated
		// dataset (the previous 8KiB sat just above the pool peak, so the
		// "forced spill" config never actually spilled).
		{"p4-spill", core.SessionConfig{TargetPartitions: 4, MemoryLimit: 4 << 10}},
		{"p4-noreadahead", core.SessionConfig{TargetPartitions: 4, ScanReadahead: -1}},
		{"p4-smallbuf", core.SessionConfig{TargetPartitions: 4, ExchangeBufferDepth: 1}},
		{"p1-smallbatch", core.SessionConfig{TargetPartitions: 1, BatchRows: 64}},
		// Every config above runs with pipeline fusion on (the default);
		// fused-off pins the pull-per-operator path so fused and unfused
		// execution cross-check each other and the baseline.
		{"fused-off", core.SessionConfig{TargetPartitions: 4, DisableFusion: true}},
		// Shared-cache matrix: every config above runs with the shared
		// decoded-page cache on (the default) against a tight budget is
		// covered by unit tests; here nocache pins the uncached decode
		// path and rescache runs with the result cache on, so cached,
		// uncached, and memoized execution all cross-check each other and
		// the baseline under the race+sanitize CI modes.
		{"p1-nocache", core.SessionConfig{TargetPartitions: 1, DisableSharedCache: true}},
		{"p4-rescache", core.SessionConfig{TargetPartitions: 4, EnableResultCache: true}},
		// plancache replans nothing after the first sight of a statement:
		// generated queries that repeat (and every re-execution inside one
		// config run) execute from the cached optimized logical plan, so
		// cached planning cross-checks fresh planning and the baseline.
		{"p4-plancache", core.SessionConfig{TargetPartitions: 4, EnablePlanCache: true}},
	}
}

// ConfigByName resolves matrix entries by name.
func ConfigByName(names []string) ([]EngineConfig, error) {
	all := DefaultConfigs()
	var out []EngineConfig
	for _, n := range names {
		found := false
		for _, c := range all {
			if c.Name == n {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fuzzsql: unknown config %q", n)
		}
	}
	return out, nil
}

// Failure describes one disagreement (or panic) found by the harness.
type Failure struct {
	SQL    string
	Format Format
	Config string // engine config name, or "baseline" for baseline panics
	Detail string
}

func (f *Failure) String() string {
	return fmt.Sprintf("[%s/%s] %s\n  query: %s", f.Format, f.Config, f.Detail, f.SQL)
}

// Harness holds one dataset registered under every (format, config)
// combination: a baseline engine per format and an engine session per
// format x config.
type Harness struct {
	DS       *Dataset
	Configs  []EngineConfig
	Formats  []Format
	baseline map[Format]*baseline.Engine
	engines  map[string]*core.SessionContext // key: config name + "/" + format
	// SpillCounts / SpillBytes accumulate per-config spill totals across
	// every query checked, so callers can assert that memory-limited
	// configs actually spilled. Not safe for concurrent Check calls.
	SpillCounts map[string]int64
	SpillBytes  map[string]int64
}

// NewHarness materializes the dataset under dir (for csv/gpq) and
// registers it everywhere. GPQ files are written with tiny row groups
// split across two files per table, forcing row-group pruning, partition
// splits, and multi-file scans.
func NewHarness(ds *Dataset, dir string, configs []EngineConfig, formats []Format) (*Harness, error) {
	h := &Harness{
		DS:          ds,
		Configs:     configs,
		Formats:     formats,
		baseline:    map[Format]*baseline.Engine{},
		engines:     map[string]*core.SessionContext{},
		SpillCounts: map[string]int64{},
		SpillBytes:  map[string]int64{},
	}
	files := map[Format]map[string][]string{CSV: {}, GPQ: {}}
	for _, f := range formats {
		if f == Mem {
			continue
		}
		for _, t := range ds.Tables {
			fs, err := writeTable(dir, f, t)
			if err != nil {
				return nil, err
			}
			files[f][t.Name] = fs
		}
	}
	for _, f := range formats {
		be := baseline.New(2)
		for _, t := range ds.Tables {
			if err := registerBaseline(be, f, t, files[f][t.Name]); err != nil {
				return nil, err
			}
		}
		h.baseline[f] = be
		for _, c := range configs {
			s := core.NewSession(c.Cfg)
			for _, t := range ds.Tables {
				if err := registerEngine(s, f, t, files[f][t.Name]); err != nil {
					return nil, err
				}
			}
			h.engines[c.Name+"/"+string(f)] = s
		}
	}
	return h, nil
}

// Close releases every engine session's cache reservations. Required for
// sanitize-tagged runs: the shared page/result caches hold pool
// reservations for the session's lifetime, and SanitizerFindings flags
// any reservation never freed.
func (h *Harness) Close() {
	for _, s := range h.engines {
		s.Close()
	}
}

// writeTable encodes a table to its on-disk format, returning the files.
func writeTable(dir string, f Format, t *Table) ([]string, error) {
	switch f {
	case CSV:
		path := filepath.Join(dir, t.Name+".csv")
		return []string{path}, csvio.WriteFile(path, t.Schema, t.Batches, ',')
	case GPQ:
		// Two files, 64-row row groups: a ~240-row table becomes ~4 row
		// groups over 2 files, so partitioned scans split work and range
		// predicates prune groups.
		opts := parquet.WriterOptions{RowGroupRows: 64, PageRows: 32}
		half := (len(t.Batches) + 1) / 2
		p0 := filepath.Join(dir, t.Name+"-0.gpq")
		p1 := filepath.Join(dir, t.Name+"-1.gpq")
		if err := parquet.WriteFile(p0, t.Schema, t.Batches[:half], opts); err != nil {
			return nil, err
		}
		if err := parquet.WriteFile(p1, t.Schema, t.Batches[half:], opts); err != nil {
			return nil, err
		}
		return []string{p0, p1}, nil
	}
	return nil, nil
}

func registerBaseline(be *baseline.Engine, f Format, t *Table, files []string) error {
	switch f {
	case Mem:
		be.RegisterBatches(t.Name, t.Schema, t.Batches)
		return nil
	case CSV:
		return be.RegisterCSV(t.Name, files[0])
	default:
		return be.RegisterGPQ(t.Name, files...)
	}
}

func registerEngine(s *core.SessionContext, f Format, t *Table, files []string) error {
	switch f {
	case Mem:
		return s.RegisterBatches(t.Name, t.Schema, t.Batches)
	case CSV:
		return s.RegisterCSV(t.Name, files[0], csvio.DefaultOptions())
	default:
		return s.RegisterGPQ(t.Name, files...)
	}
}

// outcome is one engine's verdict on one query.
type outcome struct {
	batch    *arrow.RecordBatch
	err      error
	panicked bool
	// metricsErr reports a metric-invariant violation on an otherwise
	// successful run (correct rows, broken accounting).
	metricsErr error
	// spillCount/spillBytes are summed over the executed plan's operators.
	spillCount int64
	spillBytes int64
}

func runEngine(s *core.SessionContext, query string) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = outcome{err: fmt.Errorf("panic: %v", r), panicked: true}
		}
	}()
	df, err := s.SQL(query)
	if err != nil {
		return outcome{err: err}
	}
	batches, qm, err := df.CollectWithMetrics()
	if err != nil {
		return outcome{err: err}
	}
	b, err := compute.ConcatBatches(df.Schema().ToArrow(), batches)
	if err != nil {
		return outcome{err: err}
	}
	out = outcome{batch: b}
	if qm.ResultCacheHit {
		// A cache-served execution never ran the plan, so its operators
		// legitimately report zero rows; there is nothing to cross-check.
		return out
	}
	out.metricsErr = exec.CheckPlanMetrics(qm.Plan, qm.RowsReturned)
	out.spillCount, out.spillBytes = exec.PlanSpillStats(qm.Plan)
	if out.metricsErr == nil && out.spillCount > 0 && out.spillBytes == 0 {
		out.metricsErr = fmt.Errorf("spill_count=%d but spilled_bytes=0", out.spillCount)
	}
	return out
}

func runBaseline(e *baseline.Engine, query string) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = outcome{err: fmt.Errorf("panic: %v", r), panicked: true}
		}
	}()
	b, err := e.Query(query)
	return outcome{batch: b, err: err}
}

// Check runs one SQL string across the whole matrix and returns the first
// failure, or nil when every configuration agrees with the baseline.
// Error parity counts as agreement (both sides rejecting a query is
// consistent behavior); panics never do.
func (h *Harness) Check(query string) *Failure {
	for _, f := range h.Formats {
		ref := runBaseline(h.baseline[f], query)
		if ref.panicked {
			return &Failure{SQL: query, Format: f, Config: "baseline", Detail: ref.err.Error()}
		}
		var refRows []testutil.Row
		if ref.err == nil {
			refRows = testutil.NormalizeBatch(ref.batch)
		}
		for _, c := range h.Configs {
			got := runEngine(h.engines[c.Name+"/"+string(f)], query)
			switch {
			case got.panicked:
				return &Failure{SQL: query, Format: f, Config: c.Name, Detail: got.err.Error()}
			case (got.err == nil) != (ref.err == nil):
				return &Failure{SQL: query, Format: f, Config: c.Name,
					Detail: fmt.Sprintf("error divergence: engine=%v baseline=%v", got.err, ref.err)}
			case got.err == nil:
				if diff := testutil.Diff(testutil.NormalizeBatch(got.batch), refRows); diff != "" {
					return &Failure{SQL: query, Format: f, Config: c.Name,
						Detail: "result mismatch vs baseline:\n" + diff}
				}
				if got.metricsErr != nil {
					return &Failure{SQL: query, Format: f, Config: c.Name,
						Detail: "metrics invariant violation: " + got.metricsErr.Error()}
				}
				h.SpillCounts[c.Name] += got.spillCount
				h.SpillBytes[c.Name] += got.spillBytes
			}
		}
	}
	return nil
}

// CheckQuery is Check over a structured query.
func (h *Harness) CheckQuery(q *Query) *Failure { return h.Check(q.SQL()) }
