// Package fuzzsql is a differential SQL fuzzing harness: seeded random
// queries over seeded random tables, executed on the vectorized engine
// across a configuration matrix and on the TightDB baseline, with results
// compared under testutil's canonical normalization. Failures are shrunk
// to minimal repros (see shrink.go) and emitted as ready-to-paste Go test
// cases.
//
// The package is deliberately structured as data (Query, Expr) rather
// than strings so the shrinker can drop clauses and simplify expressions
// while keeping queries well-formed.
package fuzzsql

import (
	"strconv"
	"strings"
)

// ValType is the fuzzer's value-type universe.
type ValType int

const (
	TInt ValType = iota
	TFloat
	TStr
	TDate
	TBool
)

func (t ValType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "str"
	case TDate:
		return "date"
	default:
		return "bool"
	}
}

// Expr is a typed SQL expression node. Nodes are immutable: With builds a
// modified copy, which is what the shrinker's rewrites rely on.
type Expr interface {
	SQL() string
	VType() ValType
	Kids() []Expr
	// With returns a copy of the node with its children replaced; len(kids)
	// must equal len(Kids()).
	With(kids []Expr) Expr
}

// Col references a table column by (unqualified) name. Column names are
// unique across the fuzzer's tables, so no qualification is needed even
// under joins.
type Col struct {
	Name string
	T    ValType
}

func (c *Col) SQL() string        { return c.Name }
func (c *Col) VType() ValType     { return c.T }
func (c *Col) Kids() []Expr       { return nil }
func (c *Col) With(_ []Expr) Expr { return c }

// Lit is a literal of any ValType. For TDate, Str holds "YYYY-MM-DD".
type Lit struct {
	T     ValType
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

func (l *Lit) SQL() string {
	switch l.T {
	case TInt:
		return strconv.FormatInt(l.Int, 10)
	case TFloat:
		s := strconv.FormatFloat(l.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case TStr:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case TDate:
		return "DATE '" + l.Str + "'"
	default:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	}
}
func (l *Lit) VType() ValType     { return l.T }
func (l *Lit) Kids() []Expr       { return nil }
func (l *Lit) With(_ []Expr) Expr { return l }

// Bin is a binary operator. Arithmetic ops carry the operand type; the
// comparison and logical ops yield TBool.
type Bin struct {
	Op   string // "+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
	T    ValType
}

func (b *Bin) SQL() string    { return "(" + b.L.SQL() + " " + b.Op + " " + b.R.SQL() + ")" }
func (b *Bin) VType() ValType { return b.T }
func (b *Bin) Kids() []Expr   { return []Expr{b.L, b.R} }
func (b *Bin) With(kids []Expr) Expr {
	return &Bin{Op: b.Op, L: kids[0], R: kids[1], T: b.T}
}

// Not negates a boolean expression.
type Not struct{ E Expr }

func (n *Not) SQL() string           { return "(NOT " + n.E.SQL() + ")" }
func (n *Not) VType() ValType        { return TBool }
func (n *Not) Kids() []Expr          { return []Expr{n.E} }
func (n *Not) With(kids []Expr) Expr { return &Not{E: kids[0]} }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

func (n *Neg) SQL() string           { return "(- " + n.E.SQL() + ")" }
func (n *Neg) VType() ValType        { return n.E.VType() }
func (n *Neg) Kids() []Expr          { return []Expr{n.E} }
func (n *Neg) With(kids []Expr) Expr { return &Neg{E: kids[0]} }

// IsNull is `expr IS [NOT] NULL`.
type IsNull struct {
	E      Expr
	Negate bool
}

func (i *IsNull) SQL() string {
	if i.Negate {
		return "(" + i.E.SQL() + " IS NOT NULL)"
	}
	return "(" + i.E.SQL() + " IS NULL)"
}
func (i *IsNull) VType() ValType        { return TBool }
func (i *IsNull) Kids() []Expr          { return []Expr{i.E} }
func (i *IsNull) With(kids []Expr) Expr { return &IsNull{E: kids[0], Negate: i.Negate} }

// Case is `CASE WHEN cond THEN a ELSE b END`.
type Case struct {
	Cond, Then, Else Expr
}

func (c *Case) SQL() string {
	return "(CASE WHEN " + c.Cond.SQL() + " THEN " + c.Then.SQL() + " ELSE " + c.Else.SQL() + " END)"
}
func (c *Case) VType() ValType { return c.Then.VType() }
func (c *Case) Kids() []Expr   { return []Expr{c.Cond, c.Then, c.Else} }
func (c *Case) With(kids []Expr) Expr {
	return &Case{Cond: kids[0], Then: kids[1], Else: kids[2]}
}

// Agg is an aggregate call; Star means count(*).
type Agg struct {
	Fn   string // "sum", "min", "max", "avg", "count"
	Arg  Expr   // nil iff Star
	Star bool
}

func (a *Agg) SQL() string {
	if a.Star {
		return "count(*)"
	}
	return a.Fn + "(" + a.Arg.SQL() + ")"
}
func (a *Agg) VType() ValType {
	switch a.Fn {
	case "count":
		return TInt
	case "avg":
		return TFloat
	default: // sum/min/max keep the argument type
		return a.Arg.VType()
	}
}
func (a *Agg) Kids() []Expr {
	if a.Star {
		return nil
	}
	return []Expr{a.Arg}
}
func (a *Agg) With(kids []Expr) Expr {
	if a.Star {
		return a
	}
	return &Agg{Fn: a.Fn, Arg: kids[0]}
}

// IsAgg reports whether the expression contains an aggregate call.
func IsAgg(e Expr) bool {
	if _, ok := e.(*Agg); ok {
		return true
	}
	for _, k := range e.Kids() {
		if IsAgg(k) {
			return true
		}
	}
	return false
}

// DefaultLit returns the simplest literal of a type (1 rather than 0 for
// numerics so shrinking a divisor never introduces division by zero).
func DefaultLit(t ValType) *Lit {
	switch t {
	case TInt:
		return &Lit{T: TInt, Int: 1}
	case TFloat:
		return &Lit{T: TFloat, Float: 1}
	case TStr:
		return &Lit{T: TStr, Str: "s_0"}
	case TDate:
		return &Lit{T: TDate, Str: "1995-06-15"}
	default:
		return &Lit{T: TBool, Bool: true}
	}
}

// Variants returns single-step simplifications of e: e replaced by a
// same-typed child, e replaced by the default literal, and e with one
// descendant simplified. Used by the shrinker; every variant is
// well-typed by construction.
func Variants(e Expr) []Expr {
	var out []Expr
	for _, k := range e.Kids() {
		if k.VType() == e.VType() {
			out = append(out, k)
		}
	}
	if d := DefaultLit(e.VType()); d.SQL() != e.SQL() {
		out = append(out, d)
	}
	kids := e.Kids()
	for i, k := range kids {
		for _, kv := range Variants(k) {
			nk := make([]Expr, len(kids))
			copy(nk, kids)
			nk[i] = kv
			out = append(out, e.With(nk))
		}
	}
	return out
}
