package fuzzsql

import (
	"fmt"
	"math/rand"
	"time"

	"gofusion/internal/arrow"
)

// Column describes one generated column for the query generator.
type Column struct {
	Name string
	T    ValType
}

// Table is one generated table, materialized as in-memory batches (the
// harness re-encodes the same batches to CSV and GPQ).
type Table struct {
	Name    string
	Schema  *arrow.Schema
	Batches []*arrow.RecordBatch
	Cols    []Column
}

// Dataset is the fuzzer's fixed two-table world: t1 (the larger fact
// side) and t2 (a smaller dimension side whose x column overlaps t1.a's
// domain so joins produce both matches and misses). Column names are
// globally unique so queries never need qualification.
type Dataset struct {
	Seed   int64
	Tables []*Table
}

// Value domains. Join keys share domain [-keyDomain, keyDomain]; nulls
// appear at ~22% on every nullable column; strings come from a small
// letter-prefixed pool (never numeric-looking, never empty, so CSV
// round-trips keep the Utf8 type); floats get fractional offsets so CSV
// schema inference keeps Float64.
const (
	keyDomain = 25
	nullPct   = 22
	strPool   = 12
	epochDay  = 9131 // 1995-01-01 in days since Unix epoch
	dateRange = 400
)

// NewDataset builds the two tables deterministically from seed.
func NewDataset(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	t1 := genTable(rng, "t1", []Column{
		{"a", TInt}, {"b", TInt}, {"c", TFloat}, {"s", TStr}, {"d", TDate}, {"e", TInt},
	}, 4, 60)
	t2 := genTable(rng, "t2", []Column{
		{"x", TInt}, {"y", TFloat}, {"z", TStr}, {"w", TDate},
	}, 2, 55)
	return &Dataset{Seed: seed, Tables: []*Table{t1, t2}}
}

// Table returns a table by name, or nil.
func (d *Dataset) Table(name string) *Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// genTable builds nBatches batches of up to maxRows rows each.
func genTable(rng *rand.Rand, name string, cols []Column, nBatches, maxRows int) *Table {
	fields := make([]arrow.Field, len(cols))
	for i, c := range cols {
		fields[i] = arrow.NewField(c.Name, arrowType(c.T), true)
	}
	schema := arrow.NewSchema(fields...)
	var batches []*arrow.RecordBatch
	rowBase := 0
	for b := 0; b < nBatches; b++ {
		n := maxRows/2 + rng.Intn(maxRows/2+1)
		arrs := make([]arrow.Array, len(cols))
		for i, c := range cols {
			arrs[i] = genColumn(rng, c, n, rowBase)
		}
		batches = append(batches, arrow.NewRecordBatch(schema, arrs))
		rowBase += n
	}
	return &Table{Name: name, Schema: schema, Batches: batches, Cols: cols}
}

func arrowType(t ValType) *arrow.DataType {
	switch t {
	case TInt:
		return arrow.Int64
	case TFloat:
		return arrow.Float64
	case TStr:
		return arrow.String
	case TDate:
		return arrow.Date32
	default:
		return arrow.Boolean
	}
}

// genColumn generates one column. The "e" column is roughly increasing
// with the global row index so GPQ row-group min/max statistics actually
// prune under range predicates; all other columns are i.i.d.
func genColumn(rng *rand.Rand, c Column, n, rowBase int) arrow.Array {
	switch c.T {
	case TInt:
		b := arrow.NewNumericBuilder[int64](arrow.Int64)
		for i := 0; i < n; i++ {
			switch {
			case c.Name != "e" && rng.Intn(100) < nullPct:
				b.AppendNull()
			case c.Name == "e":
				b.Append(int64(rowBase+i) + int64(rng.Intn(15)))
			case c.Name == "b":
				b.Append(int64(rng.Intn(10))) // small-domain group key
			default:
				b.Append(int64(rng.Intn(2*keyDomain+1)) - keyDomain)
			}
		}
		return b.Finish()
	case TFloat:
		b := arrow.NewNumericBuilder[float64](arrow.Float64)
		for i := 0; i < n; i++ {
			if rng.Intn(100) < nullPct {
				b.AppendNull()
			} else {
				b.Append(float64(rng.Intn(2000)-1000) + 0.25*float64(rng.Intn(4)) + 0.125)
			}
		}
		return b.Finish()
	case TStr:
		b := arrow.NewStringBuilder(arrow.String)
		for i := 0; i < n; i++ {
			if rng.Intn(100) < nullPct {
				b.AppendNull()
			} else {
				b.Append(fmt.Sprintf("s_%d", rng.Intn(strPool)))
			}
		}
		return b.Finish()
	case TDate:
		b := arrow.NewNumericBuilder[int32](arrow.Date32)
		for i := 0; i < n; i++ {
			if rng.Intn(100) < nullPct {
				b.AppendNull()
			} else {
				b.Append(int32(epochDay + rng.Intn(dateRange)))
			}
		}
		return b.Finish()
	default:
		b := arrow.NewBoolBuilder()
		for i := 0; i < n; i++ {
			if rng.Intn(100) < nullPct {
				b.AppendNull()
			} else {
				b.Append(rng.Intn(2) == 0)
			}
		}
		return b.Finish()
	}
}

// dateString renders a Date32 day count as a DATE literal body.
func dateString(days int) string {
	return time.Unix(int64(days)*86400, 0).UTC().Format("2006-01-02")
}
