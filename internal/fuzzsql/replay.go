package fuzzsql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/baseline"
	"gofusion/internal/catalog"
	"gofusion/internal/core"
	"gofusion/internal/parquet"
	"gofusion/internal/testutil"
)

// Stream is a replay-only ingestion target: a live catalog.StreamTable fed
// through INSERT INTO and sealed before the differential phase. It is not
// part of AllFormats because the batch harness has no streaming sources.
const Stream Format = "stream"

// ReplayTargets lists the ingestion targets the replay harness drives by
// default: in-memory tables (INSERT INTO ... SELECT), GPQ files appended
// in place (COPY INTO, rotating the mmap fingerprint on every step), and
// live stream tables (INSERT INTO a StreamTable, sealed at the end).
var ReplayTargets = []Format{Mem, GPQ, Stream}

// ReplayOptions parameterizes a streaming differential replay run.
type ReplayOptions struct {
	// Seed drives the dataset, the chunking, and the query stream. The
	// same seed replays the same run bit-for-bit.
	Seed int64
	// N is the number of generated queries checked against the baseline
	// after ingestion completes (default 300).
	N int
	// Steps is the number of timed micro-batches each table is replayed
	// as (default 6; minimum 2 so at least one incremental step runs).
	Steps int
	// Interval is the pause between micro-batch steps, simulating data
	// arriving over time (default 0: replay as fast as possible).
	Interval time.Duration
	// Configs and Targets default to the full matrix and ReplayTargets.
	Configs []EngineConfig
	Targets []Format
	// Dir is the scratch directory for GPQ replay files; empty creates
	// (and removes) a temp dir.
	Dir string
	// MaxFailures stops the run early (default 3).
	MaxFailures int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// ReplayReport summarizes a replay run.
type ReplayReport struct {
	Seed    int64
	Steps   int
	Probes  int // mid-ingestion consistency probes that ran
	Queries int // post-seal differential queries that ran
	Elapsed time.Duration
	// Failures holds both mid-ingestion probe mismatches (stale caches,
	// lost writes) and post-seal differential failures (shrunk).
	Failures []ShrunkFailure
}

// replayEngine is one (config, target) session being fed micro-batches.
type replayEngine struct {
	s       *core.SessionContext
	cfg     string
	target  Format
	gpqFile map[string]string               // table -> engine-private backing file
	streams map[string]*catalog.StreamTable // table -> live handle (for Seal)
}

// stageName is the scratch mem table INSERT INTO selects from. The query
// generator only ever references t1/t2, so the name cannot collide.
const stageName = "replay_stage"

// replayWriterOpts keeps row groups tiny so every appended step adds real
// pages (pruning, page cache, and multi-row-group scans all engage).
var replayWriterOpts = parquet.WriterOptions{RowGroupRows: 64, PageRows: 32}

// RunReplay replays the seeded dataset as a sequence of timed micro-batch
// writes into every (config, target) session, probing row counts after
// each step (a stale result/page cache or a lost append shows up as a
// wrong count), then runs N generated queries over the final state and
// checks them against the one-shot batch baseline. Final-state results
// must be identical to a batch load of the same rows: ingestion order and
// chunking are not allowed to be observable.
func RunReplay(opts ReplayOptions) (*ReplayReport, error) {
	if len(opts.Configs) == 0 {
		opts.Configs = DefaultConfigs()
	}
	if len(opts.Targets) == 0 {
		opts.Targets = ReplayTargets
	}
	if opts.N <= 0 {
		opts.N = 300
	}
	if opts.Steps < 2 {
		opts.Steps = 6
	}
	if opts.MaxFailures <= 0 {
		opts.MaxFailures = 3
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "fuzzreplay")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	ds := NewDataset(opts.Seed)
	chunks := map[string][][]*arrow.RecordBatch{}
	for _, t := range ds.Tables {
		chunks[t.Name] = tableChunks(t, opts.Steps)
	}

	// The reference: a one-shot batch engine over the full dataset.
	be := baseline.New(2)
	for _, t := range ds.Tables {
		be.RegisterBatches(t.Name, t.Schema, t.Batches)
	}

	var engines []*replayEngine
	defer func() {
		for _, e := range engines {
			e.s.Close()
		}
	}()
	for _, tgt := range opts.Targets {
		for _, c := range opts.Configs {
			e, err := newReplayEngine(dir, c, tgt, ds, chunks)
			if err != nil {
				return nil, err
			}
			engines = append(engines, e)
		}
	}

	rep := &ReplayReport{Seed: opts.Seed, Steps: opts.Steps}
	start := time.Now()

	// Ingestion phase: step 0 was loaded at registration; replay the rest.
	rows := map[string]int64{}
	for _, t := range ds.Tables {
		rows[t.Name] = chunkRows(chunks[t.Name][0])
	}
	for step := 0; step < opts.Steps; step++ {
		if step > 0 {
			if opts.Interval > 0 {
				time.Sleep(opts.Interval)
			}
			for _, t := range ds.Tables {
				chunk := chunks[t.Name][step]
				if chunkRows(chunk) == 0 {
					continue
				}
				for _, e := range engines {
					if err := e.ingest(dir, t, step, chunk); err != nil {
						return nil, fmt.Errorf("replay: step %d ingest into %s/%s.%s: %w",
							step, e.target, e.cfg, t.Name, err)
					}
				}
				rows[t.Name] += chunkRows(chunk)
			}
		}
		// Probe every engine after every step: a count served from a cache
		// entry that should have been invalidated by the step's write is a
		// correctness bug, caught here with an exact expected value. Unsealed
		// streams reject full aggregation at plan time (by design), so the
		// stream target is probed through the table handle instead.
		for _, t := range ds.Tables {
			for _, e := range engines {
				if e.target != Stream {
					continue
				}
				rep.Probes++
				if got := e.streams[t.Name].Rows(); got != rows[t.Name] {
					rep.Failures = append(rep.Failures, ShrunkFailure{
						Failure: Failure{SQL: "StreamTable.Rows()", Format: Stream, Config: e.cfg,
							Detail: fmt.Sprintf("lost write: stream %s holds %d rows, want %d",
								t.Name, got, rows[t.Name])},
						MinimalSQL: "StreamTable.Rows()",
						NumClauses: 1,
					})
					if len(rep.Failures) >= opts.MaxFailures {
						rep.Elapsed = time.Since(start)
						return rep, nil
					}
				}
			}
			for _, probe := range countProbes(t) {
				for _, e := range engines {
					if e.target == Stream {
						continue
					}
					rep.Probes++
					if f := e.checkCount(probe, rows[t.Name]); f != nil {
						rep.Failures = append(rep.Failures, ShrunkFailure{
							Failure:    *f,
							MinimalSQL: probe,
							NumClauses: 1,
						})
						if len(rep.Failures) >= opts.MaxFailures {
							rep.Elapsed = time.Since(start)
							return rep, nil
						}
					}
				}
			}
		}
		logf("replay: step %d/%d done (t1=%d t2=%d rows), %d probes ok",
			step+1, opts.Steps, rows["t1"], rows["t2"], rep.Probes)
	}

	// Seal live streams: the differential phase runs arbitrary (blocking)
	// queries, which need bounded inputs. Once sealed, the SQL count probes
	// must work on the stream target too.
	for _, e := range engines {
		for _, st := range e.streams {
			st.Seal()
		}
	}
	for _, t := range ds.Tables {
		for _, probe := range countProbes(t) {
			for _, e := range engines {
				if e.target != Stream {
					continue
				}
				rep.Probes++
				if f := e.checkCount(probe, rows[t.Name]); f != nil {
					rep.Failures = append(rep.Failures, ShrunkFailure{
						Failure: *f, MinimalSQL: probe, NumClauses: 1,
					})
					if len(rep.Failures) >= opts.MaxFailures {
						rep.Elapsed = time.Since(start)
						return rep, nil
					}
				}
			}
		}
	}

	// Differential phase: the replayed engines must now be indistinguishable
	// from a one-shot batch load.
	check := func(q *Query) *Failure {
		sql := q.SQL()
		ref := runBaseline(be, sql)
		if ref.panicked {
			return &Failure{SQL: sql, Format: Mem, Config: "baseline", Detail: ref.err.Error()}
		}
		var refRows []testutil.Row
		if ref.err == nil {
			refRows = testutil.NormalizeBatch(ref.batch)
		}
		for _, e := range engines {
			if f := e.checkAgainst(sql, ref, refRows); f != nil {
				return f
			}
		}
		return nil
	}
	gen := NewGen(opts.Seed, ds)
	for rep.Queries < opts.N {
		q := gen.Query()
		rep.Queries++
		fail := check(q)
		if fail == nil {
			if rep.Queries%100 == 0 {
				logf("replay: %d/%d queries, %d failures", rep.Queries, opts.N, len(rep.Failures))
			}
			continue
		}
		logf("replay: query %d FAILED (%s/%s); shrinking...", rep.Queries, fail.Format, fail.Config)
		min := Shrink(q, func(c *Query) bool { return check(c) != nil })
		minFail := check(min)
		if minFail == nil { // flaky: report the original unshrunk
			minFail, min = fail, q
		}
		rep.Failures = append(rep.Failures, ShrunkFailure{
			Failure:    *minFail,
			MinimalSQL: min.SQL(),
			NumClauses: min.NumClauses(),
			Repro:      ReproSource(opts.Seed, minFail),
		})
		if len(rep.Failures) >= opts.MaxFailures {
			logf("replay: stopping after %d failures", len(rep.Failures))
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Summary renders a human-readable report.
func (r *ReplayReport) Summary() string {
	s := fmt.Sprintf("replay: seed=%d steps=%d probes=%d queries=%d failures=%d elapsed=%s\n",
		r.Seed, r.Steps, r.Probes, r.Queries, len(r.Failures), r.Elapsed.Round(time.Millisecond))
	for i, f := range r.Failures {
		s += fmt.Sprintf("\n--- failure %d (%s/%s) ---\n%s\nminimal: %s\n", i+1, f.Format, f.Config, f.Detail, f.MinimalSQL)
		if f.Repro != "" {
			s += "\nrepro:\n" + f.Repro + "\n"
		}
	}
	return s
}

// tableChunks slices a table's rows into n contiguous chunks in global row
// order; concatenating the chunks reproduces the batch dataset exactly.
func tableChunks(t *Table, n int) [][]*arrow.RecordBatch {
	total := 0
	for _, b := range t.Batches {
		total += b.NumRows()
	}
	out := make([][]*arrow.RecordBatch, n)
	for k := 0; k < n; k++ {
		lo, hi := k*total/n, (k+1)*total/n
		out[k] = sliceRows(t.Batches, lo, hi)
	}
	return out
}

// sliceRows returns rows [lo, hi) of a batch sequence as batch slices.
func sliceRows(batches []*arrow.RecordBatch, lo, hi int) []*arrow.RecordBatch {
	var out []*arrow.RecordBatch
	base := 0
	for _, b := range batches {
		n := b.NumRows()
		s, e := lo-base, hi-base
		base += n
		if s < 0 {
			s = 0
		}
		if e > n {
			e = n
		}
		if s < n && e > s {
			out = append(out, b.Slice(s, e-s))
		}
	}
	return out
}

func chunkRows(chunk []*arrow.RecordBatch) int64 {
	var n int64
	for _, b := range chunk {
		n += int64(b.NumRows())
	}
	return n
}

// countProbes returns the mid-ingestion consistency queries for a table:
// a bare count (result-cache invalidation) and, when the table has the
// generated event-time column, a filtered count whose predicate forces
// data pages to be decoded (page-cache invalidation after a GPQ append —
// e is never null and never negative, so the filter keeps every row).
func countProbes(t *Table) []string {
	probes := []string{fmt.Sprintf("SELECT count(*) AS c0 FROM %s", t.Name)}
	for _, c := range t.Cols {
		if c.Name == "e" {
			probes = append(probes,
				fmt.Sprintf("SELECT count(*) AS c0 FROM %s WHERE e >= 0", t.Name))
		}
	}
	return probes
}

func newReplayEngine(dir string, c EngineConfig, tgt Format, ds *Dataset,
	chunks map[string][][]*arrow.RecordBatch) (*replayEngine, error) {
	e := &replayEngine{
		s:       core.NewSession(c.Cfg),
		cfg:     c.Name,
		target:  tgt,
		gpqFile: map[string]string{},
		streams: map[string]*catalog.StreamTable{},
	}
	for _, t := range ds.Tables {
		chunk0 := chunks[t.Name][0]
		switch tgt {
		case Mem:
			if err := e.s.RegisterBatches(t.Name, t.Schema, chunk0); err != nil {
				return nil, err
			}
		case GPQ:
			// Each engine appends to its own file: COPY INTO rewrites the
			// footer in place, so replay files cannot be shared.
			path := filepath.Join(dir, fmt.Sprintf("%s-%s-replay.gpq", c.Name, t.Name))
			if err := parquet.WriteFile(path, t.Schema, chunk0, replayWriterOpts); err != nil {
				return nil, err
			}
			if err := e.s.RegisterGPQ(t.Name, path); err != nil {
				return nil, err
			}
			e.gpqFile[t.Name] = path
		case Stream:
			// t1 declares its event-time column so the stream also exercises
			// the watermark metadata path through scans and projections.
			wm := ""
			for _, col := range t.Cols {
				if col.Name == "e" {
					wm = "e"
				}
			}
			st, err := e.s.RegisterStream(t.Name, t.Schema, wm)
			if err != nil {
				return nil, err
			}
			if err := st.Append(chunk0...); err != nil {
				return nil, err
			}
			e.streams[t.Name] = st
		default:
			return nil, fmt.Errorf("replay: unsupported target %q", tgt)
		}
	}
	return e, nil
}

// ingest applies one micro-batch through the engine's SQL surface: the
// point is to take the same write path a user would, so catalog-version
// bumps and cache invalidation are part of what is being tested.
func (e *replayEngine) ingest(dir string, t *Table, step int, chunk []*arrow.RecordBatch) error {
	switch e.target {
	case Mem, Stream:
		if err := e.s.RegisterBatches(stageName, t.Schema, chunk); err != nil {
			return err
		}
		cols := make([]string, t.Schema.NumFields())
		for i, f := range t.Schema.Fields() {
			cols[i] = f.Name
		}
		sql := fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s",
			t.Name, strings.Join(cols, ", "), stageName)
		if out := runEngine(e.s, sql); out.err != nil {
			return out.err
		}
		e.s.DeregisterTable(stageName)
		return nil
	case GPQ:
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-step%d.gpq", e.cfg, t.Name, step))
		if err := parquet.WriteFile(path, t.Schema, chunk, replayWriterOpts); err != nil {
			return err
		}
		sql := fmt.Sprintf("COPY INTO %s FROM '%s' FORMAT gpq", t.Name, path)
		if out := runEngine(e.s, sql); out.err != nil {
			return out.err
		}
		return nil
	}
	return fmt.Errorf("replay: unsupported target %q", e.target)
}

// checkCount runs a count probe and compares against the exact expected
// row count for the current ingestion state.
func (e *replayEngine) checkCount(sql string, want int64) *Failure {
	out := runEngine(e.s, sql)
	if out.err != nil {
		return &Failure{SQL: sql, Format: e.target, Config: e.cfg,
			Detail: "probe error: " + out.err.Error()}
	}
	if out.batch.NumRows() != 1 || out.batch.NumCols() != 1 {
		return &Failure{SQL: sql, Format: e.target, Config: e.cfg,
			Detail: fmt.Sprintf("probe shape: got %dx%d, want 1x1", out.batch.NumRows(), out.batch.NumCols())}
	}
	got := out.batch.Column(0).GetScalar(0).AsInt64()
	if got != want {
		return &Failure{SQL: sql, Format: e.target, Config: e.cfg,
			Detail: fmt.Sprintf("stale read under ingestion: count=%d, want %d", got, want)}
	}
	return nil
}

// checkAgainst compares one query's result on this engine with the batch
// baseline outcome, mirroring Harness.Check's verdict rules.
func (e *replayEngine) checkAgainst(sql string, ref outcome, refRows []testutil.Row) *Failure {
	got := runEngine(e.s, sql)
	switch {
	case got.panicked:
		return &Failure{SQL: sql, Format: e.target, Config: e.cfg, Detail: got.err.Error()}
	case (got.err == nil) != (ref.err == nil):
		return &Failure{SQL: sql, Format: e.target, Config: e.cfg,
			Detail: fmt.Sprintf("error divergence: engine=%v baseline=%v", got.err, ref.err)}
	case got.err == nil:
		if diff := testutil.Diff(testutil.NormalizeBatch(got.batch), refRows); diff != "" {
			return &Failure{SQL: sql, Format: e.target, Config: e.cfg,
				Detail: "replayed state diverged from batch baseline:\n" + diff}
		}
		if got.metricsErr != nil {
			return &Failure{SQL: sql, Format: e.target, Config: e.cfg,
				Detail: "metrics invariant violation: " + got.metricsErr.Error()}
		}
	}
	return nil
}
