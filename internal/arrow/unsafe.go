package arrow

import "unsafe"

// unsafeString views a byte slice as a string without copying. Callers must
// guarantee the bytes are not mutated while the string is alive; all array
// buffers are immutable, so views into them satisfy this.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
