package arrow

import (
	"fmt"
	"strings"
)

// Field describes one column: a name, a type, and nullability.
type Field struct {
	Name     string
	Type     *DataType
	Nullable bool
}

// NewField constructs a field.
func NewField(name string, t *DataType, nullable bool) Field {
	return Field{Name: name, Type: t, Nullable: nullable}
}

func (f Field) String() string {
	null := ""
	if f.Nullable {
		null = " NULL"
	}
	return fmt.Sprintf("%s: %s%s", f.Name, f.Type, null)
}

// Schema is an ordered list of fields describing a RecordBatch or table.
type Schema struct {
	fields []Field
	index  map[string]int // lower-cased name -> first position
}

// NewSchema constructs a schema from fields.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		key := strings.ToLower(f.Name)
		if _, ok := s.index[key]; !ok {
			s.index[key] = i
		}
	}
	return s
}

// Fields returns the field list; callers must not mutate it.
func (s *Schema) Fields() []Field { return s.fields }

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns field i.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// FieldIndex returns the position of the named field (case-insensitive),
// or -1 if absent.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.index[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Select returns a new schema containing the fields at the given positions.
func (s *Schema) Select(indices []int) *Schema {
	fields := make([]Field, len(indices))
	for i, idx := range indices {
		fields[i] = s.fields[idx]
	}
	return NewSchema(fields...)
}

// Equal reports whether two schemas have identical names and types.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i].Name != o.fields[i].Name || !s.fields[i].Type.Equal(o.fields[i].Type) {
			return false
		}
	}
	return true
}

func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.String()
	}
	return "Schema(" + strings.Join(parts, ", ") + ")"
}

// RecordBatch is a horizontal slice of a table: a schema plus one column
// array per field, all of equal length. Batches are the unit of data flow
// between operators.
type RecordBatch struct {
	schema  *Schema
	columns []Array
	numRows int
}

// NewRecordBatch constructs a batch; all columns must share the same length.
func NewRecordBatch(schema *Schema, columns []Array) *RecordBatch {
	n := 0
	if len(columns) > 0 {
		n = columns[0].Len()
	}
	for i, c := range columns {
		if c.Len() != n {
			panic(fmt.Sprintf("arrow: column %d length %d != %d", i, c.Len(), n))
		}
	}
	return &RecordBatch{schema: schema, columns: columns, numRows: n}
}

// NewRecordBatchWithRows constructs a zero-column batch that still carries a
// row count, as produced by scans with empty projections (e.g. COUNT(*)).
func NewRecordBatchWithRows(schema *Schema, columns []Array, numRows int) *RecordBatch {
	if len(columns) > 0 {
		return NewRecordBatch(schema, columns)
	}
	return &RecordBatch{schema: schema, columns: columns, numRows: numRows}
}

// Schema returns the batch schema.
func (b *RecordBatch) Schema() *Schema { return b.schema }

// NumRows returns the number of rows.
func (b *RecordBatch) NumRows() int { return b.numRows }

// NumCols returns the number of columns.
func (b *RecordBatch) NumCols() int { return len(b.columns) }

// Column returns column i.
func (b *RecordBatch) Column(i int) Array { return b.columns[i] }

// Columns returns all columns; callers must not mutate the slice.
func (b *RecordBatch) Columns() []Array { return b.columns }

// ColumnByName returns the first column with the given name, or nil.
func (b *RecordBatch) ColumnByName(name string) Array {
	i := b.schema.FieldIndex(name)
	if i < 0 {
		return nil
	}
	return b.columns[i]
}

// Slice returns a batch view of n rows starting at off.
func (b *RecordBatch) Slice(off, n int) *RecordBatch {
	cols := make([]Array, len(b.columns))
	for i, c := range b.columns {
		cols[i] = c.Slice(off, n)
	}
	return NewRecordBatchWithRows(b.schema, cols, n)
}

// Project returns a batch with only the columns at the given positions.
func (b *RecordBatch) Project(indices []int) *RecordBatch {
	cols := make([]Array, len(indices))
	for i, idx := range indices {
		cols[i] = b.columns[idx]
	}
	return NewRecordBatchWithRows(b.schema.Select(indices), cols, b.numRows)
}

// String renders the batch for debugging: schema plus up to 20 rows.
func (b *RecordBatch) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RecordBatch: %d rows\n", b.numRows)
	for i, f := range b.schema.fields {
		fmt.Fprintf(&sb, "  %s = %s\n", f.Name, b.columns[i])
	}
	return sb.String()
}
