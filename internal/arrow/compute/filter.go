// Package compute implements vectorized kernels over arrow Arrays:
// selection (filter, take), comparisons, boolean algebra, arithmetic,
// casting, hashing, concatenation, sorting and simple aggregation
// primitives. Kernels are the shared fast path for both the modular engine
// and the baseline comparator.
package compute

import (
	"fmt"

	"gofusion/internal/arrow"
)

// Filter returns the elements of a for which mask is valid and true.
// This implements SQL WHERE semantics: NULL mask slots are dropped.
func Filter(a arrow.Array, mask *arrow.BoolArray) (arrow.Array, error) {
	if a.Len() != mask.Len() {
		return nil, fmt.Errorf("compute: filter length mismatch %d vs %d", a.Len(), mask.Len())
	}
	keep := mask.TrueCount()
	if keep == a.Len() {
		return a, nil
	}
	switch arr := a.(type) {
	case *arrow.Int8Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Int16Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Int32Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Int64Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Uint8Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Uint16Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Uint32Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Uint64Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Float32Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.Float64Array:
		return filterNumeric(arr, mask, keep), nil
	case *arrow.StringArray:
		return filterString(arr, mask, keep), nil
	case *arrow.BoolArray:
		return filterBool(arr, mask, keep), nil
	case *arrow.NullArray:
		return arrow.NewNull(keep), nil
	default:
		// Generic slow path for nested types.
		b := arrow.NewBuilder(a.DataType())
		for i := 0; i < a.Len(); i++ {
			if mask.IsValid(i) && mask.Value(i) {
				b.AppendFrom(a, i)
			}
		}
		return b.Finish(), nil
	}
}

func maskKeep(mask *arrow.BoolArray, i int) bool {
	return mask.IsValid(i) && mask.Value(i)
}

func filterNumeric[T arrow.Number](a *arrow.NumericArray[T], mask *arrow.BoolArray, keep int) arrow.Array {
	out := make([]T, 0, keep)
	vals := a.Values()
	n := a.Len()
	if a.NullCount() == 0 {
		if mask.NullCount() == 0 && mask.Validity() == nil {
			bm := mask.ValuesBitmap()
			for i := 0; i < n; i++ {
				if bm.Get(i) {
					out = append(out, vals[i])
				}
			}
			return arrow.NewNumeric(a.DataType(), out, nil)
		}
		for i := 0; i < n; i++ {
			if maskKeep(mask, i) {
				out = append(out, vals[i])
			}
		}
		return arrow.NewNumeric(a.DataType(), out, nil)
	}
	valid := arrow.NewBitmap(keep)
	j := 0
	for i := 0; i < n; i++ {
		if maskKeep(mask, i) {
			out = append(out, vals[i])
			if a.IsValid(i) {
				valid.Set(j)
			}
			j++
		}
	}
	return arrow.NewNumeric(a.DataType(), out, valid)
}

func filterString(a *arrow.StringArray, mask *arrow.BoolArray, keep int) arrow.Array {
	offsets := make([]int32, 1, keep+1)
	// Estimate output data size proportionally.
	est := 0
	if a.Len() > 0 {
		est = len(a.Data()) * keep / a.Len()
	}
	data := make([]byte, 0, est)
	var valid arrow.Bitmap
	if a.NullCount() > 0 {
		valid = arrow.NewBitmap(keep)
	}
	j := 0
	for i := 0; i < a.Len(); i++ {
		if !maskKeep(mask, i) {
			continue
		}
		data = append(data, a.ValueBytes(i)...)
		offsets = append(offsets, int32(len(data)))
		if valid != nil && a.IsValid(i) {
			valid.Set(j)
		}
		j++
	}
	return arrow.NewString(a.DataType(), offsets, data, valid)
}

func filterBool(a *arrow.BoolArray, mask *arrow.BoolArray, keep int) arrow.Array {
	vals := arrow.NewBitmap(keep)
	var valid arrow.Bitmap
	if a.NullCount() > 0 {
		valid = arrow.NewBitmap(keep)
	}
	j := 0
	for i := 0; i < a.Len(); i++ {
		if !maskKeep(mask, i) {
			continue
		}
		if a.Value(i) {
			vals.Set(j)
		}
		if valid != nil && a.IsValid(i) {
			valid.Set(j)
		}
		j++
	}
	return arrow.NewBool(vals, valid, keep)
}

// FilterBatch filters every column of a batch by the mask.
func FilterBatch(b *arrow.RecordBatch, mask *arrow.BoolArray) (*arrow.RecordBatch, error) {
	keep := mask.TrueCount()
	if keep == b.NumRows() {
		return b, nil
	}
	cols := make([]arrow.Array, b.NumCols())
	for i, c := range b.Columns() {
		fc, err := Filter(c, mask)
		if err != nil {
			return nil, err
		}
		cols[i] = fc
	}
	return arrow.NewRecordBatchWithRows(b.Schema(), cols, keep), nil
}
