package compute

import (
	"fmt"

	"gofusion/internal/arrow"
)

// ArithOp identifies an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

var arithNames = [...]string{"+", "-", "*", "/", "%"}

func (op ArithOp) String() string { return arithNames[op] }

type arithNum interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~float32 | ~float64
}

var errDivZero = fmt.Errorf("compute: division by zero")

func arithVecVec[T arithNum](op ArithOp, a, b []T, valid arrow.Bitmap, isInt bool) ([]T, error) {
	out := make([]T, len(a))
	switch op {
	case Add:
		for i := range a {
			out[i] = a[i] + b[i]
		}
	case Sub:
		for i := range a {
			out[i] = a[i] - b[i]
		}
	case Mul:
		for i := range a {
			out[i] = a[i] * b[i]
		}
	case Div:
		if isInt {
			for i := range a {
				if b[i] == 0 {
					if valid.Get(i) {
						return nil, errDivZero
					}
					continue
				}
				out[i] = a[i] / b[i]
			}
		} else {
			for i := range a {
				out[i] = a[i] / b[i]
			}
		}
	case Mod:
		if !isInt {
			return nil, fmt.Errorf("compute: %% requires integer operands")
		}
		for i := range a {
			if b[i] == 0 {
				if valid.Get(i) {
					return nil, errDivZero
				}
				continue
			}
			out[i] = mod(a[i], b[i])
		}
	}
	return out, nil
}

// mod computes a%b using integer semantics; float instantiations never call
// it (guarded by isInt), but the expression must still compile, so we route
// through int64.
func mod[T arithNum](a, b T) T { return T(int64(a) % int64(b)) }

// resultType computes the output type of `a op b` for same-kind operands,
// handling decimal scale arithmetic.
func resultType(op ArithOp, ta, tb *arrow.DataType) *arrow.DataType {
	if ta.ID == arrow.DECIMAL || tb.ID == arrow.DECIMAL {
		sa, sb := ta.Scale, tb.Scale
		switch op {
		case Mul:
			return arrow.Decimal(18, sa+sb)
		case Div:
			// The planner rewrites decimal division to float; direct calls
			// get a conservative widened scale.
			return arrow.Decimal(18, max(sa, sb)+4)
		default:
			return arrow.Decimal(18, max(sa, sb))
		}
	}
	return ta
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Arith evaluates `a op b` element-wise. Operands must share a physical
// kind; for decimals they must share a scale for +/- (the planner coerces).
func Arith(op ArithOp, a, b arrow.Array) (arrow.Array, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("compute: arithmetic length mismatch %d vs %d", a.Len(), b.Len())
	}
	valid := andValidity(a, b)
	out := resultType(op, a.DataType(), b.DataType())
	switch physicalKind(a.DataType()) {
	case kindI8:
		x, y := numArrays[int8](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindI16:
		x, y := numArrays[int16](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindI32:
		x, y := numArrays[int32](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindI64:
		x, y := numArrays[int64](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		if err != nil {
			return nil, err
		}
		if a.DataType().ID == arrow.DECIMAL && op == Div {
			return nil, fmt.Errorf("compute: decimal division must be rewritten to float division")
		}
		return arrow.NewNumeric(out, vs, valid), nil
	case kindU8:
		x, y := numArrays[uint8](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindU16:
		x, y := numArrays[uint16](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindU32:
		x, y := numArrays[uint32](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindU64:
		x, y := numArrays[uint64](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, true)
		return arrow.NewNumeric(out, vs, valid), err
	case kindF32:
		x, y := numArrays[float32](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, false)
		return arrow.NewNumeric(out, vs, valid), err
	case kindF64:
		x, y := numArrays[float64](a, b)
		vs, err := arithVecVec(op, x.Values(), y.Values(), valid, false)
		return arrow.NewNumeric(out, vs, valid), err
	}
	return nil, fmt.Errorf("compute: arithmetic unsupported for %s", a.DataType())
}

// ArithScalar evaluates `a op s` (or `s op a` when scalarLeft) with a
// broadcast scalar operand.
func ArithScalar(op ArithOp, a arrow.Array, s arrow.Scalar, scalarLeft bool) (arrow.Array, error) {
	n := a.Len()
	if s.Null {
		b := arrow.NewBuilder(resultType(op, a.DataType(), s.Type))
		for i := 0; i < n; i++ {
			b.AppendNull()
		}
		return b.Finish(), nil
	}
	var ta, tb *arrow.DataType
	if scalarLeft {
		ta, tb = s.Type, a.DataType()
	} else {
		ta, tb = a.DataType(), s.Type
	}
	out := resultType(op, ta, tb)
	valid := a.Validity().Clone()
	switch physicalKind(a.DataType()) {
	case kindI8:
		return scalarArith(op, a.(*arrow.Int8Array), int8(s.AsInt64()), scalarLeft, out, valid, true)
	case kindI16:
		return scalarArith(op, a.(*arrow.Int16Array), int16(s.AsInt64()), scalarLeft, out, valid, true)
	case kindI32:
		return scalarArith(op, a.(*arrow.Int32Array), int32(s.AsInt64()), scalarLeft, out, valid, true)
	case kindI64:
		if a.DataType().ID == arrow.DECIMAL && op == Div {
			return nil, fmt.Errorf("compute: decimal division must be rewritten to float division")
		}
		return scalarArith(op, a.(*arrow.Int64Array), s.AsInt64(), scalarLeft, out, valid, true)
	case kindU8:
		return scalarArith(op, a.(*arrow.Uint8Array), uint8(s.AsInt64()), scalarLeft, out, valid, true)
	case kindU16:
		return scalarArith(op, a.(*arrow.Uint16Array), uint16(s.AsInt64()), scalarLeft, out, valid, true)
	case kindU32:
		return scalarArith(op, a.(*arrow.Uint32Array), uint32(s.AsInt64()), scalarLeft, out, valid, true)
	case kindU64:
		return scalarArith(op, a.(*arrow.Uint64Array), uint64(s.AsInt64()), scalarLeft, out, valid, true)
	case kindF32:
		return scalarArith(op, a.(*arrow.Float32Array), float32(s.AsFloat64()), scalarLeft, out, valid, false)
	case kindF64:
		return scalarArith(op, a.(*arrow.Float64Array), s.AsFloat64(), scalarLeft, out, valid, false)
	}
	return nil, fmt.Errorf("compute: scalar arithmetic unsupported for %s", a.DataType())
}

func scalarArith[T arithNum](op ArithOp, a *arrow.NumericArray[T], s T, scalarLeft bool, out *arrow.DataType, valid arrow.Bitmap, isInt bool) (arrow.Array, error) {
	av := a.Values()
	res := make([]T, len(av))
	apply := func(x, y T) (T, error) {
		switch op {
		case Add:
			return x + y, nil
		case Sub:
			return x - y, nil
		case Mul:
			return x * y, nil
		case Div:
			if isInt && y == 0 {
				return 0, errDivZero
			}
			return x / y, nil
		default:
			if !isInt {
				return 0, fmt.Errorf("compute: %% requires integer operands")
			}
			if y == 0 {
				return 0, errDivZero
			}
			return mod(x, y), nil
		}
	}
	// Fast paths for the common commutative/simple cases.
	switch {
	case op == Add && !scalarLeft:
		for i, v := range av {
			res[i] = v + s
		}
	case op == Mul && !scalarLeft:
		for i, v := range av {
			res[i] = v * s
		}
	case op == Sub && !scalarLeft:
		for i, v := range av {
			res[i] = v - s
		}
	case op == Sub && scalarLeft:
		for i, v := range av {
			res[i] = s - v
		}
	default:
		for i, v := range av {
			if valid != nil && !valid.Get(i) {
				continue
			}
			x, y := v, s
			if scalarLeft {
				x, y = s, v
			}
			r, err := apply(x, y)
			if err != nil {
				return nil, err
			}
			res[i] = r
		}
	}
	return arrow.NewNumeric(out, res, valid), nil
}

// Negate returns -a for numeric arrays.
func Negate(a arrow.Array) (arrow.Array, error) {
	return ArithScalar(Sub, a, arrow.Scalar{Type: a.DataType(), Val: zeroOf(a.DataType())}, true)
}

func zeroOf(t *arrow.DataType) any {
	switch physicalKind(t) {
	case kindI8:
		return int8(0)
	case kindI16:
		return int16(0)
	case kindI32:
		return int32(0)
	case kindI64:
		return int64(0)
	case kindU8:
		return uint8(0)
	case kindU16:
		return uint16(0)
	case kindU32:
		return uint32(0)
	case kindU64:
		return uint64(0)
	case kindF32:
		return float32(0)
	default:
		return float64(0)
	}
}
