package compute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gofusion/internal/arrow"
)

// tri represents three-valued logic: -1 = NULL, 0 = FALSE, 1 = TRUE.
type tri int

func triOf(a *arrow.BoolArray, i int) tri {
	if a.IsNull(i) {
		return -1
	}
	if a.Value(i) {
		return 1
	}
	return 0
}

func refAnd(a, b tri) tri {
	if a == 0 || b == 0 {
		return 0
	}
	if a == -1 || b == -1 {
		return -1
	}
	return 1
}

func refOr(a, b tri) tri {
	if a == 1 || b == 1 {
		return 1
	}
	if a == -1 || b == -1 {
		return -1
	}
	return 0
}

func triArray(vals []tri) *arrow.BoolArray {
	b := arrow.NewBoolBuilder()
	for _, v := range vals {
		switch v {
		case -1:
			b.AppendNull()
		case 0:
			b.Append(false)
		default:
			b.Append(true)
		}
	}
	return b.Finish().(*arrow.BoolArray)
}

func TestThreeValuedTruthTable(t *testing.T) {
	states := []tri{-1, 0, 1}
	var as, bs []tri
	for _, x := range states {
		for _, y := range states {
			as = append(as, x)
			bs = append(bs, y)
		}
	}
	a, b := triArray(as), triArray(bs)
	andOut, err := And(a, b)
	if err != nil {
		t.Fatal(err)
	}
	orOut, err := Or(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if got, want := triOf(andOut, i), refAnd(as[i], bs[i]); got != want {
			t.Fatalf("AND(%d,%d) = %d, want %d", as[i], bs[i], got, want)
		}
		if got, want := triOf(orOut, i), refOr(as[i], bs[i]); got != want {
			t.Fatalf("OR(%d,%d) = %d, want %d", as[i], bs[i], got, want)
		}
	}
}

// Property: byte-wise AND/OR agree with the truth table on random arrays,
// including the nil-validity fast path.
func TestBooleanKernelsProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8, aNulls, bNulls bool) bool {
		n := int(nSmall)%120 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randBoolArray(rng, n, aNulls)
		b := randBoolArray(rng, n, bNulls)
		andOut, err := And(a, b)
		if err != nil {
			return false
		}
		orOut, err := Or(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if triOf(andOut, i) != refAnd(triOf(a, i), triOf(b, i)) {
				return false
			}
			if triOf(orOut, i) != refOr(triOf(a, i), triOf(b, i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNot(t *testing.T) {
	a := triArray([]tri{1, 0, -1})
	out := Not(a)
	if out.Value(0) || !out.Value(1) || !out.IsNull(2) {
		t.Fatal("NOT wrong")
	}
}

func TestIsNullMask(t *testing.T) {
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	b.Append(1)
	b.AppendNull()
	a := b.Finish()
	m := IsNullMask(a)
	if m.Value(0) || !m.Value(1) || m.NullCount() != 0 {
		t.Fatal("IsNullMask wrong")
	}
	nm := IsNotNullMask(a)
	if !nm.Value(0) || nm.Value(1) {
		t.Fatal("IsNotNullMask wrong")
	}
	// NullArray is all null.
	na := IsNullMask(arrow.NewNull(2))
	if !na.Value(0) || !na.Value(1) {
		t.Fatal("NullArray IsNull wrong")
	}
}

func TestCoalesceBoolToFalse(t *testing.T) {
	a := triArray([]tri{1, -1, 0})
	out := CoalesceBoolToFalse(a)
	if out.NullCount() != 0 || !out.Value(0) || out.Value(1) || out.Value(2) {
		t.Fatal("coalesce wrong")
	}
	// No-null input returned as-is.
	b := triArray([]tri{1, 0})
	if CoalesceBoolToFalse(b) != b {
		t.Fatal("should return same array when no nulls")
	}
}
