package compute

import (
	"sort"

	"gofusion/internal/arrow"
)

// SortKey describes one sort column with SQL ordering options.
type SortKey struct {
	// Col indexes into the column list passed to SortToIndices.
	Col        int
	Descending bool
	NullsFirst bool
}

// CompareRows compares row i of cols against row j under the sort keys,
// returning a negative, zero, or positive result. This is the generic
// (boxed) comparator; hot sorts use the rowformat package instead.
func CompareRows(cols []arrow.Array, keys []SortKey, i, j int) int {
	for _, k := range keys {
		a := cols[k.Col]
		ni, nj := a.IsNull(i), a.IsNull(j)
		var c int
		switch {
		case ni && nj:
			c = 0
		case ni:
			if k.NullsFirst {
				c = -1
			} else {
				c = 1
			}
		case nj:
			if k.NullsFirst {
				c = 1
			} else {
				c = -1
			}
		default:
			c = compareAt(a, i, j)
			if k.Descending {
				c = -c
			}
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

func compareAt(a arrow.Array, i, j int) int {
	switch arr := a.(type) {
	case *arrow.Int64Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Int32Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Int16Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Int8Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Uint64Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Uint32Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Uint16Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Uint8Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Float64Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.Float32Array:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.StringArray:
		return cmpOrd(arr.Value(i), arr.Value(j))
	case *arrow.BoolArray:
		return b2i(arr.Value(i)) - b2i(arr.Value(j))
	default:
		return CompareScalars(a.GetScalar(i), a.GetScalar(j))
	}
}

func cmpOrd[T interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~float32 | ~float64 | ~string
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// SortToIndices returns row indices that order the columns by the sort
// keys. The sort is stable so ties preserve input order.
func SortToIndices(cols []arrow.Array, keys []SortKey, numRows int) []int32 {
	indices := make([]int32, numRows)
	for i := range indices {
		indices[i] = int32(i)
	}
	sort.SliceStable(indices, func(x, y int) bool {
		return CompareRows(cols, keys, int(indices[x]), int(indices[y])) < 0
	})
	return indices
}
