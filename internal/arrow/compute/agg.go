package compute

import (
	"fmt"
	"math"

	"gofusion/internal/arrow"
)

// Column-level aggregation primitives. These compute over entire arrays and
// are used for ungrouped aggregates, file statistics, and pruning metadata.

// SumInt64 sums an integer-backed array (Int*, Decimal, Timestamp) skipping
// nulls, returning the sum and the number of valid values.
func SumInt64(a arrow.Array) (int64, int64) {
	switch arr := a.(type) {
	case *arrow.Int64Array:
		return sumNum(arr)
	case *arrow.Int32Array:
		return sumNum(arr)
	case *arrow.Int16Array:
		return sumNum(arr)
	case *arrow.Int8Array:
		return sumNum(arr)
	case *arrow.Uint64Array:
		return sumNum(arr)
	case *arrow.Uint32Array:
		return sumNum(arr)
	case *arrow.Uint16Array:
		return sumNum(arr)
	case *arrow.Uint8Array:
		return sumNum(arr)
	}
	panic(fmt.Sprintf("compute: SumInt64 on %s", a.DataType()))
}

func sumNum[T arrow.Number](a *arrow.NumericArray[T]) (int64, int64) {
	vals := a.Values()
	var sum int64
	if a.NullCount() == 0 {
		for _, v := range vals {
			sum += int64(v)
		}
		return sum, int64(len(vals))
	}
	var count int64
	for i, v := range vals {
		if a.IsValid(i) {
			sum += int64(v)
			count++
		}
	}
	return sum, count
}

// SumFloat64 sums a float or any numeric array as float64, skipping nulls.
func SumFloat64(a arrow.Array) (float64, int64) {
	switch arr := a.(type) {
	case *arrow.Float64Array:
		return sumFloat(arr)
	case *arrow.Float32Array:
		return sumFloat(arr)
	default:
		s, c := SumInt64(a)
		if a.DataType().ID == arrow.DECIMAL {
			return float64(s) / math.Pow10(a.DataType().Scale), c
		}
		return float64(s), c
	}
}

func sumFloat[T ~float32 | ~float64](a *arrow.NumericArray[T]) (float64, int64) {
	vals := a.Values()
	var sum float64
	if a.NullCount() == 0 {
		for _, v := range vals {
			sum += float64(v)
		}
		return sum, int64(len(vals))
	}
	var count int64
	for i, v := range vals {
		if a.IsValid(i) {
			sum += float64(v)
			count++
		}
	}
	return sum, count
}

// MinMax returns the minimum and maximum valid values of an array as
// scalars, with ok=false when the array has no valid values.
func MinMax(a arrow.Array) (minS, maxS arrow.Scalar, ok bool) {
	t := a.DataType()
	first := true
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) {
			continue
		}
		s := a.GetScalar(i)
		if first {
			minS, maxS, first = s, s, false
			continue
		}
		if CompareScalars(s, minS) < 0 {
			minS = s
		}
		if CompareScalars(s, maxS) > 0 {
			maxS = s
		}
	}
	if first {
		return arrow.NullScalar(t), arrow.NullScalar(t), false
	}
	return minS, maxS, true
}

// MinMaxFast computes min/max with type-specialized loops; it falls back to
// MinMax for types without a fast path.
func MinMaxFast(a arrow.Array) (arrow.Scalar, arrow.Scalar, bool) {
	switch arr := a.(type) {
	case *arrow.Int64Array:
		return minMaxNum(arr)
	case *arrow.Int32Array:
		return minMaxNum(arr)
	case *arrow.Float64Array:
		return minMaxNum(arr)
	case *arrow.StringArray:
		return minMaxString(arr)
	default:
		return MinMax(a)
	}
}

func minMaxNum[T arrow.Number](a *arrow.NumericArray[T]) (arrow.Scalar, arrow.Scalar, bool) {
	vals := a.Values()
	t := a.DataType()
	if a.NullCount() == 0 && len(vals) > 0 {
		mn, mx := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return arrow.NewScalar(t, mn), arrow.NewScalar(t, mx), true
	}
	first := true
	var mn, mx T
	for i, v := range vals {
		if !a.IsValid(i) {
			continue
		}
		if first {
			mn, mx, first = v, v, false
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if first {
		return arrow.NullScalar(t), arrow.NullScalar(t), false
	}
	return arrow.NewScalar(t, mn), arrow.NewScalar(t, mx), true
}

func minMaxString(a *arrow.StringArray) (arrow.Scalar, arrow.Scalar, bool) {
	first := true
	var mn, mx string
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) {
			continue
		}
		v := a.Value(i)
		if first {
			mn, mx, first = v, v, false
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if first {
		return arrow.NullScalar(a.DataType()), arrow.NullScalar(a.DataType()), false
	}
	// Copy out of the shared buffer.
	return arrow.NewScalar(a.DataType(), string([]byte(mn))), arrow.NewScalar(a.DataType(), string([]byte(mx))), true
}

// CountValid returns the number of non-null slots.
func CountValid(a arrow.Array) int64 {
	return int64(a.Len() - a.NullCount())
}
