package compute

import (
	"bytes"
	"fmt"

	"gofusion/internal/arrow"
)

// CmpOp identifies a comparison operator.
type CmpOp int

// Comparison operators with SQL semantics (NULL operands produce NULL).
const (
	Eq CmpOp = iota
	Neq
	Lt
	LtEq
	Gt
	GtEq
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (op CmpOp) String() string { return cmpNames[op] }

// Negate returns the logically negated operator (e.g. Lt -> GtEq).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case Eq:
		return Neq
	case Neq:
		return Eq
	case Lt:
		return GtEq
	case LtEq:
		return Gt
	case Gt:
		return LtEq
	default:
		return Lt
	}
}

// Flip returns the operator with sides swapped (e.g. a < b  ==  b > a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case Lt:
		return Gt
	case LtEq:
		return GtEq
	case Gt:
		return Lt
	case GtEq:
		return LtEq
	default:
		return op
	}
}

type orderedNum interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~float32 | ~float64
}

func cmpVecVec[T orderedNum](op CmpOp, a, b []T) arrow.Bitmap {
	out := arrow.NewBitmap(len(a))
	switch op {
	case Eq:
		for i := range a {
			if a[i] == b[i] {
				out.Set(i)
			}
		}
	case Neq:
		for i := range a {
			if a[i] != b[i] {
				out.Set(i)
			}
		}
	case Lt:
		for i := range a {
			if a[i] < b[i] {
				out.Set(i)
			}
		}
	case LtEq:
		for i := range a {
			if a[i] <= b[i] {
				out.Set(i)
			}
		}
	case Gt:
		for i := range a {
			if a[i] > b[i] {
				out.Set(i)
			}
		}
	case GtEq:
		for i := range a {
			if a[i] >= b[i] {
				out.Set(i)
			}
		}
	}
	return out
}

func cmpVecScalar[T orderedNum](op CmpOp, a []T, s T) arrow.Bitmap {
	out := arrow.NewBitmap(len(a))
	switch op {
	case Eq:
		for i := range a {
			if a[i] == s {
				out.Set(i)
			}
		}
	case Neq:
		for i := range a {
			if a[i] != s {
				out.Set(i)
			}
		}
	case Lt:
		for i := range a {
			if a[i] < s {
				out.Set(i)
			}
		}
	case LtEq:
		for i := range a {
			if a[i] <= s {
				out.Set(i)
			}
		}
	case Gt:
		for i := range a {
			if a[i] > s {
				out.Set(i)
			}
		}
	case GtEq:
		for i := range a {
			if a[i] >= s {
				out.Set(i)
			}
		}
	}
	return out
}

func holds(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Neq:
		return c != 0
	case Lt:
		return c < 0
	case LtEq:
		return c <= 0
	case Gt:
		return c > 0
	default:
		return c >= 0
	}
}

func numArrays[T arrow.Number](a, b arrow.Array) (*arrow.NumericArray[T], *arrow.NumericArray[T]) {
	return a.(*arrow.NumericArray[T]), b.(*arrow.NumericArray[T])
}

// Compare evaluates `a op b` element-wise. Both arrays must have the same
// length and compatible physical types (the planner coerces logical types).
func Compare(op CmpOp, a, b arrow.Array) (*arrow.BoolArray, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("compute: compare length mismatch %d vs %d", a.Len(), b.Len())
	}
	n := a.Len()
	valid := andValidity(a, b)
	ta, tb := a.DataType(), b.DataType()
	if physicalKind(ta) != physicalKind(tb) {
		return nil, fmt.Errorf("compute: cannot compare %s with %s", ta, tb)
	}
	var vals arrow.Bitmap
	switch physicalKind(ta) {
	case kindI8:
		x, y := numArrays[int8](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindI16:
		x, y := numArrays[int16](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindI32:
		x, y := numArrays[int32](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindI64:
		x, y := numArrays[int64](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindU8:
		x, y := numArrays[uint8](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindU16:
		x, y := numArrays[uint16](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindU32:
		x, y := numArrays[uint32](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindU64:
		x, y := numArrays[uint64](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindF32:
		x, y := numArrays[float32](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindF64:
		x, y := numArrays[float64](a, b)
		vals = cmpVecVec(op, x.Values(), y.Values())
	case kindStr:
		x, y := a.(*arrow.StringArray), b.(*arrow.StringArray)
		vals = arrow.NewBitmap(n)
		for i := 0; i < n; i++ {
			if holds(op, bytes.Compare(x.ValueBytes(i), y.ValueBytes(i))) {
				vals.Set(i)
			}
		}
	case kindBool:
		x, y := a.(*arrow.BoolArray), b.(*arrow.BoolArray)
		vals = arrow.NewBitmap(n)
		for i := 0; i < n; i++ {
			xv, yv := b2i(x.Value(i)), b2i(y.Value(i))
			if holds(op, xv-yv) {
				vals.Set(i)
			}
		}
	default:
		return nil, fmt.Errorf("compute: comparison unsupported for %s", ta)
	}
	return arrow.NewBool(vals, valid, n), nil
}

// CompareScalar evaluates `a op s` element-wise with a broadcast scalar.
func CompareScalar(op CmpOp, a arrow.Array, s arrow.Scalar) (*arrow.BoolArray, error) {
	n := a.Len()
	if s.Null {
		return arrow.NewBool(arrow.NewBitmap(n), arrow.NewBitmap(n), n), nil
	}
	valid := a.Validity().Clone()
	var vals arrow.Bitmap
	switch physicalKind(a.DataType()) {
	case kindI8:
		vals = cmpVecScalar(op, a.(*arrow.Int8Array).Values(), int8(s.AsInt64()))
	case kindI16:
		vals = cmpVecScalar(op, a.(*arrow.Int16Array).Values(), int16(s.AsInt64()))
	case kindI32:
		vals = cmpVecScalar(op, a.(*arrow.Int32Array).Values(), int32(s.AsInt64()))
	case kindI64:
		vals = cmpVecScalar(op, a.(*arrow.Int64Array).Values(), s.AsInt64())
	case kindU8:
		vals = cmpVecScalar(op, a.(*arrow.Uint8Array).Values(), uint8(s.AsInt64()))
	case kindU16:
		vals = cmpVecScalar(op, a.(*arrow.Uint16Array).Values(), uint16(s.AsInt64()))
	case kindU32:
		vals = cmpVecScalar(op, a.(*arrow.Uint32Array).Values(), uint32(s.AsInt64()))
	case kindU64:
		vals = cmpVecScalar(op, a.(*arrow.Uint64Array).Values(), uint64(s.AsInt64()))
	case kindF32:
		vals = cmpVecScalar(op, a.(*arrow.Float32Array).Values(), float32(s.AsFloat64()))
	case kindF64:
		vals = cmpVecScalar(op, a.(*arrow.Float64Array).Values(), s.AsFloat64())
	case kindStr:
		x := a.(*arrow.StringArray)
		sv := []byte(s.AsString())
		vals = arrow.NewBitmap(n)
		switch op {
		case Eq:
			for i := 0; i < n; i++ {
				if bytes.Equal(x.ValueBytes(i), sv) {
					vals.Set(i)
				}
			}
		case Neq:
			for i := 0; i < n; i++ {
				if !bytes.Equal(x.ValueBytes(i), sv) {
					vals.Set(i)
				}
			}
		default:
			for i := 0; i < n; i++ {
				if holds(op, bytes.Compare(x.ValueBytes(i), sv)) {
					vals.Set(i)
				}
			}
		}
	case kindBool:
		x := a.(*arrow.BoolArray)
		sv := b2i(s.AsBool())
		vals = arrow.NewBitmap(n)
		for i := 0; i < n; i++ {
			if holds(op, b2i(x.Value(i))-sv) {
				vals.Set(i)
			}
		}
	default:
		return nil, fmt.Errorf("compute: scalar comparison unsupported for %s", a.DataType())
	}
	return arrow.NewBool(vals, valid, n), nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

type physKind int

const (
	kindOther physKind = iota
	kindBool
	kindI8
	kindI16
	kindI32
	kindI64
	kindU8
	kindU16
	kindU32
	kindU64
	kindF32
	kindF64
	kindStr
)

// physicalKind maps logical types onto their physical representation so
// kernels can share code (Int64 / Timestamp / Decimal are all kindI64).
func physicalKind(t *arrow.DataType) physKind {
	switch t.ID {
	case arrow.BOOL:
		return kindBool
	case arrow.INT8:
		return kindI8
	case arrow.INT16:
		return kindI16
	case arrow.INT32, arrow.DATE32:
		return kindI32
	case arrow.INT64, arrow.TIMESTAMP, arrow.DECIMAL:
		return kindI64
	case arrow.UINT8:
		return kindU8
	case arrow.UINT16:
		return kindU16
	case arrow.UINT32:
		return kindU32
	case arrow.UINT64:
		return kindU64
	case arrow.FLOAT32:
		return kindF32
	case arrow.FLOAT64:
		return kindF64
	case arrow.STRING, arrow.BINARY:
		return kindStr
	}
	return kindOther
}

func andValidity(a, b arrow.Array) arrow.Bitmap {
	av, bv := a.Validity(), b.Validity()
	if av == nil && bv == nil {
		return nil
	}
	out := arrow.NewBitmap(a.Len())
	out.And(av, bv, a.Len())
	return out
}

// CompareScalars compares two scalars of the same physical kind, returning
// -1, 0, or 1. Null ordering is not handled here; callers must check first.
func CompareScalars(a, b arrow.Scalar) int {
	switch physicalKind(a.Type) {
	case kindBool:
		return b2i(a.AsBool()) - b2i(b.AsBool())
	case kindF32, kindF64:
		x, y := a.AsFloat64(), b.AsFloat64()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case kindStr:
		x, y := a.AsString(), b.AsString()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case kindU64:
		x, y := uint64(a.AsInt64()), uint64(b.AsInt64())
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default:
		x, y := a.AsInt64(), b.AsInt64()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
}
