package compute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gofusion/internal/arrow"
)

// randInt64Array builds a random Int64 array with ~20% nulls.
func randInt64Array(rng *rand.Rand, n int) *arrow.Int64Array {
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			b.AppendNull()
		} else {
			b.Append(rng.Int63n(100) - 50)
		}
	}
	return b.Finish().(*arrow.Int64Array)
}

func randBoolArray(rng *rand.Rand, n int, withNulls bool) *arrow.BoolArray {
	b := arrow.NewBoolBuilder()
	for i := 0; i < n; i++ {
		if withNulls && rng.Intn(4) == 0 {
			b.AppendNull()
		} else {
			b.Append(rng.Intn(2) == 0)
		}
	}
	return b.Finish().(*arrow.BoolArray)
}

func TestFilterNumeric(t *testing.T) {
	a := arrow.NewInt64([]int64{1, 2, 3, 4, 5})
	mask := arrow.NewBoolFromSlice([]bool{true, false, true, false, true})
	out, err := Filter(a, mask)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*arrow.Int64Array)
	want := []int64{1, 3, 5}
	if got.Len() != 3 {
		t.Fatalf("len=%d", got.Len())
	}
	for i, w := range want {
		if got.Value(i) != w {
			t.Fatalf("got[%d]=%d want %d", i, got.Value(i), w)
		}
	}
}

func TestFilterNullMaskDropsRows(t *testing.T) {
	a := arrow.NewInt64([]int64{1, 2, 3})
	mb := arrow.NewBoolBuilder()
	mb.Append(true)
	mb.AppendNull()
	mb.Append(true)
	mask := mb.Finish().(*arrow.BoolArray)
	out, err := Filter(a, mask)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.(*arrow.Int64Array).Value(1) != 3 {
		t.Fatal("NULL mask slots must be dropped")
	}
}

// Property: Filter(a, mask) equals the scalar reference for all array kinds.
func TestFilterMatchesReference(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randInt64Array(rng, n)
		mask := randBoolArray(rng, n, true)
		out, err := Filter(a, mask)
		if err != nil {
			return false
		}
		var want []arrow.Scalar
		for i := 0; i < n; i++ {
			if mask.IsValid(i) && mask.Value(i) {
				want = append(want, a.GetScalar(i))
			}
		}
		if out.Len() != len(want) {
			return false
		}
		for i, w := range want {
			if !out.GetScalar(i).Equal(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTakeWithNullIndices(t *testing.T) {
	a := arrow.NewStringFromSlice([]string{"a", "b", "c"})
	out := Take(a, []int32{2, -1, 0, 0}).(*arrow.StringArray)
	if out.Len() != 4 || out.Value(0) != "c" || !out.IsNull(1) || out.Value(3) != "a" {
		t.Fatalf("take wrong: %v", out)
	}
}

// Property: Take on random indices equals scalar gather.
func TestTakeMatchesReference(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randInt64Array(rng, n)
		indices := make([]int32, rng.Intn(80))
		for i := range indices {
			indices[i] = int32(rng.Intn(n+1)) - 1 // may be -1
		}
		out := Take(a, indices)
		for i, idx := range indices {
			var want arrow.Scalar
			if idx < 0 {
				want = arrow.NullScalar(arrow.Int64)
			} else {
				want = a.GetScalar(int(idx))
			}
			if !out.GetScalar(i).Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareOps(t *testing.T) {
	a := arrow.NewInt64([]int64{1, 5, 3})
	b := arrow.NewInt64([]int64{2, 5, 1})
	cases := []struct {
		op   CmpOp
		want []bool
	}{
		{Eq, []bool{false, true, false}},
		{Neq, []bool{true, false, true}},
		{Lt, []bool{true, false, false}},
		{LtEq, []bool{true, true, false}},
		{Gt, []bool{false, false, true}},
		{GtEq, []bool{false, true, true}},
	}
	for _, c := range cases {
		out, err := Compare(c.op, a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range c.want {
			if out.Value(i) != w {
				t.Fatalf("op %v slot %d: got %v want %v", c.op, i, out.Value(i), w)
			}
		}
	}
}

func TestCompareNullPropagation(t *testing.T) {
	ab := arrow.NewNumericBuilder[int64](arrow.Int64)
	ab.Append(1)
	ab.AppendNull()
	a := ab.Finish()
	b := arrow.NewInt64([]int64{1, 1})
	out, err := Compare(Eq, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Value(0) || !out.IsNull(1) {
		t.Fatal("null must propagate through comparison")
	}
}

func TestCompareScalarString(t *testing.T) {
	a := arrow.NewStringFromSlice([]string{"apple", "banana", "cherry"})
	out, err := CompareScalar(GtEq, a, arrow.StringScalar("banana"))
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true}
	for i, w := range want {
		if out.Value(i) != w {
			t.Fatalf("slot %d: got %v", i, out.Value(i))
		}
	}
}

// Property: Compare and CompareScalar agree with CompareScalars reference.
func TestCompareMatchesScalarReference(t *testing.T) {
	ops := []CmpOp{Eq, Neq, Lt, LtEq, Gt, GtEq}
	f := func(seed int64, opIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		op := ops[int(opIdx)%len(ops)]
		n := rng.Intn(60) + 1
		a := randInt64Array(rng, n)
		b := randInt64Array(rng, n)
		out, err := Compare(op, a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if a.IsNull(i) || b.IsNull(i) {
				if !out.IsNull(i) {
					return false
				}
				continue
			}
			want := holds(op, CompareScalars(a.GetScalar(i), b.GetScalar(i)))
			if out.IsNull(i) || out.Value(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpOpNegateFlip(t *testing.T) {
	if Lt.Negate() != GtEq || Eq.Negate() != Neq || GtEq.Negate() != Lt {
		t.Fatal("negate wrong")
	}
	if Lt.Flip() != Gt || Eq.Flip() != Eq || LtEq.Flip() != GtEq {
		t.Fatal("flip wrong")
	}
}
