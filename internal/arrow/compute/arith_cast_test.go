package compute

import (
	"math"
	"testing"

	"gofusion/internal/arrow"
)

func TestArithBasics(t *testing.T) {
	a := arrow.NewInt64([]int64{10, 20, 30})
	b := arrow.NewInt64([]int64{3, 4, 5})
	cases := []struct {
		op   ArithOp
		want []int64
	}{
		{Add, []int64{13, 24, 35}},
		{Sub, []int64{7, 16, 25}},
		{Mul, []int64{30, 80, 150}},
		{Div, []int64{3, 5, 6}},
		{Mod, []int64{1, 0, 0}},
	}
	for _, c := range cases {
		out, err := Arith(c.op, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got := out.(*arrow.Int64Array)
		for i, w := range c.want {
			if got.Value(i) != w {
				t.Fatalf("%v: got[%d]=%d want %d", c.op, i, got.Value(i), w)
			}
		}
	}
}

func TestArithDivisionByZero(t *testing.T) {
	a := arrow.NewInt64([]int64{1})
	b := arrow.NewInt64([]int64{0})
	if _, err := Arith(Div, a, b); err == nil {
		t.Fatal("integer division by zero must error")
	}
	// Float division by zero yields Inf, not an error.
	fa := arrow.NewFloat64([]float64{1})
	fb := arrow.NewFloat64([]float64{0})
	out, err := Arith(Div, fa, fb)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.(*arrow.Float64Array).Value(0), 1) {
		t.Fatal("float 1/0 should be +Inf")
	}
	// Division by zero in a NULL slot is not an error.
	nb := arrow.NewNumericBuilder[int64](arrow.Int64)
	nb.AppendNull()
	na := nb.Finish()
	if _, err := Arith(Div, na, b); err != nil {
		t.Fatalf("null slot div by zero should not error: %v", err)
	}
}

func TestArithScalarBothSides(t *testing.T) {
	a := arrow.NewInt64([]int64{10, 20})
	out, err := ArithScalar(Sub, a, arrow.Int64Scalar(1), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*arrow.Int64Array).Value(0) != 9 {
		t.Fatal("a - s wrong")
	}
	out, err = ArithScalar(Sub, a, arrow.Int64Scalar(100), true)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*arrow.Int64Array).Value(1) != 80 {
		t.Fatal("s - a wrong")
	}
	out, err = ArithScalar(Div, a, arrow.Int64Scalar(100), true)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*arrow.Int64Array).Value(0) != 10 {
		t.Fatal("s / a wrong")
	}
}

func TestDecimalArith(t *testing.T) {
	d2 := arrow.Decimal(12, 2)
	// 1.50 and 2.25
	a := arrow.NewNumeric(d2, []int64{150}, nil)
	b := arrow.NewNumeric(d2, []int64{225}, nil)
	sum, err := Arith(Add, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DataType().Scale != 2 || sum.(*arrow.Int64Array).Value(0) != 375 {
		t.Fatalf("decimal add wrong: %v", sum)
	}
	prod, err := Arith(Mul, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 1.50*2.25 = 3.3750 at scale 4
	if prod.DataType().Scale != 4 || prod.(*arrow.Int64Array).Value(0) != 33750 {
		t.Fatalf("decimal mul wrong: scale=%d val=%d", prod.DataType().Scale, prod.(*arrow.Int64Array).Value(0))
	}
	if _, err := Arith(Div, a, b); err == nil {
		t.Fatal("decimal division must be rewritten before kernels")
	}
}

func TestNegate(t *testing.T) {
	a := arrow.NewInt64([]int64{5, -3})
	out, err := Negate(a)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*arrow.Int64Array)
	if got.Value(0) != -5 || got.Value(1) != 3 {
		t.Fatal("negate wrong")
	}
}

func TestCastNumericPaths(t *testing.T) {
	a := arrow.NewInt32([]int32{1, 2, 3})
	out, err := Cast(a, arrow.Int64)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*arrow.Int64Array).Value(2) != 3 {
		t.Fatal("int32->int64 wrong")
	}
	f, err := Cast(a, arrow.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if f.(*arrow.Float64Array).Value(1) != 2.0 {
		t.Fatal("int32->float64 wrong")
	}
}

func TestCastDecimal(t *testing.T) {
	d2 := arrow.Decimal(12, 2)
	a := arrow.NewNumeric(d2, []int64{150, -225}, nil) // 1.50, -2.25
	f, err := Cast(a, arrow.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if f.(*arrow.Float64Array).Value(0) != 1.5 || f.(*arrow.Float64Array).Value(1) != -2.25 {
		t.Fatal("decimal->float wrong")
	}
	// int -> decimal
	i := arrow.NewInt64([]int64{3})
	d, err := Cast(i, d2)
	if err != nil {
		t.Fatal(err)
	}
	if d.(*arrow.Int64Array).Value(0) != 300 {
		t.Fatal("int->decimal wrong")
	}
	// rescale decimal(2) -> decimal(4)
	d4, err := Cast(a, arrow.Decimal(18, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d4.(*arrow.Int64Array).Value(0) != 15000 {
		t.Fatal("decimal rescale wrong")
	}
	// float -> decimal rounds half away from zero on representable values
	fl := arrow.NewFloat64([]float64{1.25, 0.125})
	fd, err := Cast(fl, d2)
	if err != nil {
		t.Fatal(err)
	}
	if fd.(*arrow.Int64Array).Value(0) != 125 || fd.(*arrow.Int64Array).Value(1) != 13 {
		t.Fatalf("float->decimal = %v", fd)
	}
	// decimal -> int truncates scale
	di, err := Cast(a, arrow.Int64)
	if err != nil {
		t.Fatal(err)
	}
	if di.(*arrow.Int64Array).Value(0) != 1 {
		t.Fatal("decimal->int wrong")
	}
}

func TestCastStrings(t *testing.T) {
	s := arrow.NewStringFromSlice([]string{"42", "-7"})
	i, err := Cast(s, arrow.Int64)
	if err != nil {
		t.Fatal(err)
	}
	if i.(*arrow.Int64Array).Value(1) != -7 {
		t.Fatal("string->int wrong")
	}
	d, err := Cast(arrow.NewStringFromSlice([]string{"1995-03-15"}), arrow.Date32)
	if err != nil {
		t.Fatal(err)
	}
	if arrow.FormatDate32(d.(*arrow.Int32Array).Value(0)) != "1995-03-15" {
		t.Fatal("string->date wrong")
	}
	back, err := Cast(i, arrow.String)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*arrow.StringArray).Value(0) != "42" {
		t.Fatal("int->string wrong")
	}
	if _, err := Cast(s, arrow.Date32); err == nil {
		t.Fatal("bad date parse must error")
	}
}

func TestCastNullArray(t *testing.T) {
	out, err := Cast(arrow.NewNull(3), arrow.Int64)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.NullCount() != 3 {
		t.Fatal("null cast wrong")
	}
}

func TestCastScalar(t *testing.T) {
	s, err := CastScalar(arrow.Int64Scalar(5), arrow.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if s.AsFloat64() != 5.0 {
		t.Fatal("scalar cast wrong")
	}
	n, err := CastScalar(arrow.NullScalar(arrow.Int64), arrow.String)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Null {
		t.Fatal("null scalar cast must stay null")
	}
}
