package compute

import (
	"fmt"
	"math/rand"
	"testing"

	"gofusion/internal/arrow"
)

func benchInts(n int) *arrow.Int64Array {
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	return arrow.NewInt64(vals)
}

func benchStrings(n int) *arrow.StringArray {
	b := arrow.NewStringBuilder(arrow.String)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		b.Append(fmt.Sprintf("value-%06d", rng.Intn(5000)))
	}
	return b.Finish().(*arrow.StringArray)
}

func BenchmarkCompareScalarInt64(b *testing.B) {
	a := benchInts(8192)
	b.SetBytes(8192 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompareScalar(Lt, a, arrow.Int64Scalar(500)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterInt64(b *testing.B) {
	a := benchInts(8192)
	mask, _ := CompareScalar(Lt, a, arrow.Int64Scalar(500))
	b.SetBytes(8192 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Filter(a, mask); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterString(b *testing.B) {
	a := benchStrings(8192)
	mask, _ := CompareScalar(Lt, benchInts(8192), arrow.Int64Scalar(500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Filter(a, mask); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTakeInt64(b *testing.B) {
	a := benchInts(8192)
	idx := make([]int32, 8192)
	rng := rand.New(rand.NewSource(3))
	for i := range idx {
		idx[i] = int32(rng.Intn(8192))
	}
	b.SetBytes(8192 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Take(a, idx)
	}
}

func BenchmarkHashColumns(b *testing.B) {
	ints := benchInts(8192)
	strs := benchStrings(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashColumns([]arrow.Array{ints, strs}, 8192)
	}
}

func BenchmarkArithAddInt64(b *testing.B) {
	x := benchInts(8192)
	y := benchInts(8192)
	b.SetBytes(8192 * 8 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Arith(Add, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLikeContains(b *testing.B) {
	a := benchStrings(8192)
	m, _ := CompileLike("%value-00%", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(a)
	}
}

func BenchmarkSortToIndices(b *testing.B) {
	ints := benchInts(8192)
	strs := benchStrings(8192)
	keys := []SortKey{{Col: 0}, {Col: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortToIndices([]arrow.Array{ints, strs}, keys, 8192)
	}
}

func BenchmarkCastInt64ToFloat64(b *testing.B) {
	a := benchInts(8192)
	b.SetBytes(8192 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cast(a, arrow.Float64); err != nil {
			b.Fatal(err)
		}
	}
}
