package compute

import (
	"encoding/binary"
	"math"
	"math/bits"

	"gofusion/internal/arrow"
)

// Vectorized row hashing, used by hash joins, hash aggregation and hash
// repartitioning. Hashes are 64-bit; multi-column hashes are combined with
// a multiply-rotate mix so column order matters.

const (
	hashSeed  uint64 = 0x9E3779B97F4A7C15
	hashNull  uint64 = 0xA0761D6478BD642F
	mixConst1 uint64 = 0xFF51AFD7ED558CCD
	mixConst2 uint64 = 0xC4CEB9FE1A85EC53
)

// mix64 is the finalizer from SplitMix64 / MurmurHash3, a cheap full-avalanche
// 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= mixConst1
	x ^= x >> 33
	x *= mixConst2
	x ^= x >> 33
	return x
}

// combine folds a column hash into an accumulated row hash.
func combine(acc, h uint64) uint64 {
	return bits.RotateLeft64(acc, 31) ^ mix64(h)
}

// HashBytes hashes a byte string eight bytes at a time, folding each word
// through the full-avalanche mixer. The length is seeded up front so
// prefixes sharing trailing zero bytes still hash apart.
func HashBytes(b []byte) uint64 {
	h := hashSeed ^ uint64(len(b))
	for len(b) >= 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * i)
		}
		h = mix64(h ^ tail)
	}
	return mix64(h)
}

func hashNumericInto[T arrow.Number](a *arrow.NumericArray[T], hashes []uint64, first bool) {
	vals := a.Values()
	if first {
		if a.NullCount() == 0 {
			for i, v := range vals {
				hashes[i] = mix64(uint64(int64(v)) + hashSeed)
			}
			return
		}
		for i, v := range vals {
			if a.IsNull(i) {
				hashes[i] = hashNull
			} else {
				hashes[i] = mix64(uint64(int64(v)) + hashSeed)
			}
		}
		return
	}
	if a.NullCount() == 0 {
		for i, v := range vals {
			hashes[i] = combine(hashes[i], uint64(int64(v))+hashSeed)
		}
		return
	}
	for i, v := range vals {
		if a.IsNull(i) {
			hashes[i] = combine(hashes[i], hashNull)
		} else {
			hashes[i] = combine(hashes[i], uint64(int64(v))+hashSeed)
		}
	}
}

func hashFloatInto[T ~float32 | ~float64](a *arrow.NumericArray[T], hashes []uint64, first bool) {
	vals := a.Values()
	for i, v := range vals {
		var h uint64
		if a.IsNull(i) {
			h = hashNull
		} else {
			f := float64(v)
			if f == 0 {
				f = 0 // normalize -0.0 to +0.0
			}
			h = mix64(uint64(int64fromFloat(f)) + hashSeed)
		}
		if first {
			hashes[i] = h
		} else {
			hashes[i] = combine(hashes[i], h)
		}
	}
}

func int64fromFloat(f float64) int64 {
	// Bit pattern; normalization of -0.0 happened in the caller.
	return int64(math.Float64bits(f))
}

// HashArrayInto hashes each slot of a into hashes; when first is true the
// slot hash overwrites, otherwise it is combined with the existing value.
func HashArrayInto(a arrow.Array, hashes []uint64, first bool) {
	switch arr := a.(type) {
	case *arrow.Int8Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Int16Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Int32Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Int64Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Uint8Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Uint16Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Uint32Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Uint64Array:
		hashNumericInto(arr, hashes, first)
	case *arrow.Float32Array:
		hashFloatInto(arr, hashes, first)
	case *arrow.Float64Array:
		hashFloatInto(arr, hashes, first)
	case *arrow.StringArray:
		for i := 0; i < arr.Len(); i++ {
			var h uint64
			if arr.IsNull(i) {
				h = hashNull
			} else {
				h = HashBytes(arr.ValueBytes(i))
			}
			if first {
				hashes[i] = h
			} else {
				hashes[i] = combine(hashes[i], h)
			}
		}
	case *arrow.BoolArray:
		for i := 0; i < arr.Len(); i++ {
			var h uint64
			switch {
			case arr.IsNull(i):
				h = hashNull
			case arr.Value(i):
				h = mix64(1 + hashSeed)
			default:
				h = mix64(hashSeed)
			}
			if first {
				hashes[i] = h
			} else {
				hashes[i] = combine(hashes[i], h)
			}
		}
	case *arrow.NullArray:
		for i := range hashes {
			if first {
				hashes[i] = hashNull
			} else {
				hashes[i] = combine(hashes[i], hashNull)
			}
		}
	default:
		// Slow path via boxed scalars for nested types.
		for i := 0; i < a.Len(); i++ {
			var h uint64
			if a.IsNull(i) {
				h = hashNull
			} else {
				h = HashBytes([]byte(a.GetScalar(i).String()))
			}
			if first {
				hashes[i] = h
			} else {
				hashes[i] = combine(hashes[i], h)
			}
		}
	}
}

// HashBatch computes one 64-bit hash per row across the given columns,
// reusing buf's storage when it has capacity. This is the shared hashing
// discipline for hash aggregation, hash joins and hash repartitioning:
// one call per input batch, zero steady-state allocations.
func HashBatch(cols []arrow.Array, numRows int, buf []uint64) []uint64 {
	if cap(buf) < numRows {
		buf = make([]uint64, numRows)
	} else {
		buf = buf[:numRows]
	}
	if len(cols) == 0 {
		for i := range buf {
			buf[i] = hashSeed
		}
		return buf
	}
	for ci, c := range cols {
		HashArrayInto(c, buf, ci == 0)
	}
	return buf
}

// HashColumns computes one 64-bit hash per row across the given columns.
func HashColumns(cols []arrow.Array, numRows int) []uint64 {
	return HashBatch(cols, numRows, nil)
}
