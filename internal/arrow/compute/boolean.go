package compute

import (
	"fmt"

	"gofusion/internal/arrow"
)

// byteAt returns byte i of a bitmap, treating nil as all-ones.
func byteAt(b arrow.Bitmap, i int) byte {
	if b == nil {
		return 0xFF
	}
	return b[i]
}

// And evaluates a AND b with SQL three-valued logic:
// FALSE if either side is FALSE, NULL if undetermined, TRUE otherwise.
func And(a, b *arrow.BoolArray) (*arrow.BoolArray, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("compute: AND length mismatch %d vs %d", a.Len(), b.Len())
	}
	n := a.Len()
	nb := (n + 7) / 8
	vals := arrow.NewBitmap(n)
	valid := arrow.NewBitmap(n)
	xa, xb := a.ValuesBitmap(), b.ValuesBitmap()
	va, vb := a.Validity(), b.Validity()
	allValid := va == nil && vb == nil
	for i := 0; i < nb; i++ {
		xav, xbv := byteAt(xa, i), byteAt(xb, i)
		vals[i] = xav & xbv
		if allValid {
			valid[i] = 0xFF
		} else {
			vav, vbv := byteAt(va, i), byteAt(vb, i)
			// Valid when: both valid, or a is a valid FALSE, or b is a valid FALSE.
			valid[i] = (vav & vbv) | (vav &^ xav) | (vbv &^ xbv)
			// A valid-false operand forces the value to FALSE even when the
			// other side's don't-care bit was set.
			vals[i] &= valid[i]
		}
	}
	if allValid {
		valid = nil
	}
	return arrow.NewBool(vals, valid, n), nil
}

// Or evaluates a OR b with SQL three-valued logic.
func Or(a, b *arrow.BoolArray) (*arrow.BoolArray, error) {
	if a.Len() != b.Len() {
		return nil, fmt.Errorf("compute: OR length mismatch %d vs %d", a.Len(), b.Len())
	}
	n := a.Len()
	nb := (n + 7) / 8
	vals := arrow.NewBitmap(n)
	valid := arrow.NewBitmap(n)
	xa, xb := a.ValuesBitmap(), b.ValuesBitmap()
	va, vb := a.Validity(), b.Validity()
	allValid := va == nil && vb == nil
	for i := 0; i < nb; i++ {
		xav, xbv := byteAt(xa, i), byteAt(xb, i)
		vav, vbv := byteAt(va, i), byteAt(vb, i)
		// Mask away don't-care value bits of invalid slots before OR-ing.
		vals[i] = (xav & vav) | (xbv & vbv)
		if allValid {
			valid[i] = 0xFF
		} else {
			// Valid when: both valid, or a is a valid TRUE, or b is a valid TRUE.
			valid[i] = (vav & vbv) | (vav & xav) | (vbv & xbv)
		}
	}
	if allValid {
		valid = nil
	}
	return arrow.NewBool(vals, valid, n), nil
}

// Not evaluates NOT a; NULL stays NULL.
func Not(a *arrow.BoolArray) *arrow.BoolArray {
	n := a.Len()
	nb := (n + 7) / 8
	vals := arrow.NewBitmap(n)
	xa := a.ValuesBitmap()
	for i := 0; i < nb; i++ {
		vals[i] = ^byteAt(xa, i)
	}
	if rem := n % 8; rem != 0 {
		vals[nb-1] &= byte(1<<rem) - 1
	}
	return arrow.NewBool(vals, a.Validity().Clone(), n)
}

// IsNullMask returns a non-null boolean array that is true where a is null.
func IsNullMask(a arrow.Array) *arrow.BoolArray {
	n := a.Len()
	vals := arrow.NewBitmap(n)
	if v := a.Validity(); v != nil {
		for i := 0; i < n; i++ {
			if !v.Get(i) {
				vals.Set(i)
			}
		}
	} else if a.DataType().ID == arrow.NULL {
		for i := 0; i < n; i++ {
			vals.Set(i)
		}
	}
	return arrow.NewBool(vals, nil, n)
}

// IsNotNullMask returns a non-null boolean array that is true where a is
// valid.
func IsNotNullMask(a arrow.Array) *arrow.BoolArray {
	return Not(IsNullMask(a))
}

// CoalesceBoolToFalse converts NULL slots to valid FALSE, implementing the
// final step of WHERE evaluation where NULL predicates reject rows.
func CoalesceBoolToFalse(a *arrow.BoolArray) *arrow.BoolArray {
	if a.NullCount() == 0 {
		return a
	}
	n := a.Len()
	nb := (n + 7) / 8
	vals := arrow.NewBitmap(n)
	xa, va := a.ValuesBitmap(), a.Validity()
	for i := 0; i < nb; i++ {
		vals[i] = byteAt(xa, i) & byteAt(va, i)
	}
	return arrow.NewBool(vals, nil, n)
}
