package compute

import (
	"bytes"
	"regexp"
	"strings"

	"gofusion/internal/arrow"
)

// LikeMatcher matches SQL LIKE patterns against byte strings. Patterns are
// compiled once per expression; common shapes (exact, prefix, suffix,
// contains) use direct byte comparisons and everything else falls back to a
// compiled regular expression.
type LikeMatcher struct {
	kind    likeKind
	needle  []byte
	needle2 []byte // second fragment for %a%b% shapes
	re      *regexp.Regexp
	negated bool
}

type likeKind int

const (
	likeExact     likeKind = iota // no wildcards
	likePrefix                    // abc%
	likeSuffix                    // %abc
	likeContains                  // %abc%
	likeContains2                 // %abc%def%
	likeMatchAll                  // %
	likeRegex                     // anything else
)

// CompileLike compiles a LIKE pattern. Supported wildcards: % (any run) and
// _ (any single byte); backslash escapes a wildcard.
func CompileLike(pattern string, negated bool) (*LikeMatcher, error) {
	m := &LikeMatcher{negated: negated}
	if pattern == "%" || pattern == "%%" {
		m.kind = likeMatchAll
		return m, nil
	}
	hasEscape := strings.ContainsAny(pattern, "\\_")
	if !hasEscape {
		inner := strings.Trim(pattern, "%")
		nPct := strings.Count(pattern, "%")
		switch {
		case nPct == 0:
			m.kind = likeExact
			m.needle = []byte(pattern)
			return m, nil
		case !strings.Contains(inner, "%"):
			switch {
			case strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%"):
				m.kind = likeContains
				m.needle = []byte(inner)
				return m, nil
			case strings.HasSuffix(pattern, "%") && !strings.HasPrefix(pattern, "%"):
				m.kind = likePrefix
				m.needle = []byte(inner)
				return m, nil
			case strings.HasPrefix(pattern, "%"):
				m.kind = likeSuffix
				m.needle = []byte(inner)
				return m, nil
			}
		case strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%"):
			parts := strings.Split(inner, "%")
			if len(parts) == 2 && parts[0] != "" && parts[1] != "" {
				m.kind = likeContains2
				m.needle = []byte(parts[0])
				m.needle2 = []byte(parts[1])
				return m, nil
			}
		}
	}
	// General case: translate to an anchored regexp.
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch c {
		case '\\':
			if i+1 < len(pattern) {
				i++
				sb.WriteString(regexp.QuoteMeta(string(pattern[i])))
			}
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, err
	}
	m.kind = likeRegex
	m.re = re
	return m, nil
}

// Match reports whether s matches the pattern (before negation).
func (m *LikeMatcher) match(s []byte) bool {
	switch m.kind {
	case likeMatchAll:
		return true
	case likeExact:
		return bytes.Equal(s, m.needle)
	case likePrefix:
		return bytes.HasPrefix(s, m.needle)
	case likeSuffix:
		return bytes.HasSuffix(s, m.needle)
	case likeContains:
		return bytes.Contains(s, m.needle)
	case likeContains2:
		i := bytes.Index(s, m.needle)
		if i < 0 {
			return false
		}
		return bytes.Contains(s[i+len(m.needle):], m.needle2)
	default:
		return m.re.Match(s)
	}
}

// Match reports whether s matches, applying negation.
func (m *LikeMatcher) Match(s []byte) bool { return m.match(s) != m.negated }

// Eval evaluates the pattern against every slot of a string array.
func (m *LikeMatcher) Eval(a *arrow.StringArray) *arrow.BoolArray {
	n := a.Len()
	vals := arrow.NewBitmap(n)
	for i := 0; i < n; i++ {
		if a.IsValid(i) && m.Match(a.ValueBytes(i)) {
			vals.Set(i)
		}
	}
	return arrow.NewBool(vals, a.Validity().Clone(), n)
}

// RegexpMatch evaluates a pre-compiled regular expression against every
// slot, implementing SQL REGEXP/~ operators.
func RegexpMatch(a *arrow.StringArray, re *regexp.Regexp, negated bool) *arrow.BoolArray {
	n := a.Len()
	vals := arrow.NewBitmap(n)
	for i := 0; i < n; i++ {
		if a.IsValid(i) && re.Match(a.ValueBytes(i)) != negated {
			vals.Set(i)
		}
	}
	return arrow.NewBool(vals, a.Validity().Clone(), n)
}
