package compute

import (
	"fmt"
	"math"
	"strconv"

	"gofusion/internal/arrow"
)

// Cast converts an array to the target type. Numeric widening/narrowing,
// decimal rescaling, temporal conversions, and string parse/format are
// supported; unsupported conversions return an error.
func Cast(a arrow.Array, to *arrow.DataType) (arrow.Array, error) {
	from := a.DataType()
	if from.Equal(to) {
		return a, nil
	}
	if from.ID == arrow.NULL {
		b := arrow.NewBuilder(to)
		for i := 0; i < a.Len(); i++ {
			b.AppendNull()
		}
		return b.Finish(), nil
	}
	// Fast numeric-to-numeric paths.
	if isCastableNumeric(from) && isCastableNumeric(to) {
		return castNumeric(a, to)
	}
	switch {
	case from.ID == arrow.STRING && to.ID != arrow.STRING:
		return castFromString(a.(*arrow.StringArray), to)
	case to.ID == arrow.STRING:
		return castToString(a)
	case from.ID == arrow.BOOL && to.IsNumeric():
		src := a.(*arrow.BoolArray)
		b := arrow.NewBuilder(to)
		for i := 0; i < src.Len(); i++ {
			if src.IsNull(i) {
				b.AppendNull()
			} else {
				v := int64(0)
				if src.Value(i) {
					v = 1
				}
				b.AppendScalar(numericScalar(to, float64(v), v))
			}
		}
		return b.Finish(), nil
	}
	return nil, fmt.Errorf("compute: unsupported cast %s -> %s", from, to)
}

func isCastableNumeric(t *arrow.DataType) bool {
	return t.IsNumeric() || t.ID == arrow.DATE32 || t.ID == arrow.TIMESTAMP
}

// decimalPow10 returns 10^n for small non-negative n.
func decimalPow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

func castNumeric(a arrow.Array, to *arrow.DataType) (arrow.Array, error) {
	from := a.DataType()
	n := a.Len()
	valid := a.Validity().Clone()

	// Read slot i as (int64, float64) according to the source type.
	var geti func(i int) int64
	var getf func(i int) float64
	switch physicalKind(from) {
	case kindI8:
		v := a.(*arrow.Int8Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindI16:
		v := a.(*arrow.Int16Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindI32:
		v := a.(*arrow.Int32Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindI64:
		v := a.(*arrow.Int64Array).Values()
		geti = func(i int) int64 { return v[i] }
		if from.ID == arrow.DECIMAL {
			scale := math.Pow10(from.Scale)
			getf = func(i int) float64 { return float64(v[i]) / scale }
		} else {
			getf = func(i int) float64 { return float64(v[i]) }
		}
	case kindU8:
		v := a.(*arrow.Uint8Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindU16:
		v := a.(*arrow.Uint16Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindU32:
		v := a.(*arrow.Uint32Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindU64:
		v := a.(*arrow.Uint64Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindF32:
		v := a.(*arrow.Float32Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return float64(v[i]) }
	case kindF64:
		v := a.(*arrow.Float64Array).Values()
		geti = func(i int) int64 { return int64(v[i]) }
		getf = func(i int) float64 { return v[i] }
	default:
		return nil, fmt.Errorf("compute: unsupported numeric cast from %s", from)
	}

	// Decimal sources feeding integer targets must descale first.
	if from.ID == arrow.DECIMAL && to.ID != arrow.DECIMAL && !to.IsFloat() {
		div := decimalPow10(from.Scale)
		inner := geti
		geti = func(i int) int64 { return inner(i) / div }
	}

	switch physicalKind(to) {
	case kindI8:
		out := make([]int8, n)
		for i := range out {
			out[i] = int8(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindI16:
		out := make([]int16, n)
		for i := range out {
			out[i] = int16(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindI32:
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindI64:
		if to.ID == arrow.DECIMAL {
			out := make([]int64, n)
			switch {
			case from.ID == arrow.DECIMAL:
				// Rescale between decimal scales.
				diff := to.Scale - from.Scale
				if diff >= 0 {
					m := decimalPow10(diff)
					for i := range out {
						out[i] = geti(i) * m
					}
				} else {
					d := decimalPow10(-diff)
					for i := range out {
						out[i] = geti(i) / d
					}
				}
			case from.IsFloat():
				m := math.Pow10(to.Scale)
				for i := range out {
					out[i] = int64(math.Round(getf(i) * m))
				}
			default:
				m := decimalPow10(to.Scale)
				for i := range out {
					out[i] = geti(i) * m
				}
			}
			return arrow.NewNumeric(to, out, valid), nil
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = geti(i)
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindU8:
		out := make([]uint8, n)
		for i := range out {
			out[i] = uint8(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindU16:
		out := make([]uint16, n)
		for i := range out {
			out[i] = uint16(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindU32:
		out := make([]uint32, n)
		for i := range out {
			out[i] = uint32(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindU64:
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(geti(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindF32:
		out := make([]float32, n)
		for i := range out {
			out[i] = float32(getf(i))
		}
		return arrow.NewNumeric(to, out, valid), nil
	case kindF64:
		out := make([]float64, n)
		for i := range out {
			out[i] = getf(i)
		}
		return arrow.NewNumeric(to, out, valid), nil
	}
	return nil, fmt.Errorf("compute: unsupported numeric cast %s -> %s", from, to)
}

func numericScalar(t *arrow.DataType, f float64, i int64) arrow.Scalar {
	switch physicalKind(t) {
	case kindI8:
		return arrow.NewScalar(t, int8(i))
	case kindI16:
		return arrow.NewScalar(t, int16(i))
	case kindI32:
		return arrow.NewScalar(t, int32(i))
	case kindI64:
		return arrow.NewScalar(t, i)
	case kindU8:
		return arrow.NewScalar(t, uint8(i))
	case kindU16:
		return arrow.NewScalar(t, uint16(i))
	case kindU32:
		return arrow.NewScalar(t, uint32(i))
	case kindU64:
		return arrow.NewScalar(t, uint64(i))
	case kindF32:
		return arrow.NewScalar(t, float32(f))
	default:
		return arrow.NewScalar(t, f)
	}
}

func castFromString(a *arrow.StringArray, to *arrow.DataType) (arrow.Array, error) {
	b := arrow.NewBuilder(to)
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) {
			b.AppendNull()
			continue
		}
		s := a.Value(i)
		switch to.ID {
		case arrow.BOOL:
			v, err := strconv.ParseBool(s)
			if err != nil {
				return nil, fmt.Errorf("compute: cast %q to boolean: %w", s, err)
			}
			b.AppendScalar(arrow.BoolScalar(v))
		case arrow.DATE32:
			d, err := arrow.ParseDate32(s)
			if err != nil {
				return nil, err
			}
			b.AppendScalar(arrow.NewScalar(to, d))
		case arrow.TIMESTAMP:
			ts, err := arrow.ParseTimestamp(s)
			if err != nil {
				return nil, err
			}
			b.AppendScalar(arrow.NewScalar(to, ts))
		case arrow.DECIMAL:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("compute: cast %q to decimal: %w", s, err)
			}
			b.AppendScalar(arrow.NewScalar(to, int64(math.Round(f*math.Pow10(to.Scale)))))
		case arrow.FLOAT32, arrow.FLOAT64:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("compute: cast %q to float: %w", s, err)
			}
			b.AppendScalar(numericScalar(to, f, int64(f)))
		case arrow.BINARY:
			b.AppendScalar(arrow.NewScalar(to, []byte(s)))
		default:
			if to.IsInteger() {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("compute: cast %q to %s: %w", s, to, err)
				}
				b.AppendScalar(numericScalar(to, float64(v), v))
			} else {
				return nil, fmt.Errorf("compute: unsupported cast Utf8 -> %s", to)
			}
		}
	}
	return b.Finish(), nil
}

func castToString(a arrow.Array) (arrow.Array, error) {
	b := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) {
			b.AppendNull()
			continue
		}
		b.Append(ScalarToDisplay(a.GetScalar(i)))
	}
	return b.Finish(), nil
}

// ScalarToDisplay renders a scalar value the way CAST(x AS VARCHAR) would.
func ScalarToDisplay(s arrow.Scalar) string {
	if s.Null {
		return ""
	}
	switch s.Type.ID {
	case arrow.STRING:
		return s.AsString()
	case arrow.BINARY:
		return string(s.Val.([]byte))
	case arrow.BOOL:
		return strconv.FormatBool(s.AsBool())
	case arrow.FLOAT32, arrow.FLOAT64:
		return strconv.FormatFloat(s.AsFloat64(), 'g', -1, 64)
	case arrow.DECIMAL:
		return arrow.FormatDecimal(s.AsInt64(), s.Type.Scale)
	case arrow.DATE32:
		return arrow.FormatDate32(int32(s.AsInt64()))
	case arrow.TIMESTAMP:
		return arrow.FormatTimestamp(s.AsInt64())
	default:
		return fmt.Sprintf("%v", s.Val)
	}
}

// CastScalar converts a scalar to the target type using the same rules as
// Cast.
func CastScalar(s arrow.Scalar, to *arrow.DataType) (arrow.Scalar, error) {
	if s.Type.Equal(to) {
		return s, nil
	}
	if s.Null {
		return arrow.NullScalar(to), nil
	}
	b := arrow.NewBuilder(s.Type)
	b.AppendScalar(s)
	arr, err := Cast(b.Finish(), to)
	if err != nil {
		return arrow.Scalar{}, err
	}
	return arr.GetScalar(0), nil
}
