package compute

import (
	"math/rand"
	"testing"

	"gofusion/internal/arrow"
)

func TestHashEqualValuesEqualHashes(t *testing.T) {
	a := arrow.NewInt64([]int64{5, 5, 7})
	h := HashColumns([]arrow.Array{a}, 3)
	if h[0] != h[1] {
		t.Fatal("equal values must hash equal")
	}
	if h[0] == h[2] {
		t.Fatal("different values should differ (with overwhelming probability)")
	}
}

func TestHashMultiColumnOrderMatters(t *testing.T) {
	a := arrow.NewInt64([]int64{1})
	b := arrow.NewInt64([]int64{2})
	h1 := HashColumns([]arrow.Array{a, b}, 1)
	h2 := HashColumns([]arrow.Array{b, a}, 1)
	if h1[0] == h2[0] {
		t.Fatal("column order should matter")
	}
}

func TestHashNullsAndTypes(t *testing.T) {
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	ib.AppendNull()
	ib.Append(0)
	a := ib.Finish()
	h := HashColumns([]arrow.Array{a}, 2)
	if h[0] == h[1] {
		t.Fatal("null must hash differently from zero")
	}
	// String hashing
	s := arrow.NewStringFromSlice([]string{"abc", "abc", "abd"})
	hs := HashColumns([]arrow.Array{s}, 3)
	if hs[0] != hs[1] || hs[0] == hs[2] {
		t.Fatal("string hash wrong")
	}
	// Float: -0.0 and +0.0 must hash the same (they compare equal in SQL).
	f := arrow.NewFloat64([]float64{0.0, negZero()})
	hf := HashColumns([]arrow.Array{f}, 2)
	if hf[0] != hf[1] {
		t.Fatal("-0.0 must hash like +0.0")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestHashDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 4096
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i) // sequential keys: worst case for weak hashes
	}
	_ = rng
	h := HashColumns([]arrow.Array{arrow.NewInt64(vals)}, n)
	buckets := make([]int, 64)
	for _, x := range h {
		buckets[x%64]++
	}
	for i, c := range buckets {
		if c < n/64/4 || c > n/64*4 {
			t.Fatalf("bucket %d badly skewed: %d of %d", i, c, n)
		}
	}
}

func TestConcatArrays(t *testing.T) {
	a := arrow.NewInt64([]int64{1, 2})
	bb := arrow.NewNumericBuilder[int64](arrow.Int64)
	bb.AppendNull()
	bb.Append(4)
	b := bb.Finish()
	out, err := Concat([]arrow.Array{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 || out.NullCount() != 1 || !out.IsNull(2) {
		t.Fatalf("concat wrong: %v", out)
	}
	if out.(*arrow.Int64Array).Value(3) != 4 {
		t.Fatal("concat values wrong")
	}
}

func TestConcatStringsWithSlices(t *testing.T) {
	s := arrow.NewStringFromSlice([]string{"aa", "bb", "cc", "dd"})
	sl := s.Slice(1, 2).(*arrow.StringArray) // offsets don't start at 0
	out, err := Concat([]arrow.Array{sl, s})
	if err != nil {
		t.Fatal(err)
	}
	sa := out.(*arrow.StringArray)
	want := []string{"bb", "cc", "aa", "bb", "cc", "dd"}
	for i, w := range want {
		if sa.Value(i) != w {
			t.Fatalf("concat[%d] = %q want %q", i, sa.Value(i), w)
		}
	}
}

func TestConcatBatches(t *testing.T) {
	schema := arrow.NewSchema(arrow.NewField("x", arrow.Int64, false))
	b1 := arrow.NewRecordBatch(schema, []arrow.Array{arrow.NewInt64([]int64{1})})
	b2 := arrow.NewRecordBatch(schema, []arrow.Array{arrow.NewInt64([]int64{2, 3})})
	out, err := ConcatBatches(schema, []*arrow.RecordBatch{b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatal("concat batches wrong")
	}
	empty, err := ConcatBatches(schema, nil)
	if err != nil || empty.NumRows() != 0 || empty.NumCols() != 1 {
		t.Fatal("empty concat wrong")
	}
}

func TestSumAndMinMax(t *testing.T) {
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	b.Append(5)
	b.AppendNull()
	b.Append(-2)
	a := b.Finish()
	sum, count := SumInt64(a)
	if sum != 3 || count != 2 {
		t.Fatalf("sum=%d count=%d", sum, count)
	}
	mn, mx, ok := MinMaxFast(a)
	if !ok || mn.AsInt64() != -2 || mx.AsInt64() != 5 {
		t.Fatalf("minmax wrong: %v %v", mn, mx)
	}
	fsum, fcount := SumFloat64(arrow.NewFloat64([]float64{1.5, 2.5}))
	if fsum != 4.0 || fcount != 2 {
		t.Fatal("float sum wrong")
	}
	// decimal sum as float
	dsum, _ := SumFloat64(arrow.NewNumeric(arrow.Decimal(12, 2), []int64{150}, nil))
	if dsum != 1.5 {
		t.Fatal("decimal sum wrong")
	}
	// all-null
	nb := arrow.NewNumericBuilder[int64](arrow.Int64)
	nb.AppendNull()
	_, _, ok = MinMaxFast(nb.Finish())
	if ok {
		t.Fatal("all-null minmax must be !ok")
	}
}

func TestMinMaxString(t *testing.T) {
	a := arrow.NewStringFromSlice([]string{"pear", "apple", "zebra"})
	mn, mx, ok := MinMaxFast(a)
	if !ok || mn.AsString() != "apple" || mx.AsString() != "zebra" {
		t.Fatal("string minmax wrong")
	}
}

func TestLikeShapes(t *testing.T) {
	cases := []struct {
		pattern string
		input   string
		want    bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"he%", "hello", true},
		{"he%", "ahead", false},
		{"%llo", "hello", true},
		{"%ell%", "hello", true},
		{"%ell%", "halo", false},
		{"%a%b%", "xxaxxbxx", true},
		{"%a%b%", "xxbxxaxx", false},
		{"h_llo", "hello", true},
		{"h_llo", "hllo", false},
		{"%", "anything", true},
		{"100\\%", "100%", true},
		{"100\\%", "1000", false},
		{"%special regex .*%", "has special regex .* inside", true},
	}
	for _, c := range cases {
		m, err := CompileLike(c.pattern, false)
		if err != nil {
			t.Fatalf("compile %q: %v", c.pattern, err)
		}
		if got := m.Match([]byte(c.input)); got != c.want {
			t.Fatalf("LIKE %q on %q = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
	// negation
	m, _ := CompileLike("he%", true)
	if m.Match([]byte("hello")) || !m.Match([]byte("bye")) {
		t.Fatal("NOT LIKE wrong")
	}
}

func TestLikeEval(t *testing.T) {
	b := arrow.NewStringBuilder(arrow.String)
	b.Append("google.com")
	b.AppendNull()
	b.Append("example.org")
	a := b.Finish().(*arrow.StringArray)
	m, _ := CompileLike("%google%", false)
	out := m.Eval(a)
	if !out.Value(0) || !out.IsNull(1) || out.Value(2) {
		t.Fatal("like eval wrong")
	}
}

func TestSortToIndices(t *testing.T) {
	col := arrow.NewInt64([]int64{3, 1, 2})
	idx := SortToIndices([]arrow.Array{col}, []SortKey{{Col: 0}}, 3)
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Fatalf("sort wrong: %v", idx)
	}
	idxDesc := SortToIndices([]arrow.Array{col}, []SortKey{{Col: 0, Descending: true}}, 3)
	if idxDesc[0] != 0 || idxDesc[2] != 1 {
		t.Fatalf("desc sort wrong: %v", idxDesc)
	}
}

func TestSortToIndicesNullsAndTies(t *testing.T) {
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	b.Append(2)
	b.AppendNull()
	b.Append(1)
	b.Append(2)
	col := b.Finish()
	second := arrow.NewStringFromSlice([]string{"b", "x", "y", "a"})
	// ASC NULLS LAST, tie-break by string ASC
	idx := SortToIndices([]arrow.Array{col, second}, []SortKey{{Col: 0}, {Col: 1}}, 4)
	want := []int32{2, 3, 0, 1}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("sort = %v, want %v", idx, want)
		}
	}
	// NULLS FIRST
	idxNF := SortToIndices([]arrow.Array{col}, []SortKey{{Col: 0, NullsFirst: true}}, 4)
	if idxNF[0] != 1 {
		t.Fatalf("nulls first wrong: %v", idxNF)
	}
}
