package compute

import (
	"gofusion/internal/arrow"
)

// Take gathers the elements of a at the given row indices. An index of -1
// produces a null output slot (used to materialize the unmatched side of
// outer joins).
func Take(a arrow.Array, indices []int32) arrow.Array {
	switch arr := a.(type) {
	case *arrow.Int8Array:
		return takeNumeric(arr, indices)
	case *arrow.Int16Array:
		return takeNumeric(arr, indices)
	case *arrow.Int32Array:
		return takeNumeric(arr, indices)
	case *arrow.Int64Array:
		return takeNumeric(arr, indices)
	case *arrow.Uint8Array:
		return takeNumeric(arr, indices)
	case *arrow.Uint16Array:
		return takeNumeric(arr, indices)
	case *arrow.Uint32Array:
		return takeNumeric(arr, indices)
	case *arrow.Uint64Array:
		return takeNumeric(arr, indices)
	case *arrow.Float32Array:
		return takeNumeric(arr, indices)
	case *arrow.Float64Array:
		return takeNumeric(arr, indices)
	case *arrow.StringArray:
		return takeString(arr, indices)
	case *arrow.BoolArray:
		return takeBool(arr, indices)
	case *arrow.NullArray:
		return arrow.NewNull(len(indices))
	default:
		b := arrow.NewBuilder(a.DataType())
		for _, idx := range indices {
			if idx < 0 {
				b.AppendNull()
			} else {
				b.AppendFrom(a, int(idx))
			}
		}
		return b.Finish()
	}
}

func takeNumeric[T arrow.Number](a *arrow.NumericArray[T], indices []int32) arrow.Array {
	out := make([]T, len(indices))
	vals := a.Values()
	if a.NullCount() == 0 {
		hasNeg := false
		for i, idx := range indices {
			if idx < 0 {
				hasNeg = true
				continue
			}
			out[i] = vals[idx]
		}
		if !hasNeg {
			return arrow.NewNumeric(a.DataType(), out, nil)
		}
		valid := arrow.NewBitmapSet(len(indices))
		for i, idx := range indices {
			if idx < 0 {
				valid.Clear(i)
			}
		}
		return arrow.NewNumeric(a.DataType(), out, valid)
	}
	valid := arrow.NewBitmap(len(indices))
	for i, idx := range indices {
		if idx >= 0 && a.IsValid(int(idx)) {
			out[i] = vals[idx]
			valid.Set(i)
		}
	}
	return arrow.NewNumeric(a.DataType(), out, valid)
}

func takeString(a *arrow.StringArray, indices []int32) arrow.Array {
	offsets := make([]int32, 1, len(indices)+1)
	data := make([]byte, 0, 16*len(indices))
	var valid arrow.Bitmap
	needValid := a.NullCount() > 0
	if !needValid {
		for _, idx := range indices {
			if idx < 0 {
				needValid = true
				break
			}
		}
	}
	if needValid {
		valid = arrow.NewBitmap(len(indices))
	}
	for i, idx := range indices {
		if idx >= 0 && a.IsValid(int(idx)) {
			data = append(data, a.ValueBytes(int(idx))...)
			if valid != nil {
				valid.Set(i)
			}
		}
		offsets = append(offsets, int32(len(data)))
	}
	return arrow.NewString(a.DataType(), offsets, data, valid)
}

func takeBool(a *arrow.BoolArray, indices []int32) arrow.Array {
	vals := arrow.NewBitmap(len(indices))
	var valid arrow.Bitmap
	needValid := a.NullCount() > 0
	for _, idx := range indices {
		if idx < 0 {
			needValid = true
			break
		}
	}
	if needValid {
		valid = arrow.NewBitmap(len(indices))
	}
	for i, idx := range indices {
		if idx < 0 || a.IsNull(int(idx)) {
			continue
		}
		if a.Value(int(idx)) {
			vals.Set(i)
		}
		if valid != nil {
			valid.Set(i)
		}
	}
	return arrow.NewBool(vals, valid, len(indices))
}

// TakeBatch gathers rows of every column at the given indices.
func TakeBatch(b *arrow.RecordBatch, indices []int32) *arrow.RecordBatch {
	cols := make([]arrow.Array, b.NumCols())
	for i, c := range b.Columns() {
		cols[i] = Take(c, indices)
	}
	return arrow.NewRecordBatchWithRows(b.Schema(), cols, len(indices))
}
