package compute

import (
	"fmt"

	"gofusion/internal/arrow"
)

// Concat concatenates arrays of the same type into one array.
func Concat(arrs []arrow.Array) (arrow.Array, error) {
	if len(arrs) == 0 {
		return nil, fmt.Errorf("compute: concat of zero arrays")
	}
	if len(arrs) == 1 {
		return arrs[0], nil
	}
	t := arrs[0].DataType()
	total := 0
	for _, a := range arrs {
		if !a.DataType().Equal(t) {
			return nil, fmt.Errorf("compute: concat type mismatch %s vs %s", t, a.DataType())
		}
		total += a.Len()
	}
	switch t.ID {
	case arrow.INT8:
		return concatNumeric[int8](arrs, t, total), nil
	case arrow.INT16:
		return concatNumeric[int16](arrs, t, total), nil
	case arrow.INT32, arrow.DATE32:
		return concatNumeric[int32](arrs, t, total), nil
	case arrow.INT64, arrow.TIMESTAMP, arrow.DECIMAL:
		return concatNumeric[int64](arrs, t, total), nil
	case arrow.UINT8:
		return concatNumeric[uint8](arrs, t, total), nil
	case arrow.UINT16:
		return concatNumeric[uint16](arrs, t, total), nil
	case arrow.UINT32:
		return concatNumeric[uint32](arrs, t, total), nil
	case arrow.UINT64:
		return concatNumeric[uint64](arrs, t, total), nil
	case arrow.FLOAT32:
		return concatNumeric[float32](arrs, t, total), nil
	case arrow.FLOAT64:
		return concatNumeric[float64](arrs, t, total), nil
	case arrow.STRING, arrow.BINARY:
		return concatString(arrs, t, total), nil
	case arrow.NULL:
		return arrow.NewNull(total), nil
	default:
		b := arrow.NewBuilder(t)
		for _, a := range arrs {
			for i := 0; i < a.Len(); i++ {
				b.AppendFrom(a, i)
			}
		}
		return b.Finish(), nil
	}
}

func concatNumeric[T arrow.Number](arrs []arrow.Array, t *arrow.DataType, total int) arrow.Array {
	out := make([]T, 0, total)
	anyNull := false
	for _, a := range arrs {
		if a.NullCount() > 0 {
			anyNull = true
		}
	}
	var valid arrow.Bitmap
	if anyNull {
		valid = arrow.NewBitmap(total)
	}
	pos := 0
	for _, a := range arrs {
		na := a.(*arrow.NumericArray[T])
		out = append(out, na.Values()...)
		if anyNull {
			for i := 0; i < na.Len(); i++ {
				if na.IsValid(i) {
					valid.Set(pos + i)
				}
			}
		}
		pos += na.Len()
	}
	return arrow.NewNumeric(t, out, valid)
}

func concatString(arrs []arrow.Array, t *arrow.DataType, total int) arrow.Array {
	dataLen := 0
	anyNull := false
	for _, a := range arrs {
		sa := a.(*arrow.StringArray)
		n := sa.Len()
		if n > 0 {
			dataLen += int(sa.Offsets()[n]) - int(sa.Offsets()[0])
		}
		if sa.NullCount() > 0 {
			anyNull = true
		}
	}
	offsets := make([]int32, 1, total+1)
	data := make([]byte, 0, dataLen)
	var valid arrow.Bitmap
	if anyNull {
		valid = arrow.NewBitmap(total)
	}
	pos := 0
	for _, a := range arrs {
		sa := a.(*arrow.StringArray)
		n := sa.Len()
		base := int32(len(data))
		if n > 0 {
			start, end := sa.Offsets()[0], sa.Offsets()[n]
			data = append(data, sa.Data()[start:end]...)
			for i := 1; i <= n; i++ {
				offsets = append(offsets, base+sa.Offsets()[i]-start)
			}
		}
		if anyNull {
			for i := 0; i < n; i++ {
				if sa.IsValid(i) {
					valid.Set(pos + i)
				}
			}
		}
		pos += n
	}
	return arrow.NewString(t, offsets, data, valid)
}

// ConcatBatches concatenates batches sharing a schema into one batch.
func ConcatBatches(schema *arrow.Schema, batches []*arrow.RecordBatch) (*arrow.RecordBatch, error) {
	if len(batches) == 0 {
		return EmptyBatch(schema), nil
	}
	if len(batches) == 1 {
		return batches[0], nil
	}
	numCols := schema.NumFields()
	cols := make([]arrow.Array, numCols)
	rows := 0
	for _, b := range batches {
		rows += b.NumRows()
	}
	for c := 0; c < numCols; c++ {
		parts := make([]arrow.Array, len(batches))
		for i, b := range batches {
			parts[i] = b.Column(c)
		}
		a, err := Concat(parts)
		if err != nil {
			return nil, err
		}
		cols[c] = a
	}
	return arrow.NewRecordBatchWithRows(schema, cols, rows), nil
}

// EmptyBatch returns a zero-row batch for the schema, with typed zero-length
// columns so downstream kernels can dispatch on them.
func EmptyBatch(schema *arrow.Schema) *arrow.RecordBatch {
	cols := make([]arrow.Array, schema.NumFields())
	for i, f := range schema.Fields() {
		cols[i] = arrow.NewBuilder(f.Type).Finish()
	}
	return arrow.NewRecordBatchWithRows(schema, cols, 0)
}
