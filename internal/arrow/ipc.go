package arrow

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"unsafe"
)

// This file implements a compact binary serialization of schemas and record
// batches, used for spill files and inter-process transport. Buffers are
// written in host byte order (the implementation targets little-endian
// hosts, as the Arrow IPC format does by default).

// NumericBytes views a numeric slice as raw bytes without copying.
func NumericBytes[T Number](vs []T) []byte {
	if len(vs) == 0 {
		return nil
	}
	var zero T
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), len(vs)*int(unsafe.Sizeof(zero)))
}

// BytesToNumeric views raw bytes as a numeric slice without copying. The
// byte slice must remain alive and unmutated while the result is used.
func BytesToNumeric[T Number](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var zero T
	sz := int(unsafe.Sizeof(zero))
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/sz)
}

type jsonField struct {
	Name     string    `json:"name"`
	Type     *jsonType `json:"type"`
	Nullable bool      `json:"nullable,omitempty"`
}

type jsonType struct {
	ID        TypeID      `json:"id"`
	Precision int         `json:"precision,omitempty"`
	Scale     int         `json:"scale,omitempty"`
	Elem      *jsonType   `json:"elem,omitempty"`
	Fields    []jsonField `json:"fields,omitempty"`
}

func typeToJSON(t *DataType) *jsonType {
	jt := &jsonType{ID: t.ID, Precision: t.Precision, Scale: t.Scale}
	if t.Elem != nil {
		jt.Elem = typeToJSON(t.Elem)
	}
	for _, f := range t.Fields {
		jt.Fields = append(jt.Fields, jsonField{Name: f.Name, Type: typeToJSON(f.Type), Nullable: f.Nullable})
	}
	return jt
}

func typeFromJSON(jt *jsonType) *DataType {
	t := &DataType{ID: jt.ID, Precision: jt.Precision, Scale: jt.Scale}
	if jt.Elem != nil {
		t.Elem = typeFromJSON(jt.Elem)
	}
	for _, f := range jt.Fields {
		t.Fields = append(t.Fields, Field{Name: f.Name, Type: typeFromJSON(f.Type), Nullable: f.Nullable})
	}
	// Collapse simple types to their singletons for pointer-equality fast paths.
	if t.Elem == nil && t.Fields == nil && t.ID != DECIMAL {
		for _, s := range []*DataType{Null, Boolean, Int8, Int16, Int32, Int64, Uint8,
			Uint16, Uint32, Uint64, Float32, Float64, String, Binary, Date32, Timestamp, Interval} {
			if s.ID == t.ID {
				return s
			}
		}
	}
	return t
}

// MarshalSchema encodes a schema as JSON, used in file footers and streams.
func MarshalSchema(s *Schema) ([]byte, error) {
	fields := make([]jsonField, s.NumFields())
	for i, f := range s.Fields() {
		fields[i] = jsonField{Name: f.Name, Type: typeToJSON(f.Type), Nullable: f.Nullable}
	}
	return json.Marshal(fields)
}

// UnmarshalSchema decodes a schema produced by MarshalSchema.
func UnmarshalSchema(data []byte) (*Schema, error) {
	var fields []jsonField
	if err := json.Unmarshal(data, &fields); err != nil {
		return nil, fmt.Errorf("arrow: decoding schema: %w", err)
	}
	out := make([]Field, len(fields))
	for i, f := range fields {
		out[i] = Field{Name: f.Name, Type: typeFromJSON(f.Type), Nullable: f.Nullable}
	}
	return NewSchema(out...), nil
}

func writeBuf(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBuf(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func writeArray(w io.Writer, a Array) error {
	if err := writeBuf(w, a.Validity()); err != nil {
		return err
	}
	switch arr := a.(type) {
	case *Int8Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Int16Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Int32Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Int64Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Uint8Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Uint16Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Uint32Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Uint64Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Float32Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *Float64Array:
		return writeBuf(w, NumericBytes(arr.Values()))
	case *BoolArray:
		return writeBuf(w, arr.ValuesBitmap())
	case *StringArray:
		if err := writeBuf(w, NumericBytes(arr.Offsets())); err != nil {
			return err
		}
		return writeBuf(w, arr.Data())
	case *IntervalArray:
		bld := make([]byte, 0, arr.Len()*16)
		var tmp [16]byte
		for i := 0; i < arr.Len(); i++ {
			v := arr.Value(i)
			binary.LittleEndian.PutUint32(tmp[0:], uint32(v.Months))
			binary.LittleEndian.PutUint32(tmp[4:], uint32(v.Days))
			binary.LittleEndian.PutUint64(tmp[8:], uint64(v.Micros))
			bld = append(bld, tmp[:]...)
		}
		return writeBuf(w, bld)
	case *NullArray:
		return nil
	case *ListArray:
		if err := writeBuf(w, NumericBytes(arr.Offsets())); err != nil {
			return err
		}
		return writeArray(w, arr.Values())
	case *StructArray:
		for i := 0; i < len(arr.fields); i++ {
			if err := writeArray(w, arr.Field(i)); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("arrow: cannot serialize array of type %s", a.DataType())
}

func readArray(r io.Reader, t *DataType, n int) (Array, error) {
	valid, err := readBuf(r)
	if err != nil {
		return nil, err
	}
	var vb Bitmap
	if len(valid) > 0 {
		vb = Bitmap(valid)
	}
	readNumeric := func() ([]byte, error) { return readBuf(r) }
	switch t.ID {
	case INT8:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[int8](b), vb), err
	case INT16:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[int16](b), vb), err
	case INT32, DATE32:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[int32](b), vb), err
	case INT64, TIMESTAMP, DECIMAL:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[int64](b), vb), err
	case UINT8:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[uint8](b), vb), err
	case UINT16:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[uint16](b), vb), err
	case UINT32:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[uint32](b), vb), err
	case UINT64:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[uint64](b), vb), err
	case FLOAT32:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[float32](b), vb), err
	case FLOAT64:
		b, err := readNumeric()
		return NewNumeric(t, BytesToNumeric[float64](b), vb), err
	case BOOL:
		b, err := readNumeric()
		return NewBool(Bitmap(b), vb, n), err
	case STRING, BINARY:
		ob, err := readBuf(r)
		if err != nil {
			return nil, err
		}
		db, err := readBuf(r)
		if err != nil {
			return nil, err
		}
		return NewString(t, BytesToNumeric[int32](ob), db, vb), nil
	case INTERVAL:
		b, err := readBuf(r)
		if err != nil {
			return nil, err
		}
		vals := make([]MonthDayMicro, len(b)/16)
		for i := range vals {
			vals[i] = MonthDayMicro{
				Months: int32(binary.LittleEndian.Uint32(b[i*16:])),
				Days:   int32(binary.LittleEndian.Uint32(b[i*16+4:])),
				Micros: int64(binary.LittleEndian.Uint64(b[i*16+8:])),
			}
		}
		return NewInterval(vals, vb), nil
	case NULL:
		return NewNull(n), nil
	case LIST:
		ob, err := readBuf(r)
		if err != nil {
			return nil, err
		}
		offsets := BytesToNumeric[int32](ob)
		childLen := 0
		if len(offsets) > 0 {
			childLen = int(offsets[len(offsets)-1])
		}
		child, err := readArray(r, t.Elem, childLen)
		if err != nil {
			return nil, err
		}
		return NewList(t.Elem, offsets, child, vb), nil
	case STRUCT:
		children := make([]Array, len(t.Fields))
		for i, f := range t.Fields {
			c, err := readArray(r, f.Type, n)
			if err != nil {
				return nil, err
			}
			children[i] = c
		}
		return NewStruct(t, children, vb, n), nil
	}
	return nil, fmt.Errorf("arrow: cannot deserialize array of type %s", t)
}

// WriteBatch serializes a record batch. The schema is not written; pair with
// a schema written once per stream via MarshalSchema.
func WriteBatch(w io.Writer, b *RecordBatch) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(b.NumRows()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.NumCols()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, c := range b.Columns() {
		if err := writeArray(w, c); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch deserializes one record batch written by WriteBatch. It returns
// io.EOF when the stream is exhausted.
func ReadBatch(r io.Reader, schema *Schema) (*RecordBatch, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	numRows := int(binary.LittleEndian.Uint32(hdr[:4]))
	numCols := int(binary.LittleEndian.Uint32(hdr[4:]))
	cols := make([]Array, numCols)
	for i := 0; i < numCols; i++ {
		a, err := readArray(r, schema.Field(i).Type, numRows)
		if err != nil {
			return nil, err
		}
		cols[i] = a
	}
	return NewRecordBatchWithRows(schema, cols, numRows), nil
}
