package arrow

// ArraySize estimates the resident bytes of an array's buffers (values,
// offsets, validity). Caches use it as the charging cost of a shared
// view; it intentionally ignores Go object headers.
func ArraySize(a Array) int64 {
	if a == nil {
		return 0
	}
	n := int64(a.Len())
	size := int64(len(a.Validity()))
	switch a.DataType().ID {
	case BOOL:
		size += (n + 7) / 8
	case INT8, UINT8:
		size += n
	case INT16, UINT16:
		size += 2 * n
	case INT32, UINT32, FLOAT32, DATE32:
		size += 4 * n
	case INT64, UINT64, FLOAT64, TIMESTAMP, DECIMAL:
		size += 8 * n
	case STRING, BINARY:
		if sa, ok := a.(*StringArray); ok {
			size += 4*(n+1) + int64(len(sa.Data()))
		}
	}
	return size
}

// BatchSize estimates the resident bytes of a record batch as the sum of
// its column sizes.
func BatchSize(b *RecordBatch) int64 {
	if b == nil {
		return 0
	}
	var size int64
	for i := 0; i < b.NumCols(); i++ {
		size += ArraySize(b.Column(i))
	}
	return size
}
