package arrow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(20)
	for i := 0; i < 20; i++ {
		if b.Get(i) {
			t.Fatalf("bit %d should start clear", i)
		}
	}
	b.Set(3)
	b.Set(19)
	if !b.Get(3) || !b.Get(19) || b.Get(4) {
		t.Fatal("set/get mismatch")
	}
	if got := b.CountSet(20); got != 2 {
		t.Fatalf("CountSet = %d, want 2", got)
	}
	b.Clear(3)
	if b.Get(3) {
		t.Fatal("clear failed")
	}
	b.Put(5, true)
	b.Put(19, false)
	if !b.Get(5) || b.Get(19) {
		t.Fatal("put failed")
	}
}

func TestBitmapNilAllValid(t *testing.T) {
	var b Bitmap
	if !b.Get(0) || !b.Get(1000) {
		t.Fatal("nil bitmap must read as all-set")
	}
	if b.CountSet(37) != 37 {
		t.Fatal("nil bitmap CountSet must equal n")
	}
}

func TestNewBitmapSetTrailingBits(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		b := NewBitmapSet(n)
		if got := b.CountSet(n); got != n {
			t.Fatalf("NewBitmapSet(%d).CountSet = %d", n, got)
		}
	}
}

// Property: CountSet agrees with a reference bool-slice implementation for
// arbitrary set/clear sequences.
func TestBitmapCountSetProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBitmap(n)
		ref := make([]bool, n)
		for k := 0; k < 3*n; k++ {
			i := rng.Intn(n)
			v := rng.Intn(2) == 0
			b.Put(i, v)
			ref[i] = v
		}
		want := 0
		for i, v := range ref {
			if v != b.Get(i) {
				return false
			}
			if v {
				want++
			}
		}
		return b.CountSet(n) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And matches element-wise reference, including nil operands.
func TestBitmapAndProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8, xNil, yNil bool) bool {
		n := int(nSmall)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		var x, y Bitmap
		if !xNil {
			x = NewBitmap(n)
			for i := 0; i < n; i++ {
				x.Put(i, rng.Intn(2) == 0)
			}
		}
		if !yNil {
			y = NewBitmap(n)
			for i := 0; i < n; i++ {
				y.Put(i, rng.Intn(2) == 0)
			}
		}
		out := NewBitmap(n)
		out.And(x, y, n)
		for i := 0; i < n; i++ {
			if out.Get(i) != (x.Get(i) && y.Get(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapClone(t *testing.T) {
	var nilB Bitmap
	if nilB.Clone() != nil {
		t.Fatal("nil clone must stay nil")
	}
	b := NewBitmap(16)
	b.Set(2)
	c := b.Clone()
	c.Set(3)
	if b.Get(3) {
		t.Fatal("clone must not alias")
	}
	if !c.Get(2) {
		t.Fatal("clone must copy bits")
	}
}
