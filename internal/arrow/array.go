package arrow

import (
	"fmt"
	"strings"
)

// Array is an immutable, typed columnar vector of values with an optional
// validity bitmap. All operators and kernels exchange data as Arrays.
type Array interface {
	// DataType returns the logical type of the values.
	DataType() *DataType
	// Len returns the number of slots.
	Len() int
	// NullCount returns the number of null slots.
	NullCount() int
	// IsNull reports whether slot i is null.
	IsNull(i int) bool
	// IsValid reports whether slot i is non-null.
	IsValid(i int) bool
	// Validity returns the validity bitmap; nil means all-valid.
	Validity() Bitmap
	// Slice returns a view of n slots starting at off. Value buffers are
	// shared where the layout permits; the validity bitmap is re-packed.
	Slice(off, n int) Array
	// GetScalar returns slot i boxed as a Scalar. This is a slow path
	// intended for row-at-a-time fallbacks, literals, and tests.
	GetScalar(i int) Scalar
	// String renders the array for debugging.
	String() string
}

// Number constrains the Go element types that back fixed-width numeric,
// date, timestamp, and decimal arrays.
type Number interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// NumericArray is a fixed-width array of T. The same physical representation
// backs several logical types (e.g. Int64, Timestamp and Decimal are all
// NumericArray[int64]); consult DataType().ID for logical dispatch.
type NumericArray[T Number] struct {
	dtype  *DataType
	values []T
	valid  Bitmap
	nulls  int
}

// Convenient aliases for the common physical array types.
type (
	Int8Array    = NumericArray[int8]
	Int16Array   = NumericArray[int16]
	Int32Array   = NumericArray[int32]
	Int64Array   = NumericArray[int64]
	Uint8Array   = NumericArray[uint8]
	Uint16Array  = NumericArray[uint16]
	Uint32Array  = NumericArray[uint32]
	Uint64Array  = NumericArray[uint64]
	Float32Array = NumericArray[float32]
	Float64Array = NumericArray[float64]
)

// NewNumeric wraps values (and an optional validity bitmap) as an array of
// dtype. The slice is not copied; the caller must not mutate it afterwards.
func NewNumeric[T Number](dtype *DataType, values []T, valid Bitmap) *NumericArray[T] {
	nulls := 0
	if valid != nil {
		nulls = len(values) - valid.CountSet(len(values))
		if nulls == 0 {
			valid = nil
		}
	}
	return &NumericArray[T]{dtype: dtype, values: values, valid: valid, nulls: nulls}
}

// NewInt64 wraps values as an Int64 array with no nulls.
func NewInt64(values []int64) *Int64Array { return NewNumeric(Int64, values, nil) }

// NewFloat64 wraps values as a Float64 array with no nulls.
func NewFloat64(values []float64) *Float64Array { return NewNumeric(Float64, values, nil) }

// NewInt32 wraps values as an Int32 array with no nulls.
func NewInt32(values []int32) *Int32Array { return NewNumeric(Int32, values, nil) }

func (a *NumericArray[T]) DataType() *DataType { return a.dtype }
func (a *NumericArray[T]) Len() int            { return len(a.values) }
func (a *NumericArray[T]) NullCount() int      { return a.nulls }
func (a *NumericArray[T]) IsNull(i int) bool   { return a.valid != nil && !a.valid.Get(i) }
func (a *NumericArray[T]) IsValid(i int) bool  { return a.valid == nil || a.valid.Get(i) }
func (a *NumericArray[T]) Validity() Bitmap    { return a.valid }

// Values returns the backing value slice; callers must not mutate it.
func (a *NumericArray[T]) Values() []T { return a.values }

// Value returns the value at slot i; meaningless if the slot is null.
func (a *NumericArray[T]) Value(i int) T { return a.values[i] }

// Slice returns a view of n slots starting at off.
func (a *NumericArray[T]) Slice(off, n int) Array {
	return NewNumeric(a.dtype, a.values[off:off+n], sliceBitmap(a.valid, off, n))
}

// GetScalar returns slot i boxed as a Scalar.
func (a *NumericArray[T]) GetScalar(i int) Scalar {
	if a.IsNull(i) {
		return NullScalar(a.dtype)
	}
	return scalarOf(a.dtype, a.values[i])
}

func (a *NumericArray[T]) String() string { return formatArray(a) }

// BoolArray is a bit-packed boolean array.
type BoolArray struct {
	length int
	values Bitmap
	valid  Bitmap
	nulls  int
}

// NewBool wraps a bit-packed value bitmap of the given length.
func NewBool(values Bitmap, valid Bitmap, length int) *BoolArray {
	nulls := 0
	if valid != nil {
		nulls = length - valid.CountSet(length)
		if nulls == 0 {
			valid = nil
		}
	}
	return &BoolArray{length: length, values: values, valid: valid, nulls: nulls}
}

// NewBoolFromSlice builds a BoolArray from a []bool with no nulls.
func NewBoolFromSlice(vs []bool) *BoolArray {
	bm := NewBitmap(len(vs))
	for i, v := range vs {
		if v {
			bm.Set(i)
		}
	}
	return NewBool(bm, nil, len(vs))
}

func (a *BoolArray) DataType() *DataType { return Boolean }
func (a *BoolArray) Len() int            { return a.length }
func (a *BoolArray) NullCount() int      { return a.nulls }
func (a *BoolArray) IsNull(i int) bool   { return a.valid != nil && !a.valid.Get(i) }
func (a *BoolArray) IsValid(i int) bool  { return a.valid == nil || a.valid.Get(i) }
func (a *BoolArray) Validity() Bitmap    { return a.valid }

// Value returns the boolean at slot i.
func (a *BoolArray) Value(i int) bool { return a.values.Get(i) }

// ValuesBitmap returns the bit-packed values; callers must not mutate it.
func (a *BoolArray) ValuesBitmap() Bitmap { return a.values }

// TrueCount returns the number of slots that are valid and true.
func (a *BoolArray) TrueCount() int {
	if a.valid == nil {
		return a.values.CountSet(a.length)
	}
	c := 0
	for i := 0; i < a.length; i++ {
		if a.valid.Get(i) && a.values.Get(i) {
			c++
		}
	}
	return c
}

func (a *BoolArray) Slice(off, n int) Array {
	vals := NewBitmap(n)
	for i := 0; i < n; i++ {
		if a.values.Get(off + i) {
			vals.Set(i)
		}
	}
	return NewBool(vals, sliceBitmap(a.valid, off, n), n)
}

func (a *BoolArray) GetScalar(i int) Scalar {
	if a.IsNull(i) {
		return NullScalar(Boolean)
	}
	return NewScalar(Boolean, a.values.Get(i))
}

func (a *BoolArray) String() string { return formatArray(a) }

// StringArray stores variable-length UTF-8 strings (or raw bytes for the
// Binary type) in a contiguous data buffer with int32 offsets, as in Arrow.
type StringArray struct {
	dtype   *DataType
	offsets []int32 // len = length+1
	data    []byte
	valid   Bitmap
	nulls   int
}

// NewString builds a string array from the offsets/data representation.
func NewString(dtype *DataType, offsets []int32, data []byte, valid Bitmap) *StringArray {
	n := len(offsets) - 1
	nulls := 0
	if valid != nil {
		nulls = n - valid.CountSet(n)
		if nulls == 0 {
			valid = nil
		}
	}
	return &StringArray{dtype: dtype, offsets: offsets, data: data, valid: valid, nulls: nulls}
}

// NewStringFromSlice builds a String array from Go strings with no nulls.
func NewStringFromSlice(vs []string) *StringArray {
	b := NewStringBuilder(String)
	for _, v := range vs {
		b.Append(v)
	}
	return b.Finish().(*StringArray)
}

func (a *StringArray) DataType() *DataType { return a.dtype }
func (a *StringArray) Len() int            { return len(a.offsets) - 1 }
func (a *StringArray) NullCount() int      { return a.nulls }
func (a *StringArray) IsNull(i int) bool   { return a.valid != nil && !a.valid.Get(i) }
func (a *StringArray) IsValid(i int) bool  { return a.valid == nil || a.valid.Get(i) }
func (a *StringArray) Validity() Bitmap    { return a.valid }

// Value returns the string at slot i. The result shares the backing buffer.
func (a *StringArray) Value(i int) string {
	return unsafeString(a.data[a.offsets[i]:a.offsets[i+1]])
}

// ValueBytes returns the raw bytes at slot i without copying.
func (a *StringArray) ValueBytes(i int) []byte {
	return a.data[a.offsets[i]:a.offsets[i+1]]
}

// Offsets returns the offsets buffer; callers must not mutate it.
func (a *StringArray) Offsets() []int32 { return a.offsets }

// Data returns the contiguous character buffer; callers must not mutate it.
func (a *StringArray) Data() []byte { return a.data }

func (a *StringArray) Slice(off, n int) Array {
	return NewString(a.dtype, a.offsets[off:off+n+1], a.data, sliceBitmap(a.valid, off, n))
}

func (a *StringArray) GetScalar(i int) Scalar {
	if a.IsNull(i) {
		return NullScalar(a.dtype)
	}
	if a.dtype.ID == BINARY {
		return NewScalar(a.dtype, append([]byte(nil), a.ValueBytes(i)...))
	}
	return NewScalar(a.dtype, string(a.ValueBytes(i)))
}

func (a *StringArray) String() string { return formatArray(a) }

// MonthDayMicro is the physical representation of an INTERVAL value.
type MonthDayMicro struct {
	Months int32
	Days   int32
	Micros int64
}

// IntervalArray stores calendar intervals.
type IntervalArray struct {
	values []MonthDayMicro
	valid  Bitmap
	nulls  int
}

// NewInterval wraps interval values.
func NewInterval(values []MonthDayMicro, valid Bitmap) *IntervalArray {
	nulls := 0
	if valid != nil {
		nulls = len(values) - valid.CountSet(len(values))
		if nulls == 0 {
			valid = nil
		}
	}
	return &IntervalArray{values: values, valid: valid, nulls: nulls}
}

func (a *IntervalArray) DataType() *DataType       { return Interval }
func (a *IntervalArray) Len() int                  { return len(a.values) }
func (a *IntervalArray) NullCount() int            { return a.nulls }
func (a *IntervalArray) IsNull(i int) bool         { return a.valid != nil && !a.valid.Get(i) }
func (a *IntervalArray) IsValid(i int) bool        { return a.valid == nil || a.valid.Get(i) }
func (a *IntervalArray) Validity() Bitmap          { return a.valid }
func (a *IntervalArray) Value(i int) MonthDayMicro { return a.values[i] }

func (a *IntervalArray) Slice(off, n int) Array {
	return NewInterval(a.values[off:off+n], sliceBitmap(a.valid, off, n))
}

func (a *IntervalArray) GetScalar(i int) Scalar {
	if a.IsNull(i) {
		return NullScalar(Interval)
	}
	return NewScalar(Interval, a.values[i])
}

func (a *IntervalArray) String() string { return formatArray(a) }

// NullArray is an array of n nulls with no value storage.
type NullArray struct{ length int }

// NewNull returns an all-null array of the given length.
func NewNull(n int) *NullArray { return &NullArray{length: n} }

func (a *NullArray) DataType() *DataType  { return Null }
func (a *NullArray) Len() int             { return a.length }
func (a *NullArray) NullCount() int       { return a.length }
func (a *NullArray) IsNull(int) bool      { return true }
func (a *NullArray) IsValid(int) bool     { return false }
func (a *NullArray) Validity() Bitmap     { return nil }
func (a *NullArray) Slice(_, n int) Array { return NewNull(n) }
func (a *NullArray) GetScalar(int) Scalar { return NullScalar(Null) }
func (a *NullArray) String() string       { return fmt.Sprintf("NullArray[%d]", a.length) }

// ListArray stores variable-length lists of a child array.
type ListArray struct {
	dtype   *DataType
	offsets []int32
	values  Array
	valid   Bitmap
	nulls   int
}

// NewList builds a list array over the child values array.
func NewList(elem *DataType, offsets []int32, values Array, valid Bitmap) *ListArray {
	n := len(offsets) - 1
	nulls := 0
	if valid != nil {
		nulls = n - valid.CountSet(n)
		if nulls == 0 {
			valid = nil
		}
	}
	return &ListArray{dtype: ListOf(elem), offsets: offsets, values: values, valid: valid, nulls: nulls}
}

func (a *ListArray) DataType() *DataType { return a.dtype }
func (a *ListArray) Len() int            { return len(a.offsets) - 1 }
func (a *ListArray) NullCount() int      { return a.nulls }
func (a *ListArray) IsNull(i int) bool   { return a.valid != nil && !a.valid.Get(i) }
func (a *ListArray) IsValid(i int) bool  { return a.valid == nil || a.valid.Get(i) }
func (a *ListArray) Validity() Bitmap    { return a.valid }

// ValueArray returns the list at slot i as a slice of the child array.
func (a *ListArray) ValueArray(i int) Array {
	return a.values.Slice(int(a.offsets[i]), int(a.offsets[i+1]-a.offsets[i]))
}

// Offsets returns the offsets buffer.
func (a *ListArray) Offsets() []int32 { return a.offsets }

// Values returns the child array holding all list elements.
func (a *ListArray) Values() Array { return a.values }

func (a *ListArray) Slice(off, n int) Array {
	return &ListArray{
		dtype:   a.dtype,
		offsets: a.offsets[off : off+n+1],
		values:  a.values,
		valid:   sliceBitmap(a.valid, off, n),
		nulls:   countNullsIn(a.valid, off, n),
	}
}

func (a *ListArray) GetScalar(i int) Scalar {
	if a.IsNull(i) {
		return NullScalar(a.dtype)
	}
	return NewScalar(a.dtype, a.ValueArray(i))
}

func (a *ListArray) String() string { return fmt.Sprintf("ListArray[%d]", a.Len()) }

// StructArray stores parallel child arrays, one per struct field.
type StructArray struct {
	dtype  *DataType
	fields []Array
	length int
	valid  Bitmap
	nulls  int
}

// NewStruct builds a struct array from parallel child arrays.
func NewStruct(dtype *DataType, fields []Array, valid Bitmap, length int) *StructArray {
	nulls := 0
	if valid != nil {
		nulls = length - valid.CountSet(length)
		if nulls == 0 {
			valid = nil
		}
	}
	return &StructArray{dtype: dtype, fields: fields, length: length, valid: valid, nulls: nulls}
}

func (a *StructArray) DataType() *DataType { return a.dtype }
func (a *StructArray) Len() int            { return a.length }
func (a *StructArray) NullCount() int      { return a.nulls }
func (a *StructArray) IsNull(i int) bool   { return a.valid != nil && !a.valid.Get(i) }
func (a *StructArray) IsValid(i int) bool  { return a.valid == nil || a.valid.Get(i) }
func (a *StructArray) Validity() Bitmap    { return a.valid }

// Field returns the i-th child array.
func (a *StructArray) Field(i int) Array { return a.fields[i] }

func (a *StructArray) Slice(off, n int) Array {
	children := make([]Array, len(a.fields))
	for i, f := range a.fields {
		children[i] = f.Slice(off, n)
	}
	return NewStruct(a.dtype, children, sliceBitmap(a.valid, off, n), n)
}

func (a *StructArray) GetScalar(i int) Scalar {
	if a.IsNull(i) {
		return NullScalar(a.dtype)
	}
	vals := make([]Scalar, len(a.fields))
	for j, f := range a.fields {
		vals[j] = f.GetScalar(i)
	}
	return NewScalar(a.dtype, vals)
}

func (a *StructArray) String() string { return fmt.Sprintf("StructArray[%d]", a.length) }

// sliceBitmap re-packs n bits starting at off into a fresh bitmap, returning
// nil when the source is nil (all valid).
func sliceBitmap(b Bitmap, off, n int) Bitmap {
	if b == nil {
		return nil
	}
	out := NewBitmap(n)
	for i := 0; i < n; i++ {
		if b.Get(off + i) {
			out.Set(i)
		}
	}
	return out
}

func countNullsIn(b Bitmap, off, n int) int {
	if b == nil {
		return 0
	}
	c := 0
	for i := 0; i < n; i++ {
		if !b.Get(off + i) {
			c++
		}
	}
	return c
}

// formatArray renders up to 20 values of any array for debugging.
func formatArray(a Array) string {
	var sb strings.Builder
	sb.WriteString(a.DataType().String())
	sb.WriteByte('[')
	n := a.Len()
	limit := n
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		if a.IsNull(i) {
			sb.WriteString("null")
		} else {
			fmt.Fprintf(&sb, "%v", a.GetScalar(i).Val)
		}
	}
	if n > limit {
		fmt.Fprintf(&sb, ", ... (%d total)", n)
	}
	sb.WriteByte(']')
	return sb.String()
}
