package arrow

import "fmt"

// Builder incrementally assembles an Array. Builders are the write-side dual
// of the immutable Array types; Finish returns the built array and resets
// the builder for reuse.
type Builder interface {
	// DataType returns the type of the array being built.
	DataType() *DataType
	// Len returns the number of appended slots.
	Len() int
	// AppendNull appends a null slot.
	AppendNull()
	// AppendScalar appends a boxed value (slow path); the scalar's physical
	// representation must match the builder's type.
	AppendScalar(s Scalar)
	// AppendFrom copies slot i of src, which must have the same type.
	AppendFrom(src Array, i int)
	// Reserve ensures capacity for n more slots.
	Reserve(n int)
	// Finish returns the built array and resets the builder.
	Finish() Array
}

// NewBuilder returns a builder for the given data type.
func NewBuilder(t *DataType) Builder {
	switch t.ID {
	case BOOL:
		return NewBoolBuilder()
	case INT8:
		return NewNumericBuilder[int8](t)
	case INT16:
		return NewNumericBuilder[int16](t)
	case INT32, DATE32:
		return NewNumericBuilder[int32](t)
	case INT64, TIMESTAMP, DECIMAL:
		return NewNumericBuilder[int64](t)
	case UINT8:
		return NewNumericBuilder[uint8](t)
	case UINT16:
		return NewNumericBuilder[uint16](t)
	case UINT32:
		return NewNumericBuilder[uint32](t)
	case UINT64:
		return NewNumericBuilder[uint64](t)
	case FLOAT32:
		return NewNumericBuilder[float32](t)
	case FLOAT64:
		return NewNumericBuilder[float64](t)
	case STRING, BINARY:
		return NewStringBuilder(t)
	case INTERVAL:
		return NewIntervalBuilder()
	case NULL:
		return &nullBuilder{}
	case LIST:
		return NewListBuilder(t.Elem)
	case STRUCT:
		return NewStructBuilder(t)
	}
	panic(fmt.Sprintf("arrow: no builder for type %s", t))
}

type validityTracker struct {
	valid   Bitmap
	anyNull bool
	length  int
}

func (v *validityTracker) appendValid() {
	if v.anyNull {
		v.ensure()
		v.valid.Set(v.length)
	}
	v.length++
}

func (v *validityTracker) appendNull() {
	if !v.anyNull {
		v.anyNull = true
		v.valid = NewBitmapSet(v.length)
		// grow to cover existing bits plus the new one
		for len(v.valid)*8 <= v.length {
			v.valid = append(v.valid, 0)
		}
		v.valid.Clear(v.length)
		v.length++
		return
	}
	v.ensure()
	v.valid.Clear(v.length)
	v.length++
}

func (v *validityTracker) ensure() {
	for len(v.valid)*8 <= v.length {
		v.valid = append(v.valid, 0)
	}
}

func (v *validityTracker) finish() Bitmap {
	out := v.valid
	if !v.anyNull {
		out = nil
	}
	v.valid = nil
	v.anyNull = false
	v.length = 0
	return out
}

// NumericBuilder builds fixed-width numeric arrays of T.
type NumericBuilder[T Number] struct {
	dtype  *DataType
	values []T
	vt     validityTracker
}

// NewNumericBuilder returns a builder for a fixed-width array of type t.
func NewNumericBuilder[T Number](t *DataType) *NumericBuilder[T] {
	return &NumericBuilder[T]{dtype: t}
}

func (b *NumericBuilder[T]) DataType() *DataType { return b.dtype }
func (b *NumericBuilder[T]) Len() int            { return len(b.values) }
func (b *NumericBuilder[T]) Reserve(n int) {
	if cap(b.values)-len(b.values) < n {
		nv := make([]T, len(b.values), len(b.values)+n)
		copy(nv, b.values)
		b.values = nv
	}
}

// Append appends a non-null value.
func (b *NumericBuilder[T]) Append(v T) {
	b.values = append(b.values, v)
	b.vt.appendValid()
}

func (b *NumericBuilder[T]) AppendNull() {
	var zero T
	b.values = append(b.values, zero)
	b.vt.appendNull()
}

func (b *NumericBuilder[T]) AppendScalar(s Scalar) {
	if s.Null {
		b.AppendNull()
		return
	}
	b.Append(s.Val.(T))
}

func (b *NumericBuilder[T]) AppendFrom(src Array, i int) {
	a := src.(*NumericArray[T])
	if a.IsNull(i) {
		b.AppendNull()
		return
	}
	b.Append(a.values[i])
}

// AppendSlice appends a run of non-null values.
func (b *NumericBuilder[T]) AppendSlice(vs []T) {
	b.values = append(b.values, vs...)
	for range vs {
		b.vt.appendValid()
	}
}

func (b *NumericBuilder[T]) Finish() Array {
	arr := NewNumeric(b.dtype, b.values, b.vt.finish())
	b.values = nil
	return arr
}

// BoolBuilder builds boolean arrays.
type BoolBuilder struct {
	values Bitmap
	n      int
	vt     validityTracker
}

// NewBoolBuilder returns a builder for boolean arrays.
func NewBoolBuilder() *BoolBuilder { return &BoolBuilder{} }

func (b *BoolBuilder) DataType() *DataType { return Boolean }
func (b *BoolBuilder) Len() int            { return b.n }
func (b *BoolBuilder) Reserve(int)         {}

// Append appends a non-null boolean.
func (b *BoolBuilder) Append(v bool) {
	for len(b.values)*8 <= b.n {
		b.values = append(b.values, 0)
	}
	b.values.Put(b.n, v)
	b.n++
	b.vt.appendValid()
}

func (b *BoolBuilder) AppendNull() {
	for len(b.values)*8 <= b.n {
		b.values = append(b.values, 0)
	}
	b.n++
	b.vt.appendNull()
}

func (b *BoolBuilder) AppendScalar(s Scalar) {
	if s.Null {
		b.AppendNull()
		return
	}
	b.Append(s.Val.(bool))
}

func (b *BoolBuilder) AppendFrom(src Array, i int) {
	a := src.(*BoolArray)
	if a.IsNull(i) {
		b.AppendNull()
		return
	}
	b.Append(a.Value(i))
}

func (b *BoolBuilder) Finish() Array {
	arr := NewBool(b.values, b.vt.finish(), b.n)
	b.values, b.n = nil, 0
	return arr
}

// StringBuilder builds Utf8 and Binary arrays.
type StringBuilder struct {
	dtype   *DataType
	offsets []int32
	data    []byte
	vt      validityTracker
}

// NewStringBuilder returns a builder for t, which must be String or Binary.
func NewStringBuilder(t *DataType) *StringBuilder {
	return &StringBuilder{dtype: t, offsets: []int32{0}}
}

func (b *StringBuilder) DataType() *DataType { return b.dtype }
func (b *StringBuilder) Len() int            { return len(b.offsets) - 1 }
func (b *StringBuilder) Reserve(int)         {}

// Append appends a non-null string.
func (b *StringBuilder) Append(v string) {
	b.data = append(b.data, v...)
	b.offsets = append(b.offsets, int32(len(b.data)))
	b.vt.appendValid()
}

// AppendBytes appends non-null raw bytes.
func (b *StringBuilder) AppendBytes(v []byte) {
	b.data = append(b.data, v...)
	b.offsets = append(b.offsets, int32(len(b.data)))
	b.vt.appendValid()
}

func (b *StringBuilder) AppendNull() {
	b.offsets = append(b.offsets, int32(len(b.data)))
	b.vt.appendNull()
}

func (b *StringBuilder) AppendScalar(s Scalar) {
	if s.Null {
		b.AppendNull()
		return
	}
	switch v := s.Val.(type) {
	case string:
		b.Append(v)
	case []byte:
		b.AppendBytes(v)
	default:
		panic(fmt.Sprintf("arrow: cannot append %T to string builder", s.Val))
	}
}

func (b *StringBuilder) AppendFrom(src Array, i int) {
	a := src.(*StringArray)
	if a.IsNull(i) {
		b.AppendNull()
		return
	}
	b.AppendBytes(a.ValueBytes(i))
}

func (b *StringBuilder) Finish() Array {
	arr := NewString(b.dtype, b.offsets, b.data, b.vt.finish())
	b.offsets, b.data = []int32{0}, nil
	return arr
}

// IntervalBuilder builds interval arrays.
type IntervalBuilder struct {
	values []MonthDayMicro
	vt     validityTracker
}

// NewIntervalBuilder returns a builder for interval arrays.
func NewIntervalBuilder() *IntervalBuilder { return &IntervalBuilder{} }

func (b *IntervalBuilder) DataType() *DataType { return Interval }
func (b *IntervalBuilder) Len() int            { return len(b.values) }
func (b *IntervalBuilder) Reserve(int)         {}

// Append appends a non-null interval.
func (b *IntervalBuilder) Append(v MonthDayMicro) {
	b.values = append(b.values, v)
	b.vt.appendValid()
}

func (b *IntervalBuilder) AppendNull() {
	b.values = append(b.values, MonthDayMicro{})
	b.vt.appendNull()
}

func (b *IntervalBuilder) AppendScalar(s Scalar) {
	if s.Null {
		b.AppendNull()
		return
	}
	b.Append(s.Val.(MonthDayMicro))
}

func (b *IntervalBuilder) AppendFrom(src Array, i int) {
	a := src.(*IntervalArray)
	if a.IsNull(i) {
		b.AppendNull()
		return
	}
	b.Append(a.Value(i))
}

func (b *IntervalBuilder) Finish() Array {
	arr := NewInterval(b.values, b.vt.finish())
	b.values = nil
	return arr
}

type nullBuilder struct{ n int }

func (b *nullBuilder) DataType() *DataType   { return Null }
func (b *nullBuilder) Len() int              { return b.n }
func (b *nullBuilder) Reserve(int)           {}
func (b *nullBuilder) AppendNull()           { b.n++ }
func (b *nullBuilder) AppendScalar(Scalar)   { b.n++ }
func (b *nullBuilder) AppendFrom(Array, int) { b.n++ }
func (b *nullBuilder) Finish() Array {
	a := NewNull(b.n)
	b.n = 0
	return a
}

// ListBuilder builds list arrays by delegating element appends to a child
// builder and closing lists explicitly.
type ListBuilder struct {
	elem    *DataType
	child   Builder
	offsets []int32
	vt      validityTracker
}

// NewListBuilder returns a builder for List<elem>.
func NewListBuilder(elem *DataType) *ListBuilder {
	return &ListBuilder{elem: elem, child: NewBuilder(elem), offsets: []int32{0}}
}

func (b *ListBuilder) DataType() *DataType { return ListOf(b.elem) }
func (b *ListBuilder) Len() int            { return len(b.offsets) - 1 }
func (b *ListBuilder) Reserve(int)         {}

// Child returns the element builder; append elements, then call CloseList.
func (b *ListBuilder) Child() Builder { return b.child }

// CloseList finishes the current list slot.
func (b *ListBuilder) CloseList() {
	b.offsets = append(b.offsets, int32(b.child.Len()))
	b.vt.appendValid()
}

func (b *ListBuilder) AppendNull() {
	b.offsets = append(b.offsets, int32(b.child.Len()))
	b.vt.appendNull()
}

func (b *ListBuilder) AppendScalar(s Scalar) {
	if s.Null {
		b.AppendNull()
		return
	}
	elems := s.Val.(Array)
	for i := 0; i < elems.Len(); i++ {
		b.child.AppendFrom(elems, i)
	}
	b.CloseList()
}

func (b *ListBuilder) AppendFrom(src Array, i int) {
	a := src.(*ListArray)
	if a.IsNull(i) {
		b.AppendNull()
		return
	}
	start, end := int(a.offsets[i]), int(a.offsets[i+1])
	for j := start; j < end; j++ {
		b.child.AppendFrom(a.values, j)
	}
	b.CloseList()
}

func (b *ListBuilder) Finish() Array {
	arr := NewList(b.elem, b.offsets, b.child.Finish(), b.vt.finish())
	b.offsets = []int32{0}
	return arr
}

// StructBuilder builds struct arrays with one child builder per field.
type StructBuilder struct {
	dtype    *DataType
	children []Builder
	n        int
	vt       validityTracker
}

// NewStructBuilder returns a builder for the given struct type.
func NewStructBuilder(t *DataType) *StructBuilder {
	children := make([]Builder, len(t.Fields))
	for i, f := range t.Fields {
		children[i] = NewBuilder(f.Type)
	}
	return &StructBuilder{dtype: t, children: children}
}

func (b *StructBuilder) DataType() *DataType { return b.dtype }
func (b *StructBuilder) Len() int            { return b.n }
func (b *StructBuilder) Reserve(int)         {}

// FieldBuilder returns the builder for field i; append to every field, then
// call CloseRow.
func (b *StructBuilder) FieldBuilder(i int) Builder { return b.children[i] }

// CloseRow finishes the current struct slot.
func (b *StructBuilder) CloseRow() {
	b.n++
	b.vt.appendValid()
}

func (b *StructBuilder) AppendNull() {
	for _, c := range b.children {
		c.AppendNull()
	}
	b.n++
	b.vt.appendNull()
}

func (b *StructBuilder) AppendScalar(s Scalar) {
	if s.Null {
		b.AppendNull()
		return
	}
	vals := s.Val.([]Scalar)
	for i, c := range b.children {
		c.AppendScalar(vals[i])
	}
	b.CloseRow()
}

func (b *StructBuilder) AppendFrom(src Array, i int) {
	a := src.(*StructArray)
	if a.IsNull(i) {
		b.AppendNull()
		return
	}
	for j, c := range b.children {
		c.AppendFrom(a.fields[j], i)
	}
	b.CloseRow()
}

func (b *StructBuilder) Finish() Array {
	fields := make([]Array, len(b.children))
	for i, c := range b.children {
		fields[i] = c.Finish()
	}
	arr := NewStruct(b.dtype, fields, b.vt.finish(), b.n)
	b.n = 0
	return arr
}
