package arrow

import "math/bits"

// Bitmap is a little-endian bit-packed boolean buffer, used for validity
// (null) tracking exactly as in the Arrow format: bit i set means slot i is
// valid (non-null). A nil Bitmap means "all valid".
type Bitmap []byte

// NewBitmap allocates a bitmap with capacity for n bits, all clear.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+7)/8)
}

// NewBitmapSet allocates a bitmap with capacity for n bits, all set.
func NewBitmapSet(n int) Bitmap {
	b := make(Bitmap, (n+7)/8)
	for i := range b {
		b[i] = 0xFF
	}
	// Clear trailing bits beyond n so CountSet is exact.
	if rem := n % 8; rem != 0 && len(b) > 0 {
		b[len(b)-1] &= byte(1<<rem) - 1
	}
	return b
}

// Get reports whether bit i is set. A nil bitmap reports true for all i.
func (b Bitmap) Get(i int) bool {
	if b == nil {
		return true
	}
	return b[i>>3]&(1<<(i&7)) != 0
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>3] |= 1 << (i & 7) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>3] &^= 1 << (i & 7) }

// Put sets bit i to v.
func (b Bitmap) Put(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// CountSet returns the number of set bits among the first n bits.
func (b Bitmap) CountSet(n int) int {
	if b == nil {
		return n
	}
	full := n / 8
	c := 0
	for _, w := range b[:full] {
		c += bits.OnesCount8(w)
	}
	if rem := n % 8; rem != 0 {
		c += bits.OnesCount8(b[full] & (byte(1<<rem) - 1))
	}
	return c
}

// And stores x AND y into b for n bits. Any nil operand is treated as
// all-ones. b must have capacity for n bits.
func (b Bitmap) And(x, y Bitmap, n int) {
	nb := (n + 7) / 8
	switch {
	case x == nil && y == nil:
		for i := 0; i < nb; i++ {
			b[i] = 0xFF
		}
	case x == nil:
		copy(b[:nb], y[:nb])
	case y == nil:
		copy(b[:nb], x[:nb])
	default:
		for i := 0; i < nb; i++ {
			b[i] = x[i] & y[i]
		}
	}
}

// Clone returns a copy of the bitmap, preserving nil.
func (b Bitmap) Clone() Bitmap {
	if b == nil {
		return nil
	}
	c := make(Bitmap, len(b))
	copy(c, b)
	return c
}

// andValidity merges two validity bitmaps over n slots, returning nil when
// the result would be all-valid.
func andValidity(x, y Bitmap, n int) Bitmap {
	if x == nil && y == nil {
		return nil
	}
	out := NewBitmap(n)
	out.And(x, y, n)
	return out
}
