package arrow

import (
	"testing"
)

func TestNumericBuilderRoundTrip(t *testing.T) {
	b := NewNumericBuilder[int64](Int64)
	b.Append(10)
	b.AppendNull()
	b.Append(-3)
	b.AppendSlice([]int64{7, 8})
	arr := b.Finish().(*Int64Array)

	if arr.Len() != 5 {
		t.Fatalf("len = %d", arr.Len())
	}
	if arr.NullCount() != 1 {
		t.Fatalf("nulls = %d", arr.NullCount())
	}
	if !arr.IsNull(1) || arr.IsNull(0) {
		t.Fatal("null placement wrong")
	}
	want := []int64{10, 0, -3, 7, 8}
	for i, w := range want {
		if arr.Value(i) != w {
			t.Fatalf("value[%d] = %d, want %d", i, arr.Value(i), w)
		}
	}
}

func TestBuilderReuseAfterFinish(t *testing.T) {
	b := NewNumericBuilder[int64](Int64)
	b.Append(1)
	first := b.Finish()
	b.Append(2)
	second := b.Finish().(*Int64Array)
	if first.Len() != 1 || second.Len() != 1 || second.Value(0) != 2 {
		t.Fatal("builder must reset after Finish")
	}
}

func TestStringArray(t *testing.T) {
	b := NewStringBuilder(String)
	b.Append("hello")
	b.AppendNull()
	b.Append("")
	b.Append("world")
	arr := b.Finish().(*StringArray)
	if arr.Len() != 4 || arr.NullCount() != 1 {
		t.Fatalf("len=%d nulls=%d", arr.Len(), arr.NullCount())
	}
	if arr.Value(0) != "hello" || arr.Value(2) != "" || arr.Value(3) != "world" {
		t.Fatal("values wrong")
	}
	s := arr.Slice(1, 3).(*StringArray)
	if s.Len() != 3 || !s.IsNull(0) || s.Value(2) != "world" {
		t.Fatalf("slice wrong: %v", s)
	}
}

func TestBoolArray(t *testing.T) {
	b := NewBoolBuilder()
	for _, v := range []bool{true, false, true, true} {
		b.Append(v)
	}
	b.AppendNull()
	arr := b.Finish().(*BoolArray)
	if arr.TrueCount() != 3 {
		t.Fatalf("TrueCount = %d", arr.TrueCount())
	}
	if !arr.Value(0) || arr.Value(1) || !arr.IsNull(4) {
		t.Fatal("values wrong")
	}
}

func TestSliceValidityRepack(t *testing.T) {
	b := NewNumericBuilder[int64](Int64)
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			b.AppendNull()
		} else {
			b.Append(int64(i))
		}
	}
	arr := b.Finish()
	s := arr.Slice(5, 10)
	for i := 0; i < 10; i++ {
		orig := i + 5
		if s.IsNull(i) != (orig%3 == 0) {
			t.Fatalf("slice null mismatch at %d", i)
		}
	}
}

func TestAppendFromAcrossArrays(t *testing.T) {
	src := NewStringFromSlice([]string{"a", "b", "c"})
	b := NewStringBuilder(String)
	b.AppendFrom(src, 2)
	b.AppendFrom(src, 0)
	out := b.Finish().(*StringArray)
	if out.Value(0) != "c" || out.Value(1) != "a" {
		t.Fatal("AppendFrom wrong")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema(
		NewField("id", Int64, false),
		NewField("Name", String, true),
	)
	if s.FieldIndex("name") != 1 || s.FieldIndex("ID") != 0 {
		t.Fatal("case-insensitive lookup failed")
	}
	if s.FieldIndex("missing") != -1 {
		t.Fatal("missing should be -1")
	}
	sel := s.Select([]int{1})
	if sel.NumFields() != 1 || sel.Field(0).Name != "Name" {
		t.Fatal("Select wrong")
	}
}

func TestRecordBatch(t *testing.T) {
	schema := NewSchema(NewField("a", Int64, false), NewField("b", String, true))
	rb := NewRecordBatch(schema, []Array{
		NewInt64([]int64{1, 2, 3}),
		NewStringFromSlice([]string{"x", "y", "z"}),
	})
	if rb.NumRows() != 3 || rb.NumCols() != 2 {
		t.Fatal("shape wrong")
	}
	sl := rb.Slice(1, 2)
	if sl.NumRows() != 2 || sl.Column(0).(*Int64Array).Value(0) != 2 {
		t.Fatal("slice wrong")
	}
	p := rb.Project([]int{1})
	if p.NumCols() != 1 || p.Schema().Field(0).Name != "b" {
		t.Fatal("project wrong")
	}
	if rb.ColumnByName("B") == nil {
		t.Fatal("ColumnByName failed")
	}
}

func TestListArray(t *testing.T) {
	lb := NewListBuilder(Int64)
	child := lb.Child().(*NumericBuilder[int64])
	child.Append(1)
	child.Append(2)
	lb.CloseList()
	lb.AppendNull()
	child.Append(3)
	lb.CloseList()
	arr := lb.Finish().(*ListArray)
	if arr.Len() != 3 || !arr.IsNull(1) {
		t.Fatal("list shape wrong")
	}
	v0 := arr.ValueArray(0).(*Int64Array)
	if v0.Len() != 2 || v0.Value(1) != 2 {
		t.Fatal("list values wrong")
	}
	v2 := arr.ValueArray(2).(*Int64Array)
	if v2.Len() != 1 || v2.Value(0) != 3 {
		t.Fatal("list values wrong after null")
	}
}

func TestStructArray(t *testing.T) {
	st := StructOf(NewField("x", Int64, false), NewField("y", String, true))
	sb := NewStructBuilder(st)
	sb.FieldBuilder(0).(*NumericBuilder[int64]).Append(1)
	sb.FieldBuilder(1).(*StringBuilder).Append("a")
	sb.CloseRow()
	sb.AppendNull()
	arr := sb.Finish().(*StructArray)
	if arr.Len() != 2 || !arr.IsNull(1) {
		t.Fatal("struct shape wrong")
	}
	if arr.Field(0).(*Int64Array).Value(0) != 1 {
		t.Fatal("struct field wrong")
	}
}

func TestDecimalScalarFormat(t *testing.T) {
	s := NewScalar(Decimal(12, 2), int64(-1234))
	if got := s.String(); got != "-12.34" {
		t.Fatalf("decimal format = %q", got)
	}
	if got := FormatDecimal(5, 2); got != "0.05" {
		t.Fatalf("decimal format = %q", got)
	}
}

func TestDateParsing(t *testing.T) {
	d, err := ParseDate32("1995-03-15")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatDate32(d); got != "1995-03-15" {
		t.Fatalf("round trip = %q", got)
	}
	ts, err := ParseTimestamp("2013-07-15 12:30:45")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTimestamp(ts); got != "2013-07-15T12:30:45" {
		t.Fatalf("ts round trip = %q", got)
	}
}

func TestDataTypeEqualAndString(t *testing.T) {
	if !Decimal(12, 2).Equal(Decimal(15, 2)) {
		t.Fatal("decimals with same scale should be equal")
	}
	if Decimal(12, 2).Equal(Decimal(12, 3)) {
		t.Fatal("different scales should differ")
	}
	if !ListOf(Int64).Equal(ListOf(Int64)) || ListOf(Int64).Equal(ListOf(Int32)) {
		t.Fatal("list equality wrong")
	}
	if Int64.String() != "Int64" || Decimal(12, 2).String() != "Decimal(12,2)" {
		t.Fatal("type names wrong")
	}
}

func TestScalarEqual(t *testing.T) {
	if !Int64Scalar(5).Equal(Int64Scalar(5)) {
		t.Fatal("equal scalars")
	}
	if Int64Scalar(5).Equal(Float64Scalar(5)) {
		t.Fatal("different types must not be equal")
	}
	if !NullScalar(Int64).Equal(NullScalar(Int64)) {
		t.Fatal("nulls equal")
	}
	if NullScalar(Int64).Equal(Int64Scalar(0)) {
		t.Fatal("null vs zero")
	}
}
