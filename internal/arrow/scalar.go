package arrow

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Scalar is a single typed value, possibly null. Scalars appear as literals
// in expressions, as broadcast operands in kernels, and as boxed row values
// on slow paths. The dynamic type of Val matches the physical representation
// of the array type: int8..int64/uint8..uint64/float32/float64 for numerics,
// int32 for Date32, int64 for Timestamp and Decimal, string for Utf8,
// []byte for Binary, bool for Boolean, MonthDayMicro for Interval,
// Array for List and []Scalar for Struct.
type Scalar struct {
	Type *DataType
	Null bool
	Val  any
}

// NewScalar builds a non-null scalar of the given type.
func NewScalar(t *DataType, v any) Scalar { return Scalar{Type: t, Val: v} }

// NullScalar builds a null scalar of the given type.
func NullScalar(t *DataType) Scalar { return Scalar{Type: t, Null: true} }

// Int64Scalar builds an Int64 scalar.
func Int64Scalar(v int64) Scalar { return Scalar{Type: Int64, Val: v} }

// Float64Scalar builds a Float64 scalar.
func Float64Scalar(v float64) Scalar { return Scalar{Type: Float64, Val: v} }

// StringScalar builds a Utf8 scalar.
func StringScalar(v string) Scalar { return Scalar{Type: String, Val: v} }

// BoolScalar builds a Boolean scalar.
func BoolScalar(v bool) Scalar { return Scalar{Type: Boolean, Val: v} }

func scalarOf[T Number](t *DataType, v T) Scalar { return Scalar{Type: t, Val: v} }

// IsNull reports whether the scalar is null.
func (s Scalar) IsNull() bool { return s.Null }

// AsInt64 converts any integer-, date-, timestamp- or decimal-typed scalar
// value to int64. It panics on other types; callers dispatch on Type first.
func (s Scalar) AsInt64() int64 {
	switch v := s.Val.(type) {
	case int64:
		return v
	case int32:
		return int64(v)
	case int16:
		return int64(v)
	case int8:
		return int64(v)
	case uint64:
		return int64(v)
	case uint32:
		return int64(v)
	case uint16:
		return int64(v)
	case uint8:
		return int64(v)
	case int:
		return int64(v)
	}
	panic(fmt.Sprintf("scalar %v (%T) is not integer-backed", s.Val, s.Val))
}

// AsFloat64 converts any numeric scalar value to float64, honoring decimal
// scale.
func (s Scalar) AsFloat64() float64 {
	switch v := s.Val.(type) {
	case float64:
		return v
	case float32:
		return float64(v)
	}
	if s.Type.ID == DECIMAL {
		return float64(s.AsInt64()) / math.Pow10(s.Type.Scale)
	}
	return float64(s.AsInt64())
}

// AsString returns the string value of a Utf8/Binary scalar.
func (s Scalar) AsString() string {
	switch v := s.Val.(type) {
	case string:
		return v
	case []byte:
		return string(v)
	}
	panic(fmt.Sprintf("scalar %v (%T) is not string-backed", s.Val, s.Val))
}

// AsBool returns the boolean value.
func (s Scalar) AsBool() bool { return s.Val.(bool) }

// String renders the scalar for plans and debugging.
func (s Scalar) String() string {
	if s.Null {
		return "NULL"
	}
	switch s.Type.ID {
	case STRING:
		return strconv.Quote(s.AsString())
	case DECIMAL:
		return FormatDecimal(s.AsInt64(), s.Type.Scale)
	case DATE32:
		return FormatDate32(int32(s.AsInt64()))
	case TIMESTAMP:
		return FormatTimestamp(s.AsInt64())
	default:
		return fmt.Sprintf("%v", s.Val)
	}
}

// Equal reports deep equality of two scalars (same type id, same value, or
// both null). Used by tests and constant folding.
func (s Scalar) Equal(o Scalar) bool {
	if s.Type.ID != o.Type.ID {
		return false
	}
	if s.Null || o.Null {
		return s.Null == o.Null
	}
	switch s.Type.ID {
	case BINARY:
		return string(s.Val.([]byte)) == string(o.Val.([]byte))
	default:
		return s.Val == o.Val
	}
}

// FormatDecimal renders a scaled int64 decimal as a human-readable string.
func FormatDecimal(v int64, scale int) string {
	if scale <= 0 {
		return strconv.FormatInt(v, 10)
	}
	neg := v < 0
	if neg {
		v = -v
	}
	p := int64(1)
	for i := 0; i < scale; i++ {
		p *= 10
	}
	intPart, frac := v/p, v%p
	s := fmt.Sprintf("%d.%0*d", intPart, scale, frac)
	if neg {
		s = "-" + s
	}
	return s
}

// FormatDate32 renders days-since-epoch as YYYY-MM-DD.
func FormatDate32(days int32) string {
	return time.Unix(int64(days)*86400, 0).UTC().Format("2006-01-02")
}

// FormatTimestamp renders microseconds-since-epoch as an RFC3339-like string.
func FormatTimestamp(us int64) string {
	return time.UnixMicro(us).UTC().Format("2006-01-02T15:04:05.999999")
}

// ParseDate32 parses YYYY-MM-DD into days-since-epoch.
func ParseDate32(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return int32(t.Unix() / 86400), nil
}

// ParseTimestamp parses common timestamp layouts into microseconds.
func ParseTimestamp(s string) (int64, error) {
	for _, layout := range []string{
		"2006-01-02 15:04:05.999999", "2006-01-02T15:04:05.999999",
		time.RFC3339Nano, "2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMicro(), nil
		}
	}
	return 0, fmt.Errorf("arrow: cannot parse timestamp %q", s)
}
