package arrow

import "fmt"

// Datum is a columnar value: either an Array or a single Scalar that
// broadcasts over a batch (the paper's ColumnarValue, Section 7). Physical
// expressions and functions consume and produce Datums so scalar operands
// avoid materialization.
type Datum struct {
	arr    Array
	scalar Scalar
	isArr  bool
}

// ArrayDatum wraps an array.
func ArrayDatum(a Array) Datum { return Datum{arr: a, isArr: true} }

// ScalarDatum wraps a scalar.
func ScalarDatum(s Scalar) Datum { return Datum{scalar: s} }

// IsArray reports whether the datum holds an array.
func (d Datum) IsArray() bool { return d.isArr }

// Array returns the held array; callers must check IsArray first.
func (d Datum) Array() Array { return d.arr }

// ScalarValue returns the held scalar; callers must check !IsArray first.
func (d Datum) ScalarValue() Scalar { return d.scalar }

// DataType returns the datum's type.
func (d Datum) DataType() *DataType {
	if d.isArr {
		return d.arr.DataType()
	}
	return d.scalar.Type
}

// Len returns the array length, or -1 for scalars.
func (d Datum) Len() int {
	if d.isArr {
		return d.arr.Len()
	}
	return -1
}

// ToArray materializes the datum as an array of n rows, broadcasting
// scalars.
func (d Datum) ToArray(n int) Array {
	if d.isArr {
		return d.arr
	}
	return ScalarToArray(d.scalar, n)
}

// ScalarToArray builds an n-row array repeating the scalar.
func ScalarToArray(s Scalar, n int) Array {
	if s.Type.ID == NULL {
		return NewNull(n)
	}
	b := NewBuilder(s.Type)
	b.Reserve(n)
	for i := 0; i < n; i++ {
		b.AppendScalar(s)
	}
	return b.Finish()
}

func (d Datum) String() string {
	if d.isArr {
		return fmt.Sprintf("Array(%s)", d.arr.DataType())
	}
	return fmt.Sprintf("Scalar(%s)", d.scalar)
}
