package arrow

import (
	"bytes"
	"io"
	"testing"
)

func allTypesBatch() *RecordBatch {
	schema := NewSchema(
		NewField("i8", Int8, true),
		NewField("i64", Int64, true),
		NewField("f64", Float64, true),
		NewField("str", String, true),
		NewField("b", Boolean, true),
		NewField("d", Date32, true),
		NewField("ts", Timestamp, true),
		NewField("dec", Decimal(12, 2), true),
		NewField("u32", Uint32, false),
	)
	mk := func(t *DataType, vals ...Scalar) Array {
		b := NewBuilder(t)
		for _, v := range vals {
			b.AppendScalar(v)
		}
		return b.Finish()
	}
	return NewRecordBatch(schema, []Array{
		mk(Int8, NewScalar(Int8, int8(1)), NullScalar(Int8), NewScalar(Int8, int8(-3))),
		mk(Int64, Int64Scalar(100), Int64Scalar(-200), NullScalar(Int64)),
		mk(Float64, Float64Scalar(1.5), NullScalar(Float64), Float64Scalar(-2.5)),
		mk(String, StringScalar("abc"), StringScalar(""), NullScalar(String)),
		mk(Boolean, BoolScalar(true), BoolScalar(false), NullScalar(Boolean)),
		mk(Date32, NewScalar(Date32, int32(9000)), NullScalar(Date32), NewScalar(Date32, int32(-5))),
		mk(Timestamp, NewScalar(Timestamp, int64(1234567)), NewScalar(Timestamp, int64(0)), NullScalar(Timestamp)),
		mk(Decimal(12, 2), NewScalar(Decimal(12, 2), int64(199)), NullScalar(Decimal(12, 2)), NewScalar(Decimal(12, 2), int64(-50))),
		mk(Uint32, NewScalar(Uint32, uint32(7)), NewScalar(Uint32, uint32(8)), NewScalar(Uint32, uint32(9))),
	})
}

func batchesEqual(t *testing.T, a, b *RecordBatch) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for c := 0; c < a.NumCols(); c++ {
		for r := 0; r < a.NumRows(); r++ {
			x, y := a.Column(c).GetScalar(r), b.Column(c).GetScalar(r)
			if !x.Equal(y) {
				t.Fatalf("col %d row %d: %v != %v", c, r, x, y)
			}
		}
	}
}

func TestIPCRoundTrip(t *testing.T) {
	rb := allTypesBatch()
	var buf bytes.Buffer
	if err := WriteBatch(&buf, rb); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatch(&buf, rb.Slice(1, 2)); err != nil {
		t.Fatal(err)
	}
	got1, err := ReadBatch(&buf, rb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, rb, got1)
	got2, err := ReadBatch(&buf, rb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, rb.Slice(1, 2), got2)
	if _, err := ReadBatch(&buf, rb.Schema()); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSchemaMarshalRoundTrip(t *testing.T) {
	s := NewSchema(
		NewField("a", Int64, false),
		NewField("d", Decimal(12, 2), true),
		NewField("l", ListOf(String), true),
		NewField("s", StructOf(NewField("x", Float64, true)), true),
	)
	data, err := MarshalSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(got) {
		t.Fatalf("schema round trip mismatch:\n%s\n%s", s, got)
	}
	// Singletons should be restored for pointer-equality fast paths.
	if got.Field(0).Type != Int64 {
		t.Fatal("simple types should collapse to singletons")
	}
}

func TestIPCListAndStruct(t *testing.T) {
	lb := NewListBuilder(Int64)
	lb.Child().(*NumericBuilder[int64]).Append(1)
	lb.Child().(*NumericBuilder[int64]).Append(2)
	lb.CloseList()
	lb.AppendNull()
	list := lb.Finish()

	st := StructOf(NewField("x", Int64, true))
	sb := NewStructBuilder(st)
	sb.FieldBuilder(0).(*NumericBuilder[int64]).Append(42)
	sb.CloseRow()
	sb.AppendNull()
	strct := sb.Finish()

	schema := NewSchema(NewField("l", ListOf(Int64), true), NewField("s", st, true))
	rb := NewRecordBatch(schema, []Array{list, strct})
	var buf bytes.Buffer
	if err := WriteBatch(&buf, rb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatch(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || !got.Column(0).IsNull(1) || !got.Column(1).IsNull(1) {
		t.Fatal("nested round trip lost nulls")
	}
	l0 := got.Column(0).(*ListArray).ValueArray(0).(*Int64Array)
	if l0.Len() != 2 || l0.Value(0) != 1 || l0.Value(1) != 2 {
		t.Fatal("list values lost")
	}
}
