// Package arrow implements a columnar in-memory data model inspired by
// Apache Arrow: immutable typed arrays with validity bitmaps, grouped into
// record batches with a schema. It is the memory substrate for the whole
// engine; operators exchange data exclusively as RecordBatches of Arrays.
package arrow

import (
	"fmt"
	"strings"
)

// TypeID identifies the physical type of an array or scalar.
type TypeID int

// Supported type ids.
const (
	NULL TypeID = iota
	BOOL
	INT8
	INT16
	INT32
	INT64
	UINT8
	UINT16
	UINT32
	UINT64
	FLOAT32
	FLOAT64
	STRING
	BINARY
	DATE32    // days since unix epoch, int32
	TIMESTAMP // microseconds since unix epoch, int64
	DECIMAL   // scaled int64 with (precision, scale)
	INTERVAL  // month-day-microsecond interval
	LIST
	STRUCT
)

var typeNames = map[TypeID]string{
	NULL: "Null", BOOL: "Boolean",
	INT8: "Int8", INT16: "Int16", INT32: "Int32", INT64: "Int64",
	UINT8: "UInt8", UINT16: "UInt16", UINT32: "UInt32", UINT64: "UInt64",
	FLOAT32: "Float32", FLOAT64: "Float64",
	STRING: "Utf8", BINARY: "Binary",
	DATE32: "Date32", TIMESTAMP: "Timestamp(us)",
	DECIMAL: "Decimal", INTERVAL: "Interval",
	LIST: "List", STRUCT: "Struct",
}

// DataType describes the logical and physical type of values.
// Instances are immutable; use the predeclared singletons for simple types
// and the constructor functions for parameterized types.
type DataType struct {
	ID TypeID

	// Decimal parameters.
	Precision int
	Scale     int

	// List element type.
	Elem *DataType

	// Struct fields.
	Fields []Field
}

// Predeclared singleton types for all non-parameterized types.
var (
	Null      = &DataType{ID: NULL}
	Boolean   = &DataType{ID: BOOL}
	Int8      = &DataType{ID: INT8}
	Int16     = &DataType{ID: INT16}
	Int32     = &DataType{ID: INT32}
	Int64     = &DataType{ID: INT64}
	Uint8     = &DataType{ID: UINT8}
	Uint16    = &DataType{ID: UINT16}
	Uint32    = &DataType{ID: UINT32}
	Uint64    = &DataType{ID: UINT64}
	Float32   = &DataType{ID: FLOAT32}
	Float64   = &DataType{ID: FLOAT64}
	String    = &DataType{ID: STRING}
	Binary    = &DataType{ID: BINARY}
	Date32    = &DataType{ID: DATE32}
	Timestamp = &DataType{ID: TIMESTAMP}
	Interval  = &DataType{ID: INTERVAL}
)

// Decimal returns a decimal type with the given precision and scale.
// Values are stored as int64 scaled by 10^scale, so precision must be <= 18.
func Decimal(precision, scale int) *DataType {
	return &DataType{ID: DECIMAL, Precision: precision, Scale: scale}
}

// ListOf returns a list type with the given element type.
func ListOf(elem *DataType) *DataType {
	return &DataType{ID: LIST, Elem: elem}
}

// StructOf returns a struct type with the given fields.
func StructOf(fields ...Field) *DataType {
	return &DataType{ID: STRUCT, Fields: fields}
}

// Equal reports whether two data types are identical, including parameters.
// Decimal scales must match; precisions are ignored for equality because the
// engine computes with a single physical representation.
func (t *DataType) Equal(o *DataType) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.ID != o.ID {
		return false
	}
	switch t.ID {
	case DECIMAL:
		return t.Scale == o.Scale
	case LIST:
		return t.Elem.Equal(o.Elem)
	case STRUCT:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Equal(o.Fields[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the type for display and plan explanation.
func (t *DataType) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.ID {
	case DECIMAL:
		return fmt.Sprintf("Decimal(%d,%d)", t.Precision, t.Scale)
	case LIST:
		return fmt.Sprintf("List<%s>", t.Elem)
	case STRUCT:
		var b strings.Builder
		b.WriteString("Struct<")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", f.Name, f.Type)
		}
		b.WriteString(">")
		return b.String()
	default:
		return typeNames[t.ID]
	}
}

// IsNumeric reports whether the type participates in arithmetic.
func (t *DataType) IsNumeric() bool {
	switch t.ID {
	case INT8, INT16, INT32, INT64, UINT8, UINT16, UINT32, UINT64, FLOAT32, FLOAT64, DECIMAL:
		return true
	}
	return false
}

// IsInteger reports whether the type is a signed or unsigned integer.
func (t *DataType) IsInteger() bool {
	switch t.ID {
	case INT8, INT16, INT32, INT64, UINT8, UINT16, UINT32, UINT64:
		return true
	}
	return false
}

// IsSignedInteger reports whether the type is a signed integer.
func (t *DataType) IsSignedInteger() bool {
	switch t.ID {
	case INT8, INT16, INT32, INT64:
		return true
	}
	return false
}

// IsFloat reports whether the type is a floating point type.
func (t *DataType) IsFloat() bool {
	return t.ID == FLOAT32 || t.ID == FLOAT64
}

// IsTemporal reports whether the type represents a point or span in time.
func (t *DataType) IsTemporal() bool {
	return t.ID == DATE32 || t.ID == TIMESTAMP || t.ID == INTERVAL
}

// BitWidth returns the fixed bit width of the type's values, or 0 for
// variable-width types (String, Binary, List, Struct).
func (t *DataType) BitWidth() int {
	switch t.ID {
	case BOOL, INT8, UINT8:
		return 8
	case INT16, UINT16:
		return 16
	case INT32, UINT32, FLOAT32, DATE32:
		return 32
	case INT64, UINT64, FLOAT64, TIMESTAMP, DECIMAL:
		return 64
	case INTERVAL:
		return 128
	}
	return 0
}
