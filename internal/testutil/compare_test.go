package testutil

import (
	"math"
	"testing"

	"gofusion/internal/arrow"
)

func TestFloatsEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		eq   bool
	}{
		{1.0, 1.0, true},
		{math.NaN(), math.NaN(), true},
		{0, 1e-9, true},                     // absolute tolerance
		{1e12, 1e12 * (1 + 1e-10), true},    // relative tolerance
		{1.0, math.Nextafter(1.0, 2), true}, // 1 ULP
		{1.0, 1.001, false},
		{1e12, 1.001e12, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), 1.0, false},
	}
	for _, c := range cases {
		if got := FloatsEqual(c.a, c.b); got != c.eq {
			t.Errorf("FloatsEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.eq)
		}
	}
}

func batchOf(t *testing.T, ints []any, floats []any) *arrow.RecordBatch {
	t.Helper()
	schema := arrow.NewSchema(
		arrow.NewField("i", arrow.Int64, true),
		arrow.NewField("f", arrow.Float64, true),
	)
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	for _, v := range ints {
		if v == nil {
			ib.AppendNull()
		} else {
			ib.Append(v.(int64))
		}
	}
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	for _, v := range floats {
		if v == nil {
			fb.AppendNull()
		} else {
			fb.Append(v.(float64))
		}
	}
	return arrow.NewRecordBatch(schema, []arrow.Array{ib.Finish(), fb.Finish()})
}

func TestDiffBatches(t *testing.T) {
	a := batchOf(t, []any{int64(1), nil, int64(3)}, []any{1.5, nil, 3.5})
	// Same rows in a different order, floats perturbed within tolerance.
	b := batchOf(t, []any{int64(3), int64(1), nil}, []any{3.5 + 1e-12, 1.5, nil})
	if diff := DiffBatches(a, b); diff != "" {
		t.Fatalf("expected equal, got diff:\n%s", diff)
	}
	// NULL vs value must differ.
	c := batchOf(t, []any{int64(1), int64(2), int64(3)}, []any{1.5, nil, 3.5})
	if diff := DiffBatches(a, c); diff == "" {
		t.Fatal("expected NULL/value mismatch to be reported")
	}
	// Row-count mismatch.
	d := batchOf(t, []any{int64(1)}, []any{1.5})
	if diff := DiffBatches(a, d); diff == "" {
		t.Fatal("expected row-count mismatch to be reported")
	}
	// Value mismatch beyond tolerance.
	e := batchOf(t, []any{int64(1), nil, int64(3)}, []any{1.5, nil, 3.6})
	if diff := DiffBatches(a, e); diff == "" {
		t.Fatal("expected float mismatch to be reported")
	}
}
