// Package testutil holds the result-normalization and comparison helpers
// shared by the repo's differential tests and the fuzzsql harness. Results
// from two engines (or two configurations of one engine) are compared
// under a canonical normalization:
//
//   - rows are order-insensitive: both sides are sorted by a canonical
//     per-row key before comparison;
//   - NULL-aware: NULL equals NULL and sorts deterministically;
//   - float-tolerant: float cells match under a combined absolute /
//     relative / ULP tolerance, absorbing summation-order differences
//     between partitioned, spilled, and morsel-parallel execution; NaN
//     equals NaN.
//
// These helpers were promoted from internal/exec's aggregation
// differential test so every differential surface (TPC-H golden tests,
// fuzzsql, workload comparisons) shares one definition of "equal".
package testutil

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gofusion/internal/arrow"
)

// Float tolerance: values are equal when within AbsTol, within RelTol
// relatively, or within ULPTol representable values of each other.
const (
	AbsTol = 1e-6
	RelTol = 1e-9
	ULPTol = 64
)

// Row is one normalized result row.
type Row struct {
	// Key is the canonical sort/compare key (floats rounded).
	Key string
	// Cells are the raw cell values, for tolerance-aware comparison.
	Cells []arrow.Scalar
}

// NormalizeBatch renders a record batch into canonically sorted rows.
func NormalizeBatch(b *arrow.RecordBatch) []Row {
	rows := make([]Row, b.NumRows())
	ncols := b.NumCols()
	for i := range rows {
		cells := make([]arrow.Scalar, ncols)
		var key strings.Builder
		for c := 0; c < ncols; c++ {
			cells[c] = b.Column(c).GetScalar(i)
			key.WriteString(cellKey(cells[c]))
			key.WriteByte('|')
		}
		rows[i] = Row{Key: key.String(), Cells: cells}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].Key < rows[b].Key })
	return rows
}

// cellKey renders one cell for the sort key. Floats are rounded to six
// significant decimals so summation-order jitter does not reorder rows;
// the cell-level comparison below is tolerance-aware regardless.
func cellKey(s arrow.Scalar) string {
	if s.Null {
		return "NULL"
	}
	switch s.Type.ID {
	case arrow.FLOAT32, arrow.FLOAT64:
		f := s.AsFloat64()
		if math.IsNaN(f) {
			return "NaN"
		}
		return strconv.FormatFloat(f, 'e', 6, 64)
	case arrow.STRING:
		return strconv.Quote(s.AsString())
	default:
		return s.String()
	}
}

// FloatsEqual reports tolerance equality of two floats (NaN == NaN).
func FloatsEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // equal infinities already matched a == b above
	}
	diff := math.Abs(a - b)
	if diff <= AbsTol {
		return true
	}
	if diff <= RelTol*math.Max(math.Abs(a), math.Abs(b)) {
		return true
	}
	return ulpDistance(a, b) <= ULPTol
}

// ulpDistance counts representable float64 values between a and b.
func ulpDistance(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// CellsEqual reports normalized equality of two cells.
func CellsEqual(a, b arrow.Scalar) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	aFloat := a.Type.ID == arrow.FLOAT32 || a.Type.ID == arrow.FLOAT64
	bFloat := b.Type.ID == arrow.FLOAT32 || b.Type.ID == arrow.FLOAT64
	if aFloat && bFloat {
		return FloatsEqual(a.AsFloat64(), b.AsFloat64())
	}
	return cellKey(a) == cellKey(b)
}

// Diff compares two normalized row sets, returning "" when they match and
// a human-readable description of the first few differences otherwise.
func Diff(got, want []Row) string {
	if len(got) != len(want) {
		return fmt.Sprintf("row count differs: got %d, want %d\ngot:  %s\nwant: %s",
			len(got), len(want), sampleKeys(got), sampleKeys(want))
	}
	var diffs []string
	for i := range got {
		if len(got[i].Cells) != len(want[i].Cells) {
			return fmt.Sprintf("column count differs at row %d: got %d, want %d",
				i, len(got[i].Cells), len(want[i].Cells))
		}
		for c := range got[i].Cells {
			if !CellsEqual(got[i].Cells[c], want[i].Cells[c]) {
				diffs = append(diffs, fmt.Sprintf("row %d col %d: got %s, want %s",
					i, c, cellKey(got[i].Cells[c]), cellKey(want[i].Cells[c])))
				break
			}
		}
		if len(diffs) >= 6 {
			break
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	return strings.Join(diffs, "\n")
}

// DiffBatches normalizes and compares two batches in one step.
func DiffBatches(got, want *arrow.RecordBatch) string {
	return Diff(NormalizeBatch(got), NormalizeBatch(want))
}

func sampleKeys(rows []Row) string {
	n := len(rows)
	if n > 4 {
		n = 4
	}
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = rows[i].Key
	}
	s := strings.Join(keys, " ; ")
	if len(rows) > 4 {
		s += " ..."
	}
	return s
}
