package testutil

import (
	"runtime"
	"testing"
	"time"
)

// SettledGoroutines samples runtime.NumGoroutine after letting transient
// goroutines (exchange producers draining on close) wind down.
func SettledGoroutines() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur >= prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// CheckNoGoroutineLeak snapshots the settled goroutine count and returns
// the check to defer. It fails the test when the count grew, which in
// this engine means an exchange producer or spill-merge goroutine
// outlived its stream's Close.
//
//	defer testutil.CheckNoGoroutineLeak(t)()
func CheckNoGoroutineLeak(t testing.TB) func() {
	t.Helper()
	baseline := SettledGoroutines()
	return func() {
		t.Helper()
		if after := SettledGoroutines(); after > baseline {
			t.Errorf("goroutine leak: %d settled before, %d after", baseline, after)
		}
	}
}
