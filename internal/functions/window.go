package functions

import (
	"fmt"

	"gofusion/internal/arrow"
)

// registerWindowFuncs registers the built-in pure window functions. Their
// evaluation lives in the execution engine's WindowExec, which handles
// partitioning, ordering and frames; the registry provides names and
// output types for planning. Aggregate functions are also usable in window
// position and resolve through the aggregate registry.
func registerWindowFuncs(r *Registry) {
	for _, name := range []string{"row_number", "rank", "dense_rank", "ntile", "cume_count"} {
		r.RegisterWindow(&WindowFuncDef{Name: name, ReturnType: fixedType(arrow.Int64)})
	}
	r.RegisterWindow(&WindowFuncDef{Name: "percent_rank", ReturnType: fixedType(arrow.Float64)})
	r.RegisterWindow(&WindowFuncDef{Name: "cume_dist", ReturnType: fixedType(arrow.Float64)})
	for _, name := range []string{"lag", "lead", "first_value", "last_value", "nth_value"} {
		r.RegisterWindow(&WindowFuncDef{
			Name: name,
			ReturnType: func(args []*arrow.DataType) (*arrow.DataType, error) {
				if len(args) == 0 {
					return nil, fmt.Errorf("functions: window value function needs an argument")
				}
				return args[0], nil
			},
		})
	}
}
