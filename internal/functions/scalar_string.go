package functions

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

// asString converts a datum to a string array, casting if necessary.
func asString(d arrow.Datum, numRows int) (*arrow.StringArray, error) {
	a := d.ToArray(numRows)
	if a.DataType().ID != arrow.STRING {
		cast, err := compute.Cast(a, arrow.String)
		if err != nil {
			return nil, err
		}
		a = cast
	}
	return a.(*arrow.StringArray), nil
}

// stringUnary builds a string -> string elementwise function.
func stringUnary(name string, f func(string) string) *ScalarFunc {
	return &ScalarFunc{
		Name:       name,
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
				} else {
					b.Append(f(in.Value(i)))
				}
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	}
}

// stringToInt builds a string -> int64 elementwise function.
func stringToInt(name string, f func(string) int64) *ScalarFunc {
	return &ScalarFunc{
		Name:       name,
		ReturnType: fixedType(arrow.Int64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			nb := arrow.NewNumericBuilder[int64](arrow.Int64)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					nb.AppendNull()
				} else {
					nb.Append(f(in.Value(i)))
				}
			}
			return arrow.ArrayDatum(nb.Finish()), nil
		},
	}
}

func registerString(r *Registry) {
	r.RegisterScalar(stringUnary("upper", strings.ToUpper))
	r.RegisterScalar(stringUnary("lower", strings.ToLower))
	r.RegisterScalar(stringUnary("trim", strings.TrimSpace))
	r.RegisterScalar(stringUnary("ltrim", func(s string) string { return strings.TrimLeft(s, " ") }))
	r.RegisterScalar(stringUnary("rtrim", func(s string) string { return strings.TrimRight(s, " ") }))
	r.RegisterScalar(stringUnary("reverse", func(s string) string {
		runes := []rune(s)
		for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
			runes[i], runes[j] = runes[j], runes[i]
		}
		return string(runes)
	}))
	r.RegisterScalar(stringUnary("initcap", func(s string) string {
		prev := ' '
		return strings.Map(func(c rune) rune {
			out := c
			if prev == ' ' || prev == '\t' {
				out = []rune(strings.ToUpper(string(c)))[0]
			} else {
				out = []rune(strings.ToLower(string(c)))[0]
			}
			prev = c
			return out
		}, s)
	}))
	r.RegisterScalar(stringUnary("md5", func(s string) string {
		h := md5.Sum([]byte(s))
		return hex.EncodeToString(h[:])
	}))
	r.RegisterScalar(stringUnary("sha256", func(s string) string {
		h := sha256.Sum256([]byte(s))
		return hex.EncodeToString(h[:])
	}))

	r.RegisterScalar(stringToInt("length", func(s string) int64 { return int64(len([]rune(s))) }))
	r.RegisterScalar(stringToInt("char_length", func(s string) int64 { return int64(len([]rune(s))) }))
	r.RegisterScalar(stringToInt("character_length", func(s string) int64 { return int64(len([]rune(s))) }))
	r.RegisterScalar(stringToInt("octet_length", func(s string) int64 { return int64(len(s)) }))
	r.RegisterScalar(stringToInt("ascii", func(s string) int64 {
		if len(s) == 0 {
			return 0
		}
		return int64([]rune(s)[0])
	}))

	substr := &ScalarFunc{
		Name:       "substring",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			starts := args[1].ToArray(numRows)
			var lens arrow.Array
			if len(args) > 2 {
				lens = args[2].ToArray(numRows)
			}
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) || starts.IsNull(i) || (lens != nil && lens.IsNull(i)) {
					b.AppendNull()
					continue
				}
				s := in.Value(i)
				start := int(starts.GetScalar(i).AsInt64()) - 1 // SQL is 1-based
				if start < 0 {
					start = 0
				}
				if start >= len(s) {
					b.Append("")
					continue
				}
				end := len(s)
				if lens != nil {
					l := int(lens.GetScalar(i).AsInt64())
					if l < 0 {
						l = 0
					}
					if start+l < end {
						end = start + l
					}
				}
				b.Append(s[start:end])
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	}
	r.RegisterScalar(substr)
	r.RegisterScalar(&ScalarFunc{Name: "substr", ReturnType: substr.ReturnType, Eval: substr.Eval})

	r.RegisterScalar(&ScalarFunc{
		Name:       "concat",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			cols := make([]*arrow.StringArray, len(args))
			for i, a := range args {
				s, err := asString(a, numRows)
				if err != nil {
					return arrow.Datum{}, err
				}
				cols[i] = s
			}
			b := arrow.NewStringBuilder(arrow.String)
			var sb strings.Builder
			for i := 0; i < numRows; i++ {
				sb.Reset()
				for _, c := range cols {
					if !c.IsNull(i) { // concat skips NULLs per Postgres
						sb.WriteString(c.Value(i))
					}
				}
				b.Append(sb.String())
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "replace",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 3 {
				return arrow.Datum{}, fmt.Errorf("replace takes 3 arguments")
			}
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			from, err := asString(args[1], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			to, err := asString(args[2], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) || from.IsNull(i) || to.IsNull(i) {
					b.AppendNull()
					continue
				}
				b.Append(strings.ReplaceAll(in.Value(i), from.Value(i), to.Value(i)))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	binaryStringBool := func(name string, f func(a, b string) bool) *ScalarFunc {
		return &ScalarFunc{
			Name:       name,
			ReturnType: fixedType(arrow.Boolean),
			Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
				x, err := asString(args[0], numRows)
				if err != nil {
					return arrow.Datum{}, err
				}
				y, err := asString(args[1], numRows)
				if err != nil {
					return arrow.Datum{}, err
				}
				b := arrow.NewBoolBuilder()
				for i := 0; i < x.Len(); i++ {
					if x.IsNull(i) || y.IsNull(i) {
						b.AppendNull()
						continue
					}
					b.Append(f(x.Value(i), y.Value(i)))
				}
				return arrow.ArrayDatum(b.Finish()), nil
			},
		}
	}
	r.RegisterScalar(binaryStringBool("starts_with", strings.HasPrefix))
	r.RegisterScalar(binaryStringBool("ends_with", strings.HasSuffix))
	r.RegisterScalar(binaryStringBool("contains", strings.Contains))

	r.RegisterScalar(&ScalarFunc{
		Name:       "strpos",
		ReturnType: fixedType(arrow.Int64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			x, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			y, err := asString(args[1], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			b := arrow.NewNumericBuilder[int64](arrow.Int64)
			for i := 0; i < x.Len(); i++ {
				if x.IsNull(i) || y.IsNull(i) {
					b.AppendNull()
					continue
				}
				b.Append(int64(strings.Index(x.Value(i), y.Value(i)) + 1))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "split_part",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			sep, err := asString(args[1], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			idx := args[2].ToArray(numRows)
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) || sep.IsNull(i) || idx.IsNull(i) {
					b.AppendNull()
					continue
				}
				parts := strings.Split(in.Value(i), sep.Value(i))
				n := int(idx.GetScalar(i).AsInt64())
				if n >= 1 && n <= len(parts) {
					b.Append(parts[n-1])
				} else {
					b.Append("")
				}
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	pad := func(name string, left bool) *ScalarFunc {
		return &ScalarFunc{
			Name:       name,
			ReturnType: fixedType(arrow.String),
			Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
				in, err := asString(args[0], numRows)
				if err != nil {
					return arrow.Datum{}, err
				}
				lens := args[1].ToArray(numRows)
				fill := " "
				if len(args) > 2 {
					fa, err := asString(args[2], numRows)
					if err != nil {
						return arrow.Datum{}, err
					}
					if fa.Len() > 0 && !fa.IsNull(0) {
						fill = fa.Value(0)
					}
				}
				if fill == "" {
					fill = " "
				}
				b := arrow.NewStringBuilder(arrow.String)
				for i := 0; i < in.Len(); i++ {
					if in.IsNull(i) || lens.IsNull(i) {
						b.AppendNull()
						continue
					}
					s := in.Value(i)
					want := int(lens.GetScalar(i).AsInt64())
					if len(s) >= want {
						b.Append(s[:want])
						continue
					}
					padding := strings.Repeat(fill, (want-len(s))/len(fill)+1)[:want-len(s)]
					if left {
						b.Append(padding + s)
					} else {
						b.Append(s + padding)
					}
				}
				return arrow.ArrayDatum(b.Finish()), nil
			},
		}
	}
	r.RegisterScalar(pad("lpad", true))
	r.RegisterScalar(pad("rpad", false))

	r.RegisterScalar(&ScalarFunc{
		Name:       "repeat",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			counts := args[1].ToArray(numRows)
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) || counts.IsNull(i) {
					b.AppendNull()
					continue
				}
				n := int(counts.GetScalar(i).AsInt64())
				if n < 0 {
					n = 0
				}
				b.Append(strings.Repeat(in.Value(i), n))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	leftRight := func(name string, left bool) *ScalarFunc {
		return &ScalarFunc{
			Name:       name,
			ReturnType: fixedType(arrow.String),
			Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
				in, err := asString(args[0], numRows)
				if err != nil {
					return arrow.Datum{}, err
				}
				counts := args[1].ToArray(numRows)
				b := arrow.NewStringBuilder(arrow.String)
				for i := 0; i < in.Len(); i++ {
					if in.IsNull(i) || counts.IsNull(i) {
						b.AppendNull()
						continue
					}
					s := in.Value(i)
					n := int(counts.GetScalar(i).AsInt64())
					if n < 0 {
						n = 0
					}
					if n > len(s) {
						n = len(s)
					}
					if left {
						b.Append(s[:n])
					} else {
						b.Append(s[len(s)-n:])
					}
				}
				return arrow.ArrayDatum(b.Finish()), nil
			},
		}
	}
	r.RegisterScalar(leftRight("left", true))
	r.RegisterScalar(leftRight("right", false))

	r.RegisterScalar(&ScalarFunc{
		Name:       "chr",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in := args[0].ToArray(numRows)
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
					continue
				}
				b.Append(string(rune(in.GetScalar(i).AsInt64())))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})
}
