package functions

import (
	"fmt"
	"math"

	"gofusion/internal/arrow"
)

// GroupsAccumulator is the vectorized grouped-aggregation contract (the
// design the paper credits for fast low-cardinality grouping): one Update
// call per batch carries every row's group index, so accumulators update
// flat per-group state arrays without per-row dispatch.
type GroupsAccumulator interface {
	// Update consumes a batch: row i belongs to group groupIdx[i];
	// numGroups is the total number of groups seen so far.
	Update(args []arrow.Array, groupIdx []uint32, numGroups int) error
	// MergeStates consumes partial states (as produced by State) from
	// another accumulator instance, for two-phase aggregation.
	MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error
	// State exports the partial aggregation state, one row per group.
	State() ([]arrow.Array, error)
	// Evaluate produces the final per-group results.
	Evaluate() (arrow.Array, error)
}

// numericReturn resolves sum-like output types.
func sumReturnType(args []*arrow.DataType) (*arrow.DataType, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("sum takes 1 argument")
	}
	t := args[0]
	switch {
	case t.ID == arrow.DECIMAL:
		return arrow.Decimal(18, t.Scale), nil
	case t.IsFloat():
		return arrow.Float64, nil
	case t.IsInteger(), t.ID == arrow.NULL:
		return arrow.Int64, nil
	}
	return nil, fmt.Errorf("sum: unsupported type %s", t)
}

func minMaxReturnType(args []*arrow.DataType) (*arrow.DataType, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("min/max take 1 argument")
	}
	return args[0], nil
}

func float64Return(args []*arrow.DataType) (*arrow.DataType, error) {
	return arrow.Float64, nil
}

func int64Return(args []*arrow.DataType) (*arrow.DataType, error) {
	return arrow.Int64, nil
}

func registerAggregates(r *Registry) {
	r.RegisterAgg(&AggFunc{
		Name:       "count",
		ReturnType: int64Return,
		StateTypes: func([]*arrow.DataType) ([]*arrow.DataType, error) {
			return []*arrow.DataType{arrow.Int64}, nil
		},
		NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
			return &countAcc{}, nil
		},
	})
	r.RegisterAgg(&AggFunc{
		Name:       "count_distinct",
		ReturnType: int64Return,
		StateTypes: func(args []*arrow.DataType) ([]*arrow.DataType, error) {
			t := arrow.Int64
			if len(args) == 1 {
				t = args[0]
			}
			return []*arrow.DataType{arrow.ListOf(t)}, nil
		},
		NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("count(DISTINCT) takes 1 argument")
			}
			return &distinctAcc{argType: args[0], countOnly: true}, nil
		},
	})
	r.RegisterAgg(&AggFunc{
		Name:       "sum",
		ReturnType: sumReturnType,
		StateTypes: func(args []*arrow.DataType) ([]*arrow.DataType, error) {
			t, err := sumReturnType(args)
			if err != nil {
				return nil, err
			}
			return []*arrow.DataType{t}, nil
		},
		NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
			out, err := sumReturnType(args)
			if err != nil {
				return nil, err
			}
			if out.ID == arrow.FLOAT64 {
				return &sumFloatAcc{}, nil
			}
			return &sumIntAcc{outType: out}, nil
		},
	})
	for _, name := range []string{"min", "max"} {
		isMax := name == "max"
		r.RegisterAgg(&AggFunc{
			Name:       name,
			ReturnType: minMaxReturnType,
			StateTypes: func(args []*arrow.DataType) ([]*arrow.DataType, error) {
				return []*arrow.DataType{args[0]}, nil
			},
			NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
				return newMinMaxAcc(args[0], isMax)
			},
		})
	}
	r.RegisterAgg(&AggFunc{
		Name:       "avg",
		ReturnType: float64Return,
		StateTypes: func([]*arrow.DataType) ([]*arrow.DataType, error) {
			return []*arrow.DataType{arrow.Float64, arrow.Int64}, nil
		},
		NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
			return &avgAcc{}, nil
		},
	})
	av, _ := r.Agg("avg")
	r.RegisterAgg(&AggFunc{Name: "mean", ReturnType: av.ReturnType, StateTypes: av.StateTypes, NewAccumulator: av.NewAccumulator})

	for _, spec := range []struct {
		name string
		kind varKind
	}{
		{"var", varSamp}, {"var_samp", varSamp}, {"var_pop", varPop},
		{"stddev", stdSamp}, {"stddev_samp", stdSamp}, {"stddev_pop", stdPop},
	} {
		kind := spec.kind
		r.RegisterAgg(&AggFunc{
			Name:       spec.name,
			ReturnType: float64Return,
			StateTypes: func([]*arrow.DataType) ([]*arrow.DataType, error) {
				return []*arrow.DataType{arrow.Int64, arrow.Float64, arrow.Float64}, nil
			},
			NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
				return &varianceAcc{kind: kind}, nil
			},
		})
	}

	r.RegisterAgg(&AggFunc{
		Name:       "corr",
		ReturnType: float64Return,
		StateTypes: func([]*arrow.DataType) ([]*arrow.DataType, error) {
			return []*arrow.DataType{arrow.Int64, arrow.Float64, arrow.Float64,
				arrow.Float64, arrow.Float64, arrow.Float64}, nil
		},
		NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
			return &corrAcc{}, nil
		},
	})

	r.RegisterAgg(&AggFunc{
		Name:       "median",
		ReturnType: float64Return,
		StateTypes: func([]*arrow.DataType) ([]*arrow.DataType, error) {
			return []*arrow.DataType{arrow.ListOf(arrow.Float64)}, nil
		},
		NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
			return &medianAcc{}, nil
		},
	})

	for _, spec := range []struct {
		name string
		last bool
	}{{"first_value", false}, {"last_value", true}} {
		last := spec.last
		r.RegisterAgg(&AggFunc{
			Name:       spec.name,
			ReturnType: minMaxReturnType,
			StateTypes: func(args []*arrow.DataType) ([]*arrow.DataType, error) {
				return []*arrow.DataType{args[0], arrow.Boolean}, nil
			},
			NewAccumulator: func(args []*arrow.DataType) (GroupsAccumulator, error) {
				return &firstLastAcc{argType: args[0], last: last}, nil
			},
		})
	}
}

// asFloat64Values extracts float64 values + validity from any numeric
// array, honoring decimal scale.
func asFloat64Values(a arrow.Array) ([]float64, arrow.Bitmap, error) {
	switch arr := a.(type) {
	case *arrow.Float64Array:
		return arr.Values(), arr.Validity(), nil
	case *arrow.Float32Array:
		out := make([]float64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = float64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Int64Array:
		out := make([]float64, arr.Len())
		scale := 1.0
		if a.DataType().ID == arrow.DECIMAL {
			scale = math.Pow10(a.DataType().Scale)
		}
		for i, v := range arr.Values() {
			out[i] = float64(v) / scale
		}
		return out, arr.Validity(), nil
	case *arrow.Int32Array:
		out := make([]float64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = float64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Int16Array:
		out := make([]float64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = float64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Uint64Array:
		out := make([]float64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = float64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Uint32Array:
		out := make([]float64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = float64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.NullArray:
		return make([]float64, arr.Len()), arrow.NewBitmap(arr.Len()), nil
	}
	return nil, nil, fmt.Errorf("functions: non-numeric aggregate input %s", a.DataType())
}

// asInt64Values extracts int64 values + validity from integer-backed
// arrays (keeping decimal values scaled).
func asInt64Values(a arrow.Array) ([]int64, arrow.Bitmap, error) {
	switch arr := a.(type) {
	case *arrow.Int64Array:
		return arr.Values(), arr.Validity(), nil
	case *arrow.Int32Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Int16Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Int8Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Uint64Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Uint32Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Uint16Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.Uint8Array:
		out := make([]int64, arr.Len())
		for i, v := range arr.Values() {
			out[i] = int64(v)
		}
		return out, arr.Validity(), nil
	case *arrow.NullArray:
		return make([]int64, arr.Len()), arrow.NewBitmap(arr.Len()), nil
	}
	return nil, nil, fmt.Errorf("functions: non-integer aggregate input %s", a.DataType())
}

// growTo extends s with zero values up to length n. Group counts jump by
// whole batches (the group table assigns dense ids batch-at-a-time), so
// one bulk extension replaces per-element appends; the compiler lowers
// the append(make) pattern to a grow plus memclr with no temporary.
func growTo[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	return append(s, make([]T, n-len(s))...)
}

// countAcc implements COUNT(*) and COUNT(expr).
type countAcc struct {
	counts []int64
}

func (c *countAcc) ensure(n int) {
	c.counts = growTo(c.counts, n)
}

func (c *countAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	c.ensure(numGroups)
	if len(args) == 0 { // COUNT(*)
		for _, g := range groupIdx {
			c.counts[g]++
		}
		return nil
	}
	a := args[0]
	if a.NullCount() == 0 {
		for _, g := range groupIdx {
			c.counts[g]++
		}
		return nil
	}
	for i, g := range groupIdx {
		if a.IsValid(i) {
			c.counts[g]++
		}
	}
	return nil
}

func (c *countAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	c.ensure(numGroups)
	vals := states[0].(*arrow.Int64Array).Values()
	for i, g := range groupIdx {
		c.counts[g] += vals[i]
	}
	return nil
}

func (c *countAcc) State() ([]arrow.Array, error) {
	return []arrow.Array{arrow.NewInt64(c.counts)}, nil
}

func (c *countAcc) Evaluate() (arrow.Array, error) {
	return arrow.NewInt64(c.counts), nil
}

// sumIntAcc sums integer-backed values (Int*, Decimal).
type sumIntAcc struct {
	outType *arrow.DataType
	sums    []int64
	seen    []bool
}

func (s *sumIntAcc) ensure(n int) {
	s.sums = growTo(s.sums, n)
	s.seen = growTo(s.seen, n)
}

func (s *sumIntAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	s.ensure(numGroups)
	vals, valid, err := asInt64Values(args[0])
	if err != nil {
		return err
	}
	if valid == nil {
		for i, g := range groupIdx {
			s.sums[g] += vals[i]
			s.seen[g] = true
		}
		return nil
	}
	for i, g := range groupIdx {
		if valid.Get(i) {
			s.sums[g] += vals[i]
			s.seen[g] = true
		}
	}
	return nil
}

func (s *sumIntAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	s.ensure(numGroups)
	a := states[0].(*arrow.Int64Array)
	for i, g := range groupIdx {
		if a.IsValid(i) {
			s.sums[g] += a.Value(i)
			s.seen[g] = true
		}
	}
	return nil
}

func (s *sumIntAcc) buildArray() arrow.Array {
	n := len(s.sums)
	var valid arrow.Bitmap
	for g, ok := range s.seen {
		if !ok {
			if valid == nil {
				valid = arrow.NewBitmapSet(n)
			}
			valid.Clear(g)
		}
	}
	return arrow.NewNumeric(s.outType, append([]int64(nil), s.sums...), valid)
}

func (s *sumIntAcc) State() ([]arrow.Array, error)  { return []arrow.Array{s.buildArray()}, nil }
func (s *sumIntAcc) Evaluate() (arrow.Array, error) { return s.buildArray(), nil }

// sumFloatAcc sums float values.
type sumFloatAcc struct {
	sums []float64
	seen []bool
}

func (s *sumFloatAcc) ensure(n int) {
	s.sums = growTo(s.sums, n)
	s.seen = growTo(s.seen, n)
}

func (s *sumFloatAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	s.ensure(numGroups)
	vals, valid, err := asFloat64Values(args[0])
	if err != nil {
		return err
	}
	if valid == nil {
		for i, g := range groupIdx {
			s.sums[g] += vals[i]
			s.seen[g] = true
		}
		return nil
	}
	for i, g := range groupIdx {
		if valid.Get(i) {
			s.sums[g] += vals[i]
			s.seen[g] = true
		}
	}
	return nil
}

func (s *sumFloatAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	s.ensure(numGroups)
	a := states[0].(*arrow.Float64Array)
	for i, g := range groupIdx {
		if a.IsValid(i) {
			s.sums[g] += a.Value(i)
			s.seen[g] = true
		}
	}
	return nil
}

func (s *sumFloatAcc) buildArray() arrow.Array {
	n := len(s.sums)
	var valid arrow.Bitmap
	for g, ok := range s.seen {
		if !ok {
			if valid == nil {
				valid = arrow.NewBitmapSet(n)
			}
			valid.Clear(g)
		}
	}
	return arrow.NewNumeric(arrow.Float64, append([]float64(nil), s.sums...), valid)
}

func (s *sumFloatAcc) State() ([]arrow.Array, error)  { return []arrow.Array{s.buildArray()}, nil }
func (s *sumFloatAcc) Evaluate() (arrow.Array, error) { return s.buildArray(), nil }

// avgAcc averages numeric values.
type avgAcc struct {
	sums   []float64
	counts []int64
}

func (a *avgAcc) ensure(n int) {
	a.sums = growTo(a.sums, n)
	a.counts = growTo(a.counts, n)
}

func (a *avgAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	a.ensure(numGroups)
	vals, valid, err := asFloat64Values(args[0])
	if err != nil {
		return err
	}
	if valid == nil {
		for i, g := range groupIdx {
			a.sums[g] += vals[i]
			a.counts[g]++
		}
		return nil
	}
	for i, g := range groupIdx {
		if valid.Get(i) {
			a.sums[g] += vals[i]
			a.counts[g]++
		}
	}
	return nil
}

func (a *avgAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	a.ensure(numGroups)
	sums := states[0].(*arrow.Float64Array).Values()
	counts := states[1].(*arrow.Int64Array).Values()
	for i, g := range groupIdx {
		a.sums[g] += sums[i]
		a.counts[g] += counts[i]
	}
	return nil
}

func (a *avgAcc) State() ([]arrow.Array, error) {
	return []arrow.Array{
		arrow.NewFloat64(append([]float64(nil), a.sums...)),
		arrow.NewInt64(append([]int64(nil), a.counts...)),
	}, nil
}

func (a *avgAcc) Evaluate() (arrow.Array, error) {
	n := len(a.sums)
	out := make([]float64, n)
	var valid arrow.Bitmap
	for g := 0; g < n; g++ {
		if a.counts[g] == 0 {
			if valid == nil {
				valid = arrow.NewBitmapSet(n)
			}
			valid.Clear(g)
			continue
		}
		out[g] = a.sums[g] / float64(a.counts[g])
	}
	return arrow.NewNumeric(arrow.Float64, out, valid), nil
}
