package functions

import (
	"fmt"
	"math"
	"sort"

	"gofusion/internal/arrow"
)

// minMaxAcc tracks per-group minimum or maximum for any comparable type.
type minMaxAcc struct {
	argType *arrow.DataType
	isMax   bool

	// Exactly one of these state families is used, by physical kind.
	i64       []int64
	f64       []float64
	strs      []string
	seen      []bool
	useFloat  bool
	useString bool
}

func newMinMaxAcc(t *arrow.DataType, isMax bool) (GroupsAccumulator, error) {
	acc := &minMaxAcc{argType: t, isMax: isMax}
	switch t.ID {
	case arrow.FLOAT32, arrow.FLOAT64:
		acc.useFloat = true
	case arrow.STRING:
		acc.useString = true
	case arrow.BOOL:
		return nil, fmt.Errorf("min/max of boolean not supported")
	}
	return acc, nil
}

func (m *minMaxAcc) ensure(n int) {
	m.seen = growTo(m.seen, n)
	switch {
	case m.useFloat:
		m.f64 = growTo(m.f64, n)
	case m.useString:
		m.strs = growTo(m.strs, n)
	default:
		m.i64 = growTo(m.i64, n)
	}
}

func (m *minMaxAcc) better(cmp int) bool {
	if m.isMax {
		return cmp > 0
	}
	return cmp < 0
}

func (m *minMaxAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	m.ensure(numGroups)
	a := args[0]
	switch {
	case m.useString:
		sa, ok := a.(*arrow.StringArray)
		if !ok {
			return fmt.Errorf("min/max: expected string array, got %s", a.DataType())
		}
		for i, g := range groupIdx {
			if sa.IsNull(i) {
				continue
			}
			v := sa.Value(i)
			if !m.seen[g] || m.better(cmpStr(v, m.strs[g])) {
				m.strs[g] = string(sa.ValueBytes(i)) // copy out of shared buffer
				m.seen[g] = true
			}
		}
	case m.useFloat:
		vals, valid, err := asFloat64Values(a)
		if err != nil {
			return err
		}
		for i, g := range groupIdx {
			if valid != nil && !valid.Get(i) {
				continue
			}
			v := vals[i]
			if !m.seen[g] || m.better(cmpF64(v, m.f64[g])) {
				m.f64[g] = v
				m.seen[g] = true
			}
		}
	default:
		vals, valid, err := asInt64Values(a)
		if err != nil {
			return err
		}
		if valid == nil {
			if m.isMax {
				for i, g := range groupIdx {
					if !m.seen[g] || vals[i] > m.i64[g] {
						m.i64[g] = vals[i]
						m.seen[g] = true
					}
				}
			} else {
				for i, g := range groupIdx {
					if !m.seen[g] || vals[i] < m.i64[g] {
						m.i64[g] = vals[i]
						m.seen[g] = true
					}
				}
			}
			return nil
		}
		for i, g := range groupIdx {
			if !valid.Get(i) {
				continue
			}
			v := vals[i]
			if !m.seen[g] || m.better(cmpI64(v, m.i64[g])) {
				m.i64[g] = v
				m.seen[g] = true
			}
		}
	}
	return nil
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func (m *minMaxAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	return m.Update(states, groupIdx, numGroups)
}

func (m *minMaxAcc) buildArray() (arrow.Array, error) {
	n := len(m.seen)
	b := arrow.NewBuilder(m.argType)
	for g := 0; g < n; g++ {
		if !m.seen[g] {
			b.AppendNull()
			continue
		}
		switch {
		case m.useString:
			b.(*arrow.StringBuilder).Append(m.strs[g])
		case m.useFloat:
			if m.argType.ID == arrow.FLOAT32 {
				b.(*arrow.NumericBuilder[float32]).Append(float32(m.f64[g]))
			} else {
				b.(*arrow.NumericBuilder[float64]).Append(m.f64[g])
			}
		default:
			switch m.argType.BitWidth() {
			case 64:
				b.AppendScalar(arrow.NewScalar(m.argType, m.i64[g]))
			case 32:
				if m.argType.IsSignedInteger() || m.argType.ID == arrow.DATE32 {
					b.AppendScalar(arrow.NewScalar(m.argType, int32(m.i64[g])))
				} else {
					b.AppendScalar(arrow.NewScalar(m.argType, uint32(m.i64[g])))
				}
			case 16:
				if m.argType.IsSignedInteger() {
					b.AppendScalar(arrow.NewScalar(m.argType, int16(m.i64[g])))
				} else {
					b.AppendScalar(arrow.NewScalar(m.argType, uint16(m.i64[g])))
				}
			case 8:
				if m.argType.IsSignedInteger() {
					b.AppendScalar(arrow.NewScalar(m.argType, int8(m.i64[g])))
				} else {
					b.AppendScalar(arrow.NewScalar(m.argType, uint8(m.i64[g])))
				}
			}
		}
	}
	return b.Finish(), nil
}

func (m *minMaxAcc) State() ([]arrow.Array, error) {
	a, err := m.buildArray()
	return []arrow.Array{a}, err
}

func (m *minMaxAcc) Evaluate() (arrow.Array, error) { return m.buildArray() }

// varKind selects between sample/population variance and stddev.
type varKind int

const (
	varSamp varKind = iota
	varPop
	stdSamp
	stdPop
)

// varianceAcc implements Welford/Chan parallel variance.
type varianceAcc struct {
	kind  varKind
	ns    []int64
	means []float64
	m2s   []float64
}

func (v *varianceAcc) ensure(n int) {
	v.ns = growTo(v.ns, n)
	v.means = growTo(v.means, n)
	v.m2s = growTo(v.m2s, n)
}

func (v *varianceAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	v.ensure(numGroups)
	vals, valid, err := asFloat64Values(args[0])
	if err != nil {
		return err
	}
	for i, g := range groupIdx {
		if valid != nil && !valid.Get(i) {
			continue
		}
		x := vals[i]
		v.ns[g]++
		delta := x - v.means[g]
		v.means[g] += delta / float64(v.ns[g])
		v.m2s[g] += delta * (x - v.means[g])
	}
	return nil
}

func (v *varianceAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	v.ensure(numGroups)
	ns := states[0].(*arrow.Int64Array).Values()
	means := states[1].(*arrow.Float64Array).Values()
	m2s := states[2].(*arrow.Float64Array).Values()
	for i, g := range groupIdx {
		nb := ns[i]
		if nb == 0 {
			continue
		}
		na := v.ns[g]
		delta := means[i] - v.means[g]
		total := na + nb
		v.means[g] += delta * float64(nb) / float64(total)
		v.m2s[g] += m2s[i] + delta*delta*float64(na)*float64(nb)/float64(total)
		v.ns[g] = total
	}
	return nil
}

func (v *varianceAcc) State() ([]arrow.Array, error) {
	return []arrow.Array{
		arrow.NewInt64(append([]int64(nil), v.ns...)),
		arrow.NewFloat64(append([]float64(nil), v.means...)),
		arrow.NewFloat64(append([]float64(nil), v.m2s...)),
	}, nil
}

func (v *varianceAcc) Evaluate() (arrow.Array, error) {
	n := len(v.ns)
	out := make([]float64, n)
	var valid arrow.Bitmap
	for g := 0; g < n; g++ {
		minN := int64(2)
		if v.kind == varPop || v.kind == stdPop {
			minN = 1
		}
		if v.ns[g] < minN {
			if valid == nil {
				valid = arrow.NewBitmapSet(n)
			}
			valid.Clear(g)
			continue
		}
		den := float64(v.ns[g] - 1)
		if v.kind == varPop || v.kind == stdPop {
			den = float64(v.ns[g])
		}
		x := v.m2s[g] / den
		if v.kind == stdSamp || v.kind == stdPop {
			x = math.Sqrt(x)
		}
		out[g] = x
	}
	return arrow.NewNumeric(arrow.Float64, out, valid), nil
}

// corrAcc implements Pearson correlation with parallel co-moment merging.
type corrAcc struct {
	ns            []int64
	meanX, meanY  []float64
	cXY, m2X, m2Y []float64
}

func (c *corrAcc) ensure(n int) {
	c.ns = growTo(c.ns, n)
	c.meanX = growTo(c.meanX, n)
	c.meanY = growTo(c.meanY, n)
	c.cXY = growTo(c.cXY, n)
	c.m2X = growTo(c.m2X, n)
	c.m2Y = growTo(c.m2Y, n)
}

func (c *corrAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	if len(args) != 2 {
		return fmt.Errorf("corr takes 2 arguments")
	}
	c.ensure(numGroups)
	xs, xValid, err := asFloat64Values(args[0])
	if err != nil {
		return err
	}
	ys, yValid, err := asFloat64Values(args[1])
	if err != nil {
		return err
	}
	for i, g := range groupIdx {
		if (xValid != nil && !xValid.Get(i)) || (yValid != nil && !yValid.Get(i)) {
			continue
		}
		x, y := xs[i], ys[i]
		c.ns[g]++
		n := float64(c.ns[g])
		dx := x - c.meanX[g]
		c.meanX[g] += dx / n
		dy := y - c.meanY[g]
		c.meanY[g] += dy / n
		c.cXY[g] += dx * (y - c.meanY[g])
		c.m2X[g] += dx * (x - c.meanX[g])
		c.m2Y[g] += dy * (y - c.meanY[g])
	}
	return nil
}

func (c *corrAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	c.ensure(numGroups)
	ns := states[0].(*arrow.Int64Array).Values()
	mxs := states[1].(*arrow.Float64Array).Values()
	mys := states[2].(*arrow.Float64Array).Values()
	cxys := states[3].(*arrow.Float64Array).Values()
	m2xs := states[4].(*arrow.Float64Array).Values()
	m2ys := states[5].(*arrow.Float64Array).Values()
	for i, g := range groupIdx {
		nb := ns[i]
		if nb == 0 {
			continue
		}
		na := c.ns[g]
		total := float64(na + nb)
		dx := mxs[i] - c.meanX[g]
		dy := mys[i] - c.meanY[g]
		f := float64(na) * float64(nb) / total
		c.cXY[g] += cxys[i] + dx*dy*f
		c.m2X[g] += m2xs[i] + dx*dx*f
		c.m2Y[g] += m2ys[i] + dy*dy*f
		c.meanX[g] += dx * float64(nb) / total
		c.meanY[g] += dy * float64(nb) / total
		c.ns[g] = na + nb
	}
	return nil
}

func (c *corrAcc) State() ([]arrow.Array, error) {
	return []arrow.Array{
		arrow.NewInt64(append([]int64(nil), c.ns...)),
		arrow.NewFloat64(append([]float64(nil), c.meanX...)),
		arrow.NewFloat64(append([]float64(nil), c.meanY...)),
		arrow.NewFloat64(append([]float64(nil), c.cXY...)),
		arrow.NewFloat64(append([]float64(nil), c.m2X...)),
		arrow.NewFloat64(append([]float64(nil), c.m2Y...)),
	}, nil
}

func (c *corrAcc) Evaluate() (arrow.Array, error) {
	n := len(c.ns)
	out := make([]float64, n)
	var valid arrow.Bitmap
	for g := 0; g < n; g++ {
		den := math.Sqrt(c.m2X[g] * c.m2Y[g])
		if c.ns[g] < 2 || den == 0 {
			if valid == nil {
				valid = arrow.NewBitmapSet(n)
			}
			valid.Clear(g)
			continue
		}
		out[g] = c.cXY[g] / den
	}
	return arrow.NewNumeric(arrow.Float64, out, valid), nil
}

// medianAcc collects values per group and sorts at evaluation.
type medianAcc struct {
	groups [][]float64
}

func (m *medianAcc) ensure(n int) {
	m.groups = growTo(m.groups, n)
}

func (m *medianAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	m.ensure(numGroups)
	vals, valid, err := asFloat64Values(args[0])
	if err != nil {
		return err
	}
	for i, g := range groupIdx {
		if valid != nil && !valid.Get(i) {
			continue
		}
		m.groups[g] = append(m.groups[g], vals[i])
	}
	return nil
}

func (m *medianAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	m.ensure(numGroups)
	la := states[0].(*arrow.ListArray)
	for i, g := range groupIdx {
		if la.IsNull(i) {
			continue
		}
		vals := la.ValueArray(i).(*arrow.Float64Array)
		m.groups[g] = append(m.groups[g], vals.Values()...)
	}
	return nil
}

func (m *medianAcc) State() ([]arrow.Array, error) {
	lb := arrow.NewListBuilder(arrow.Float64)
	child := lb.Child().(*arrow.NumericBuilder[float64])
	for _, vals := range m.groups {
		for _, v := range vals {
			child.Append(v)
		}
		lb.CloseList()
	}
	return []arrow.Array{lb.Finish()}, nil
}

func (m *medianAcc) Evaluate() (arrow.Array, error) {
	n := len(m.groups)
	out := make([]float64, n)
	var valid arrow.Bitmap
	for g, vals := range m.groups {
		if len(vals) == 0 {
			if valid == nil {
				valid = arrow.NewBitmapSet(n)
			}
			valid.Clear(g)
			continue
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		mid := len(sorted) / 2
		if len(sorted)%2 == 1 {
			out[g] = sorted[mid]
		} else {
			out[g] = (sorted[mid-1] + sorted[mid]) / 2
		}
	}
	return arrow.NewNumeric(arrow.Float64, out, valid), nil
}

// distinctAcc implements COUNT(DISTINCT x) with exact sets keyed by the
// value's normalized encoding.
type distinctAcc struct {
	argType   *arrow.DataType
	countOnly bool
	sets      []map[string]arrow.Scalar
}

func (d *distinctAcc) ensure(n int) {
	d.sets = growTo(d.sets, n)
}

func (d *distinctAcc) add(g uint32, key string, val arrow.Scalar) {
	if d.sets[g] == nil {
		d.sets[g] = make(map[string]arrow.Scalar, 4)
	}
	if _, ok := d.sets[g][key]; !ok {
		d.sets[g][key] = val
	}
}

func (d *distinctAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	d.ensure(numGroups)
	a := args[0]
	switch arr := a.(type) {
	case *arrow.StringArray:
		for i, g := range groupIdx {
			if arr.IsNull(i) {
				continue
			}
			v := string(arr.ValueBytes(i))
			d.add(g, v, arrow.NewScalar(d.argType, v))
		}
	default:
		for i, g := range groupIdx {
			if a.IsNull(i) {
				continue
			}
			s := a.GetScalar(i)
			d.add(g, s.String(), s)
		}
	}
	return nil
}

func (d *distinctAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	d.ensure(numGroups)
	la := states[0].(*arrow.ListArray)
	for i, g := range groupIdx {
		if la.IsNull(i) {
			continue
		}
		vals := la.ValueArray(i)
		for j := 0; j < vals.Len(); j++ {
			s := vals.GetScalar(j)
			d.add(g, s.String(), s)
		}
	}
	return nil
}

func (d *distinctAcc) State() ([]arrow.Array, error) {
	lb := arrow.NewListBuilder(d.argType)
	for _, set := range d.sets {
		for _, v := range set {
			lb.Child().AppendScalar(v)
		}
		lb.CloseList()
	}
	return []arrow.Array{lb.Finish()}, nil
}

func (d *distinctAcc) Evaluate() (arrow.Array, error) {
	out := make([]int64, len(d.sets))
	for g, set := range d.sets {
		out[g] = int64(len(set))
	}
	return arrow.NewInt64(out), nil
}

// firstLastAcc keeps the first or last non-null value per group in arrival
// order.
type firstLastAcc struct {
	argType *arrow.DataType
	last    bool
	vals    []arrow.Scalar
	seen    []bool
}

func (f *firstLastAcc) ensure(n int) {
	old := len(f.seen)
	f.seen = growTo(f.seen, n)
	f.vals = growTo(f.vals, n)
	for i := old; i < len(f.vals); i++ {
		f.vals[i] = arrow.NullScalar(f.argType)
	}
}

func (f *firstLastAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	f.ensure(numGroups)
	a := args[0]
	for i, g := range groupIdx {
		if a.IsNull(i) {
			continue
		}
		if f.last || !f.seen[g] {
			f.vals[g] = a.GetScalar(i)
			f.seen[g] = true
		}
	}
	return nil
}

func (f *firstLastAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	f.ensure(numGroups)
	vals := states[0]
	seen := states[1].(*arrow.BoolArray)
	for i, g := range groupIdx {
		if !seen.Value(i) {
			continue
		}
		if f.last || !f.seen[g] {
			f.vals[g] = vals.GetScalar(i)
			f.seen[g] = true
		}
	}
	return nil
}

func (f *firstLastAcc) State() ([]arrow.Array, error) {
	vb := arrow.NewBuilder(f.argType)
	sb := arrow.NewBoolBuilder()
	for g, ok := range f.seen {
		vb.AppendScalar(f.vals[g])
		sb.Append(ok)
	}
	return []arrow.Array{vb.Finish(), sb.Finish()}, nil
}

func (f *firstLastAcc) Evaluate() (arrow.Array, error) {
	b := arrow.NewBuilder(f.argType)
	for g, ok := range f.seen {
		if !ok {
			b.AppendNull()
		} else {
			b.AppendScalar(f.vals[g])
		}
	}
	return b.Finish(), nil
}
