package functions

import (
	"fmt"
	"strings"
	"time"

	"gofusion/internal/arrow"
)

// toTime converts a Date32 or Timestamp slot to time.Time (UTC).
func toTime(a arrow.Array, i int) (time.Time, bool) {
	if a.IsNull(i) {
		return time.Time{}, false
	}
	switch a.DataType().ID {
	case arrow.DATE32:
		days := a.GetScalar(i).AsInt64()
		return time.Unix(days*86400, 0).UTC(), true
	case arrow.TIMESTAMP:
		return time.UnixMicro(a.GetScalar(i).AsInt64()).UTC(), true
	}
	return time.Time{}, false
}

// DatePart extracts a named part of a time value, shared by EXTRACT and
// date_part.
func DatePart(part string, t time.Time) (int64, error) {
	switch strings.ToLower(part) {
	case "year":
		return int64(t.Year()), nil
	case "quarter":
		return int64((int(t.Month())-1)/3 + 1), nil
	case "month":
		return int64(t.Month()), nil
	case "week":
		_, w := t.ISOWeek()
		return int64(w), nil
	case "day":
		return int64(t.Day()), nil
	case "doy":
		return int64(t.YearDay()), nil
	case "dow":
		return int64(t.Weekday()), nil
	case "hour":
		return int64(t.Hour()), nil
	case "minute":
		return int64(t.Minute()), nil
	case "second":
		return int64(t.Second()), nil
	case "millisecond":
		return int64(t.Nanosecond() / 1e6), nil
	case "microsecond":
		return int64(t.Nanosecond() / 1e3), nil
	case "epoch":
		return t.Unix(), nil
	}
	return 0, fmt.Errorf("functions: unknown date part %q", part)
}

// DateTrunc truncates a time to the named precision.
func DateTrunc(part string, t time.Time) (time.Time, error) {
	switch strings.ToLower(part) {
	case "year":
		return time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC), nil
	case "quarter":
		q := (int(t.Month()) - 1) / 3
		return time.Date(t.Year(), time.Month(q*3+1), 1, 0, 0, 0, 0, time.UTC), nil
	case "month":
		return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC), nil
	case "week":
		// ISO week starts Monday.
		wd := (int(t.Weekday()) + 6) % 7
		d := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		return d.AddDate(0, 0, -wd), nil
	case "day":
		return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC), nil
	case "hour":
		return t.Truncate(time.Hour), nil
	case "minute":
		return t.Truncate(time.Minute), nil
	case "second":
		return t.Truncate(time.Second), nil
	}
	return time.Time{}, fmt.Errorf("functions: unknown date_trunc precision %q", part)
}

func registerDateTime(r *Registry) {
	r.RegisterScalar(&ScalarFunc{
		Name:       "date_part",
		ReturnType: fixedType(arrow.Int64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 2 {
				return arrow.Datum{}, fmt.Errorf("date_part takes 2 arguments")
			}
			partS := args[0].ScalarValue()
			if args[0].IsArray() {
				partS = args[0].Array().GetScalar(0)
			}
			part := partS.AsString()
			in := args[1].ToArray(numRows)
			b := arrow.NewNumericBuilder[int64](arrow.Int64)
			for i := 0; i < in.Len(); i++ {
				t, ok := toTime(in, i)
				if !ok {
					b.AppendNull()
					continue
				}
				v, err := DatePart(part, t)
				if err != nil {
					return arrow.Datum{}, err
				}
				b.Append(v)
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})
	dp := mustScalar(r, "date_part")
	r.RegisterScalar(&ScalarFunc{Name: "extract", ReturnType: dp.ReturnType, Eval: dp.Eval})

	r.RegisterScalar(&ScalarFunc{
		Name: "date_trunc",
		ReturnType: func(args []*arrow.DataType) (*arrow.DataType, error) {
			if len(args) == 2 {
				return args[1], nil
			}
			return arrow.Timestamp, nil
		},
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			partS := args[0].ScalarValue()
			if args[0].IsArray() {
				partS = args[0].Array().GetScalar(0)
			}
			part := partS.AsString()
			in := args[1].ToArray(numRows)
			outType := in.DataType()
			b := arrow.NewBuilder(outType)
			for i := 0; i < in.Len(); i++ {
				t, ok := toTime(in, i)
				if !ok {
					b.AppendNull()
					continue
				}
				tt, err := DateTrunc(part, t)
				if err != nil {
					return arrow.Datum{}, err
				}
				if outType.ID == arrow.DATE32 {
					b.AppendScalar(arrow.NewScalar(outType, int32(tt.Unix()/86400)))
				} else {
					b.AppendScalar(arrow.NewScalar(outType, tt.UnixMicro()))
				}
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "to_date",
		ReturnType: fixedType(arrow.Date32),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in := args[0].ToArray(numRows)
			b := arrow.NewNumericBuilder[int32](arrow.Date32)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
					continue
				}
				switch in.DataType().ID {
				case arrow.STRING:
					d, err := arrow.ParseDate32(in.GetScalar(i).AsString())
					if err != nil {
						return arrow.Datum{}, err
					}
					b.Append(d)
				case arrow.TIMESTAMP:
					b.Append(int32(in.GetScalar(i).AsInt64() / 86400_000_000))
				case arrow.DATE32:
					b.Append(int32(in.GetScalar(i).AsInt64()))
				default:
					return arrow.Datum{}, fmt.Errorf("to_date: unsupported input %s", in.DataType())
				}
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "make_date",
		ReturnType: fixedType(arrow.Date32),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			y := args[0].ToArray(numRows)
			m := args[1].ToArray(numRows)
			d := args[2].ToArray(numRows)
			b := arrow.NewNumericBuilder[int32](arrow.Date32)
			for i := 0; i < numRows; i++ {
				if y.IsNull(i) || m.IsNull(i) || d.IsNull(i) {
					b.AppendNull()
					continue
				}
				t := time.Date(int(y.GetScalar(i).AsInt64()), time.Month(m.GetScalar(i).AsInt64()),
					int(d.GetScalar(i).AsInt64()), 0, 0, 0, 0, time.UTC)
				b.Append(int32(t.Unix() / 86400))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "to_timestamp",
		ReturnType: fixedType(arrow.Timestamp),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in := args[0].ToArray(numRows)
			b := arrow.NewNumericBuilder[int64](arrow.Timestamp)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
					continue
				}
				switch in.DataType().ID {
				case arrow.STRING:
					ts, err := arrow.ParseTimestamp(in.GetScalar(i).AsString())
					if err != nil {
						return arrow.Datum{}, err
					}
					b.Append(ts)
				case arrow.INT64:
					b.Append(in.GetScalar(i).AsInt64() * 1_000_000) // seconds
				case arrow.DATE32:
					b.Append(in.GetScalar(i).AsInt64() * 86400_000_000)
				case arrow.TIMESTAMP:
					b.Append(in.GetScalar(i).AsInt64())
				default:
					return arrow.Datum{}, fmt.Errorf("to_timestamp: unsupported input %s", in.DataType())
				}
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})
}
