package functions

import (
	"math"
	"testing"

	"gofusion/internal/arrow"
)

func evalScalar(t *testing.T, r *Registry, name string, n int, args ...arrow.Datum) arrow.Array {
	t.Helper()
	f, ok := r.Scalar(name)
	if !ok {
		t.Fatalf("missing function %s", name)
	}
	out, err := f.Eval(args, n)
	if err != nil {
		t.Fatal(err)
	}
	return out.ToArray(n)
}

func TestStringFunctions(t *testing.T) {
	r := NewRegistry()
	in := arrow.ArrayDatum(arrow.NewStringFromSlice([]string{"Hello", "wORLD"}))
	up := evalScalar(t, r, "upper", 2, in).(*arrow.StringArray)
	if up.Value(0) != "HELLO" || up.Value(1) != "WORLD" {
		t.Fatal("upper wrong")
	}
	lo := evalScalar(t, r, "lower", 2, in).(*arrow.StringArray)
	if lo.Value(0) != "hello" {
		t.Fatal("lower wrong")
	}
	ln := evalScalar(t, r, "length", 2, in).(*arrow.Int64Array)
	if ln.Value(0) != 5 {
		t.Fatal("length wrong")
	}
	sub := evalScalar(t, r, "substring", 2, in,
		arrow.ScalarDatum(arrow.Int64Scalar(2)), arrow.ScalarDatum(arrow.Int64Scalar(3))).(*arrow.StringArray)
	if sub.Value(0) != "ell" {
		t.Fatalf("substring = %q", sub.Value(0))
	}
	cc := evalScalar(t, r, "concat", 2, in, arrow.ScalarDatum(arrow.StringScalar("!"))).(*arrow.StringArray)
	if cc.Value(1) != "wORLD!" {
		t.Fatal("concat wrong")
	}
	sw := evalScalar(t, r, "starts_with", 2, in, arrow.ScalarDatum(arrow.StringScalar("He"))).(*arrow.BoolArray)
	if !sw.Value(0) || sw.Value(1) {
		t.Fatal("starts_with wrong")
	}
	rp := evalScalar(t, r, "replace", 2, in,
		arrow.ScalarDatum(arrow.StringScalar("l")), arrow.ScalarDatum(arrow.StringScalar("L"))).(*arrow.StringArray)
	if rp.Value(0) != "HeLLo" {
		t.Fatal("replace wrong")
	}
}

func TestStringNullPropagation(t *testing.T) {
	r := NewRegistry()
	b := arrow.NewStringBuilder(arrow.String)
	b.Append("x")
	b.AppendNull()
	in := arrow.ArrayDatum(b.Finish())
	up := evalScalar(t, r, "upper", 2, in)
	if up.IsNull(0) || !up.IsNull(1) {
		t.Fatal("null propagation wrong")
	}
	// concat treats NULL as empty (Postgres semantics)
	cc := evalScalar(t, r, "concat", 2, in, arrow.ScalarDatum(arrow.StringScalar("y"))).(*arrow.StringArray)
	if cc.Value(1) != "y" {
		t.Fatal("concat null handling wrong")
	}
}

func TestMathFunctions(t *testing.T) {
	r := NewRegistry()
	in := arrow.ArrayDatum(arrow.NewFloat64([]float64{4, 2.25}))
	sq := evalScalar(t, r, "sqrt", 2, in).(*arrow.Float64Array)
	if sq.Value(0) != 2 || sq.Value(1) != 1.5 {
		t.Fatal("sqrt wrong")
	}
	ab := evalScalar(t, r, "abs", 2, arrow.ArrayDatum(arrow.NewInt64([]int64{-5, 3}))).(*arrow.Int64Array)
	if ab.Value(0) != 5 || ab.Value(1) != 3 {
		t.Fatal("abs wrong")
	}
	rd := evalScalar(t, r, "round", 2, arrow.ArrayDatum(arrow.NewFloat64([]float64{1.25, -1.75})),
		arrow.ScalarDatum(arrow.Int64Scalar(1))).(*arrow.Float64Array)
	if rd.Value(0) != 1.3 || rd.Value(1) != -1.8 {
		t.Fatalf("round wrong: %v %v", rd.Value(0), rd.Value(1))
	}
	// int input to float function
	fl := evalScalar(t, r, "floor", 1, arrow.ArrayDatum(arrow.NewInt64([]int64{7}))).(*arrow.Float64Array)
	if fl.Value(0) != 7 {
		t.Fatal("floor of int wrong")
	}
}

func TestDateFunctions(t *testing.T) {
	r := NewRegistry()
	d, _ := arrow.ParseDate32("1995-03-15")
	db := arrow.NewNumericBuilder[int32](arrow.Date32)
	db.Append(d)
	in := arrow.ArrayDatum(db.Finish())
	part := func(p string) int64 {
		out := evalScalar(t, r, "date_part", 1, arrow.ScalarDatum(arrow.StringScalar(p)), in).(*arrow.Int64Array)
		return out.Value(0)
	}
	if part("year") != 1995 || part("month") != 3 || part("day") != 15 || part("quarter") != 1 {
		t.Fatal("date_part wrong")
	}
	tr := evalScalar(t, r, "date_trunc", 1, arrow.ScalarDatum(arrow.StringScalar("month")), in).(*arrow.Int32Array)
	if arrow.FormatDate32(tr.Value(0)) != "1995-03-01" {
		t.Fatalf("date_trunc = %s", arrow.FormatDate32(tr.Value(0)))
	}
	md := evalScalar(t, r, "make_date", 1,
		arrow.ScalarDatum(arrow.Int64Scalar(2020)), arrow.ScalarDatum(arrow.Int64Scalar(2)),
		arrow.ScalarDatum(arrow.Int64Scalar(29))).(*arrow.Int32Array)
	if arrow.FormatDate32(md.Value(0)) != "2020-02-29" {
		t.Fatal("make_date wrong")
	}
}

func TestConditionalFunctions(t *testing.T) {
	r := NewRegistry()
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	b.AppendNull()
	b.Append(2)
	in := arrow.ArrayDatum(b.Finish())
	co := evalScalar(t, r, "coalesce", 2, in, arrow.ScalarDatum(arrow.Int64Scalar(99))).(*arrow.Int64Array)
	if co.Value(0) != 99 || co.Value(1) != 2 {
		t.Fatal("coalesce wrong")
	}
	nf := evalScalar(t, r, "nullif", 2, arrow.ArrayDatum(arrow.NewInt64([]int64{1, 2})),
		arrow.ScalarDatum(arrow.Int64Scalar(2)))
	if nf.IsNull(0) || !nf.IsNull(1) {
		t.Fatal("nullif wrong")
	}
	gr := evalScalar(t, r, "greatest", 2, arrow.ArrayDatum(arrow.NewInt64([]int64{1, 9})),
		arrow.ScalarDatum(arrow.Int64Scalar(5))).(*arrow.Int64Array)
	if gr.Value(0) != 5 || gr.Value(1) != 9 {
		t.Fatal("greatest wrong")
	}
}

// accumulate runs an accumulator over one batch with the given groups.
func accumulate(t *testing.T, r *Registry, name string, args []arrow.Array, groups []uint32, numGroups int) arrow.Array {
	t.Helper()
	f, ok := r.Agg(name)
	if !ok {
		t.Fatalf("missing aggregate %s", name)
	}
	types := make([]*arrow.DataType, len(args))
	for i, a := range args {
		types[i] = a.DataType()
	}
	acc, err := f.NewAccumulator(types)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Update(args, groups, numGroups); err != nil {
		t.Fatal(err)
	}
	out, err := acc.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBasicAggregates(t *testing.T) {
	r := NewRegistry()
	vals := arrow.NewInt64([]int64{1, 2, 3, 10, 20})
	groups := []uint32{0, 0, 0, 1, 1}

	sum := accumulate(t, r, "sum", []arrow.Array{vals}, groups, 2).(*arrow.Int64Array)
	if sum.Value(0) != 6 || sum.Value(1) != 30 {
		t.Fatal("sum wrong")
	}
	cnt := accumulate(t, r, "count", []arrow.Array{vals}, groups, 2).(*arrow.Int64Array)
	if cnt.Value(0) != 3 || cnt.Value(1) != 2 {
		t.Fatal("count wrong")
	}
	mn := accumulate(t, r, "min", []arrow.Array{vals}, groups, 2).(*arrow.Int64Array)
	mx := accumulate(t, r, "max", []arrow.Array{vals}, groups, 2).(*arrow.Int64Array)
	if mn.Value(0) != 1 || mx.Value(1) != 20 {
		t.Fatal("min/max wrong")
	}
	avg := accumulate(t, r, "avg", []arrow.Array{vals}, groups, 2).(*arrow.Float64Array)
	if avg.Value(0) != 2 || avg.Value(1) != 15 {
		t.Fatal("avg wrong")
	}
}

func TestAggregatesSkipNulls(t *testing.T) {
	r := NewRegistry()
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	b.Append(5)
	b.AppendNull()
	b.Append(7)
	vals := b.Finish()
	groups := []uint32{0, 0, 0}
	sum := accumulate(t, r, "sum", []arrow.Array{vals}, groups, 1).(*arrow.Int64Array)
	if sum.Value(0) != 12 {
		t.Fatal("sum must skip nulls")
	}
	cnt := accumulate(t, r, "count", []arrow.Array{vals}, groups, 1).(*arrow.Int64Array)
	if cnt.Value(0) != 2 {
		t.Fatal("count must skip nulls")
	}
	// empty group produces NULL sum
	sum2 := accumulate(t, r, "sum", []arrow.Array{vals}, groups, 2)
	if !sum2.IsNull(1) {
		t.Fatal("empty group sum must be NULL")
	}
}

func TestMinMaxStrings(t *testing.T) {
	r := NewRegistry()
	vals := arrow.NewStringFromSlice([]string{"pear", "apple", "zebra", "kiwi"})
	groups := []uint32{0, 0, 1, 1}
	mn := accumulate(t, r, "min", []arrow.Array{vals}, groups, 2).(*arrow.StringArray)
	if mn.Value(0) != "apple" || mn.Value(1) != "kiwi" {
		t.Fatal("string min wrong")
	}
}

func TestVarianceAndStddev(t *testing.T) {
	r := NewRegistry()
	vals := arrow.NewFloat64([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	groups := make([]uint32, 8)
	vp := accumulate(t, r, "var_pop", []arrow.Array{vals}, groups, 1).(*arrow.Float64Array)
	if math.Abs(vp.Value(0)-4.0) > 1e-9 {
		t.Fatalf("var_pop = %v", vp.Value(0))
	}
	sp := accumulate(t, r, "stddev_pop", []arrow.Array{vals}, groups, 1).(*arrow.Float64Array)
	if math.Abs(sp.Value(0)-2.0) > 1e-9 {
		t.Fatalf("stddev_pop = %v", sp.Value(0))
	}
	// single value: sample variance undefined -> NULL
	one := accumulate(t, r, "var", []arrow.Array{arrow.NewFloat64([]float64{5})}, []uint32{0}, 1)
	if !one.IsNull(0) {
		t.Fatal("sample variance of 1 value must be NULL")
	}
}

func TestCorr(t *testing.T) {
	r := NewRegistry()
	x := arrow.NewFloat64([]float64{1, 2, 3, 4})
	y := arrow.NewFloat64([]float64{2, 4, 6, 8})
	groups := make([]uint32, 4)
	c := accumulate(t, r, "corr", []arrow.Array{x, y}, groups, 1).(*arrow.Float64Array)
	if math.Abs(c.Value(0)-1.0) > 1e-9 {
		t.Fatalf("corr = %v", c.Value(0))
	}
	yneg := arrow.NewFloat64([]float64{8, 6, 4, 2})
	c2 := accumulate(t, r, "corr", []arrow.Array{x, yneg}, groups, 1).(*arrow.Float64Array)
	if math.Abs(c2.Value(0)+1.0) > 1e-9 {
		t.Fatalf("corr = %v", c2.Value(0))
	}
}

func TestMedian(t *testing.T) {
	r := NewRegistry()
	vals := arrow.NewInt64([]int64{5, 1, 3, 2, 4, 10, 20})
	groups := []uint32{0, 0, 0, 0, 0, 1, 1}
	m := accumulate(t, r, "median", []arrow.Array{vals}, groups, 2).(*arrow.Float64Array)
	if m.Value(0) != 3 || m.Value(1) != 15 {
		t.Fatal("median wrong")
	}
}

func TestCountDistinct(t *testing.T) {
	r := NewRegistry()
	vals := arrow.NewStringFromSlice([]string{"a", "b", "a", "c", "c", "c"})
	groups := []uint32{0, 0, 0, 1, 1, 1}
	c := accumulate(t, r, "count_distinct", []arrow.Array{vals}, groups, 2).(*arrow.Int64Array)
	if c.Value(0) != 2 || c.Value(1) != 1 {
		t.Fatal("count distinct wrong")
	}
}

func TestTwoPhaseMerge(t *testing.T) {
	// Simulate two-phase aggregation: partial accumulators produce State,
	// a final accumulator merges them; results must match single-phase.
	r := NewRegistry()
	for _, name := range []string{"sum", "count", "avg", "min", "max", "var", "stddev", "corr", "median", "count_distinct"} {
		args := []arrow.Array{
			arrow.NewFloat64([]float64{1, 2, 3, 4, 5, 6}),
			arrow.NewFloat64([]float64{2, 4, 5, 9, 10, 13}),
		}
		f, _ := r.Agg(name)
		nArgs := 1
		if name == "corr" {
			nArgs = 2
		}
		types := make([]*arrow.DataType, nArgs)
		for i := range types {
			types[i] = arrow.Float64
		}

		groups := []uint32{0, 1, 0, 1, 0, 1}
		single, err := f.NewAccumulator(types)
		if err != nil {
			t.Fatal(err)
		}
		if err := single.Update(args[:nArgs], groups, 2); err != nil {
			t.Fatal(err)
		}
		want, err := single.Evaluate()
		if err != nil {
			t.Fatal(err)
		}

		// Split rows into two partials.
		p1, _ := f.NewAccumulator(types)
		p2, _ := f.NewAccumulator(types)
		half := func(a arrow.Array, lo, n int) arrow.Array { return a.Slice(lo, n) }
		args1 := make([]arrow.Array, nArgs)
		args2 := make([]arrow.Array, nArgs)
		for i := 0; i < nArgs; i++ {
			args1[i] = half(args[i], 0, 3)
			args2[i] = half(args[i], 3, 3)
		}
		if err := p1.Update(args1, []uint32{0, 1, 0}, 2); err != nil {
			t.Fatal(err)
		}
		if err := p2.Update(args2, []uint32{1, 0, 1}, 2); err != nil {
			t.Fatal(err)
		}
		final, _ := f.NewAccumulator(types)
		for _, p := range []GroupsAccumulator{p1, p2} {
			state, err := p.State()
			if err != nil {
				t.Fatal(err)
			}
			if err := final.MergeStates(state, []uint32{0, 1}, 2); err != nil {
				t.Fatal(err)
			}
		}
		got, err := final.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 2; g++ {
			ws, gs := want.GetScalar(g), got.GetScalar(g)
			if ws.Null != gs.Null {
				t.Fatalf("%s group %d: null mismatch %v vs %v", name, g, ws, gs)
			}
			if ws.Null {
				continue
			}
			if ws.Type.ID == arrow.FLOAT64 {
				if math.Abs(ws.AsFloat64()-gs.AsFloat64()) > 1e-9 {
					t.Fatalf("%s group %d: %v != %v", name, g, ws, gs)
				}
			} else if !ws.Equal(gs) {
				t.Fatalf("%s group %d: %v != %v", name, g, ws, gs)
			}
		}
	}
}

func TestRegistryTypeResolution(t *testing.T) {
	r := NewRegistry()
	// logical.Registry interface behavior
	tp, err := r.ScalarReturnType("upper", []*arrow.DataType{arrow.String})
	if err != nil || tp.ID != arrow.STRING {
		t.Fatal("scalar type resolution wrong")
	}
	tp, err = r.AggReturnType("sum", []*arrow.DataType{arrow.Decimal(12, 2)})
	if err != nil || tp.ID != arrow.DECIMAL || tp.Scale != 2 {
		t.Fatal("sum(decimal) type wrong")
	}
	tp, err = r.WindowReturnType("row_number", nil)
	if err != nil || tp.ID != arrow.INT64 {
		t.Fatal("window type wrong")
	}
	// aggregates usable as window functions
	tp, err = r.WindowReturnType("sum", []*arrow.DataType{arrow.Int64})
	if err != nil || tp.ID != arrow.INT64 {
		t.Fatal("agg-as-window type wrong")
	}
	if _, err := r.ScalarReturnType("no_such_fn", nil); err == nil {
		t.Fatal("unknown function must error")
	}
}

func TestUDFRegistration(t *testing.T) {
	r := NewRegistry()
	r.RegisterScalar(&ScalarFunc{
		Name:       "plus_one",
		ReturnType: fixedType(arrow.Int64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in := args[0].ToArray(numRows).(*arrow.Int64Array)
			out := make([]int64, in.Len())
			for i, v := range in.Values() {
				out[i] = v + 1
			}
			return arrow.ArrayDatum(arrow.NewInt64(out)), nil
		},
	})
	got := evalScalar(t, r, "PLUS_ONE", 2, arrow.ArrayDatum(arrow.NewInt64([]int64{1, 2}))).(*arrow.Int64Array)
	if got.Value(1) != 3 {
		t.Fatal("UDF wrong")
	}
}

func TestRegexpFunctions(t *testing.T) {
	r := NewRegistry()
	in := arrow.ArrayDatum(arrow.NewStringFromSlice([]string{"http://a.example.com/x", "nope"}))
	like := evalScalar(t, r, "regexp_like", 2, in, arrow.ScalarDatum(arrow.StringScalar(`^https?://`))).(*arrow.BoolArray)
	if !like.Value(0) || like.Value(1) {
		t.Fatal("regexp_like wrong")
	}
	repl := evalScalar(t, r, "regexp_replace", 2, in,
		arrow.ScalarDatum(arrow.StringScalar(`^https?://([^/]+)/.*$`)),
		arrow.ScalarDatum(arrow.StringScalar("$1"))).(*arrow.StringArray)
	if repl.Value(0) != "a.example.com" || repl.Value(1) != "nope" {
		t.Fatalf("regexp_replace = %q, %q", repl.Value(0), repl.Value(1))
	}
	m := evalScalar(t, r, "regexp_match", 2, in,
		arrow.ScalarDatum(arrow.StringScalar(`example\.[a-z]+`))).(*arrow.StringArray)
	if m.Value(0) != "example.com" || !m.IsNull(1) {
		t.Fatal("regexp_match wrong")
	}
	// bad pattern errors
	f, _ := r.Scalar("regexp_like")
	if _, err := f.Eval([]arrow.Datum{in, arrow.ScalarDatum(arrow.StringScalar("("))}, 2); err == nil {
		t.Fatal("bad pattern must error")
	}
}
