// Package functions implements the engine's function library (paper
// Section 5.4.3): scalar, aggregate, and window functions, all registered
// through the same API exposed for user-defined functions (Section 7.1).
// Functions consume and produce arrow Datums (ColumnarValues), so UDFs
// have the same performance as built-ins.
package functions

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
)

// ScalarFunc describes a scalar function: one output row per input row.
type ScalarFunc struct {
	Name string
	// ReturnType resolves the output type from argument types.
	ReturnType func(args []*arrow.DataType) (*arrow.DataType, error)
	// Eval evaluates the function over a batch.
	Eval func(args []arrow.Datum, numRows int) (arrow.Datum, error)
}

// AggFunc describes an aggregate function: one output row per group.
type AggFunc struct {
	Name string
	// ReturnType resolves the output type from argument types.
	ReturnType func(args []*arrow.DataType) (*arrow.DataType, error)
	// StateTypes lists the partial-aggregation state column types, used by
	// two-phase aggregation and spilling.
	StateTypes func(args []*arrow.DataType) ([]*arrow.DataType, error)
	// NewAccumulator creates a vectorized per-group accumulator.
	NewAccumulator func(args []*arrow.DataType) (GroupsAccumulator, error)
}

// WindowFuncDef describes a built-in window function. Aggregate functions
// may also be used in window position; the executor handles that case.
type WindowFuncDef struct {
	Name string
	// ReturnType resolves the output type from argument types.
	ReturnType func(args []*arrow.DataType) (*arrow.DataType, error)
}

// Registry holds all registered functions and resolves their types during
// planning. It implements logical.Registry.
type Registry struct {
	scalars map[string]*ScalarFunc
	aggs    map[string]*AggFunc
	windows map[string]*WindowFuncDef
}

// NewRegistry returns a registry pre-populated with the built-in library.
func NewRegistry() *Registry {
	r := &Registry{
		scalars: map[string]*ScalarFunc{},
		aggs:    map[string]*AggFunc{},
		windows: map[string]*WindowFuncDef{},
	}
	registerMath(r)
	registerString(r)
	registerDateTime(r)
	registerConditional(r)
	registerRegexp(r)
	registerAggregates(r)
	registerWindowFuncs(r)
	return r
}

// RegisterScalar adds (or replaces) a scalar function.
func (r *Registry) RegisterScalar(f *ScalarFunc) {
	r.scalars[strings.ToLower(f.Name)] = f
}

// RegisterAgg adds (or replaces) an aggregate function.
func (r *Registry) RegisterAgg(f *AggFunc) {
	r.aggs[strings.ToLower(f.Name)] = f
}

// RegisterWindow adds (or replaces) a window function.
func (r *Registry) RegisterWindow(f *WindowFuncDef) {
	r.windows[strings.ToLower(f.Name)] = f
}

// Scalar looks up a scalar function by name (case-insensitive).
func (r *Registry) Scalar(name string) (*ScalarFunc, bool) {
	f, ok := r.scalars[strings.ToLower(name)]
	return f, ok
}

// Agg looks up an aggregate function by name.
func (r *Registry) Agg(name string) (*AggFunc, bool) {
	f, ok := r.aggs[strings.ToLower(name)]
	return f, ok
}

// Window looks up a window function by name.
func (r *Registry) Window(name string) (*WindowFuncDef, bool) {
	f, ok := r.windows[strings.ToLower(name)]
	return f, ok
}

// IsAggregate reports whether name is a registered aggregate.
func (r *Registry) IsAggregate(name string) bool {
	_, ok := r.aggs[strings.ToLower(name)]
	return ok
}

// IsWindow reports whether name is a registered pure window function.
func (r *Registry) IsWindow(name string) bool {
	_, ok := r.windows[strings.ToLower(name)]
	return ok
}

// ScalarReturnType implements logical.Registry.
func (r *Registry) ScalarReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error) {
	f, ok := r.Scalar(name)
	if !ok {
		return nil, fmt.Errorf("functions: unknown scalar function %q", name)
	}
	return f.ReturnType(args)
}

// AggReturnType implements logical.Registry.
func (r *Registry) AggReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error) {
	f, ok := r.Agg(name)
	if !ok {
		return nil, fmt.Errorf("functions: unknown aggregate function %q", name)
	}
	return f.ReturnType(args)
}

// WindowReturnType implements logical.Registry.
func (r *Registry) WindowReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error) {
	if f, ok := r.Window(name); ok {
		return f.ReturnType(args)
	}
	// Aggregates are usable in window position.
	if f, ok := r.Agg(name); ok {
		return f.ReturnType(args)
	}
	return nil, fmt.Errorf("functions: unknown window function %q", name)
}

// fixedType returns a ReturnType resolver ignoring arguments.
func fixedType(t *arrow.DataType) func([]*arrow.DataType) (*arrow.DataType, error) {
	return func([]*arrow.DataType) (*arrow.DataType, error) { return t, nil }
}

// sameAsArg returns a resolver echoing argument i's type.
func sameAsArg(i int) func([]*arrow.DataType) (*arrow.DataType, error) {
	return func(args []*arrow.DataType) (*arrow.DataType, error) {
		if i >= len(args) {
			return nil, fmt.Errorf("functions: missing argument %d", i)
		}
		return args[i], nil
	}
}
