package functions

import (
	"fmt"
	"math"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

// numericAsFloat converts any numeric array to float64 values.
func numericAsFloat(a arrow.Array) (*arrow.Float64Array, error) {
	out, err := compute.Cast(a, arrow.Float64)
	if err != nil {
		return nil, err
	}
	return out.(*arrow.Float64Array), nil
}

// floatUnary builds a float64 -> float64 elementwise scalar function.
func floatUnary(name string, f func(float64) float64) *ScalarFunc {
	return &ScalarFunc{
		Name:       name,
		ReturnType: fixedType(arrow.Float64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 1 {
				return arrow.Datum{}, fmt.Errorf("%s takes 1 argument", name)
			}
			in, err := numericAsFloat(args[0].ToArray(numRows))
			if err != nil {
				return arrow.Datum{}, err
			}
			vals := make([]float64, in.Len())
			for i, v := range in.Values() {
				vals[i] = f(v)
			}
			return arrow.ArrayDatum(arrow.NewNumeric(arrow.Float64, vals, in.Validity().Clone())), nil
		},
	}
}

func registerMath(r *Registry) {
	r.RegisterScalar(&ScalarFunc{
		Name:       "abs",
		ReturnType: sameAsArg(0),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			a := args[0].ToArray(numRows)
			switch arr := a.(type) {
			case *arrow.Int64Array:
				vals := make([]int64, arr.Len())
				for i, v := range arr.Values() {
					if v < 0 {
						v = -v
					}
					vals[i] = v
				}
				return arrow.ArrayDatum(arrow.NewNumeric(arr.DataType(), vals, arr.Validity().Clone())), nil
			case *arrow.Float64Array:
				vals := make([]float64, arr.Len())
				for i, v := range arr.Values() {
					vals[i] = math.Abs(v)
				}
				return arrow.ArrayDatum(arrow.NewNumeric(arrow.Float64, vals, arr.Validity().Clone())), nil
			case *arrow.Int32Array:
				vals := make([]int32, arr.Len())
				for i, v := range arr.Values() {
					if v < 0 {
						v = -v
					}
					vals[i] = v
				}
				return arrow.ArrayDatum(arrow.NewNumeric(arr.DataType(), vals, arr.Validity().Clone())), nil
			}
			return arrow.Datum{}, fmt.Errorf("abs: unsupported type %s", a.DataType())
		},
	})

	r.RegisterScalar(floatUnary("sqrt", math.Sqrt))
	r.RegisterScalar(floatUnary("ln", math.Log))
	r.RegisterScalar(floatUnary("log10", math.Log10))
	r.RegisterScalar(floatUnary("log2", math.Log2))
	r.RegisterScalar(floatUnary("exp", math.Exp))
	r.RegisterScalar(floatUnary("sin", math.Sin))
	r.RegisterScalar(floatUnary("cos", math.Cos))
	r.RegisterScalar(floatUnary("tan", math.Tan))
	r.RegisterScalar(floatUnary("ceil", math.Ceil))
	r.RegisterScalar(floatUnary("floor", math.Floor))
	r.RegisterScalar(floatUnary("sign", func(v float64) float64 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		}
		return 0
	}))

	r.RegisterScalar(&ScalarFunc{
		Name:       "round",
		ReturnType: fixedType(arrow.Float64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := numericAsFloat(args[0].ToArray(numRows))
			if err != nil {
				return arrow.Datum{}, err
			}
			scale := 0.0
			if len(args) > 1 {
				s := args[1].ScalarValue()
				if !s.Null {
					scale = s.AsFloat64()
				}
			}
			m := math.Pow10(int(scale))
			vals := make([]float64, in.Len())
			for i, v := range in.Values() {
				vals[i] = math.Round(v*m) / m
			}
			return arrow.ArrayDatum(arrow.NewNumeric(arrow.Float64, vals, in.Validity().Clone())), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "power",
		ReturnType: fixedType(arrow.Float64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			base, err := numericAsFloat(args[0].ToArray(numRows))
			if err != nil {
				return arrow.Datum{}, err
			}
			exp, err := numericAsFloat(args[1].ToArray(numRows))
			if err != nil {
				return arrow.Datum{}, err
			}
			vals := make([]float64, base.Len())
			for i := range vals {
				vals[i] = math.Pow(base.Value(i), exp.Value(i))
			}
			var valid arrow.Bitmap
			if base.NullCount() > 0 || exp.NullCount() > 0 {
				valid = arrow.NewBitmap(base.Len())
				valid.And(base.Validity(), exp.Validity(), base.Len())
			}
			return arrow.ArrayDatum(arrow.NewNumeric(arrow.Float64, vals, valid)), nil
		},
	})
	r.RegisterScalar(&ScalarFunc{Name: "pow", ReturnType: fixedType(arrow.Float64),
		Eval: mustScalar(r, "power").Eval})

	r.RegisterScalar(&ScalarFunc{
		Name:       "truncate",
		ReturnType: fixedType(arrow.Float64),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in, err := numericAsFloat(args[0].ToArray(numRows))
			if err != nil {
				return arrow.Datum{}, err
			}
			vals := make([]float64, in.Len())
			for i, v := range in.Values() {
				vals[i] = math.Trunc(v)
			}
			return arrow.ArrayDatum(arrow.NewNumeric(arrow.Float64, vals, in.Validity().Clone())), nil
		},
	})
}

// mustScalar fetches an already-registered scalar function (registration
// order dependency within this package).
func mustScalar(r *Registry, name string) *ScalarFunc {
	f, ok := r.Scalar(name)
	if !ok {
		panic("functions: missing " + name)
	}
	return f
}
