package functions

import (
	"fmt"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

// widestType finds the common type of a set of argument types.
func widestType(args []*arrow.DataType) (*arrow.DataType, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("functions: no arguments")
	}
	out := args[0]
	for _, t := range args[1:] {
		if out.ID == arrow.NULL {
			out = t
			continue
		}
		if t.ID == arrow.NULL || out.Equal(t) {
			continue
		}
		switch {
		case out.IsNumeric() && t.IsNumeric():
			if out.IsFloat() || t.IsFloat() {
				out = arrow.Float64
			} else if out.ID == arrow.DECIMAL || t.ID == arrow.DECIMAL {
				s := out.Scale
				if t.Scale > s {
					s = t.Scale
				}
				out = arrow.Decimal(18, s)
			} else if t.BitWidth() > out.BitWidth() {
				out = t
			}
		default:
			return nil, fmt.Errorf("functions: incompatible argument types %s and %s", out, t)
		}
	}
	return out, nil
}

func registerConditional(r *Registry) {
	r.RegisterScalar(&ScalarFunc{
		Name:       "coalesce",
		ReturnType: widestType,
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			types := make([]*arrow.DataType, len(args))
			for i, a := range args {
				types[i] = a.DataType()
			}
			out, err := widestType(types)
			if err != nil {
				return arrow.Datum{}, err
			}
			cols := make([]arrow.Array, len(args))
			for i, a := range args {
				arr := a.ToArray(numRows)
				if !arr.DataType().Equal(out) {
					arr, err = compute.Cast(arr, out)
					if err != nil {
						return arrow.Datum{}, err
					}
				}
				cols[i] = arr
			}
			b := arrow.NewBuilder(out)
			for i := 0; i < numRows; i++ {
				appended := false
				for _, c := range cols {
					if c.IsValid(i) {
						b.AppendFrom(c, i)
						appended = true
						break
					}
				}
				if !appended {
					b.AppendNull()
				}
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})
	co := mustScalar(r, "coalesce")
	r.RegisterScalar(&ScalarFunc{Name: "ifnull", ReturnType: co.ReturnType, Eval: co.Eval})
	r.RegisterScalar(&ScalarFunc{Name: "nvl", ReturnType: co.ReturnType, Eval: co.Eval})

	r.RegisterScalar(&ScalarFunc{
		Name:       "nullif",
		ReturnType: sameAsArg(0),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 2 {
				return arrow.Datum{}, fmt.Errorf("nullif takes 2 arguments")
			}
			a := args[0].ToArray(numRows)
			bArr := args[1].ToArray(numRows)
			eq, err := compute.Compare(compute.Eq, a, bArr)
			if err != nil {
				return arrow.Datum{}, err
			}
			out := arrow.NewBuilder(a.DataType())
			for i := 0; i < numRows; i++ {
				if eq.IsValid(i) && eq.Value(i) {
					out.AppendNull()
				} else {
					out.AppendFrom(a, i)
				}
			}
			return arrow.ArrayDatum(out.Finish()), nil
		},
	})

	minmaxN := func(name string, wantMax bool) *ScalarFunc {
		return &ScalarFunc{
			Name:       name,
			ReturnType: widestType,
			Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
				types := make([]*arrow.DataType, len(args))
				for i, a := range args {
					types[i] = a.DataType()
				}
				out, err := widestType(types)
				if err != nil {
					return arrow.Datum{}, err
				}
				cols := make([]arrow.Array, len(args))
				for i, a := range args {
					arr := a.ToArray(numRows)
					if !arr.DataType().Equal(out) {
						arr, err = compute.Cast(arr, out)
						if err != nil {
							return arrow.Datum{}, err
						}
					}
					cols[i] = arr
				}
				b := arrow.NewBuilder(out)
				for i := 0; i < numRows; i++ {
					best := -1
					for c := range cols {
						if cols[c].IsNull(i) {
							continue
						}
						if best < 0 {
							best = c
							continue
						}
						cmp := compute.CompareScalars(cols[c].GetScalar(i), cols[best].GetScalar(i))
						if (wantMax && cmp > 0) || (!wantMax && cmp < 0) {
							best = c
						}
					}
					if best < 0 {
						b.AppendNull()
					} else {
						b.AppendFrom(cols[best], i)
					}
				}
				return arrow.ArrayDatum(b.Finish()), nil
			},
		}
	}
	r.RegisterScalar(minmaxN("greatest", true))
	r.RegisterScalar(minmaxN("least", false))
}
