package functions

import (
	"fmt"
	"regexp"
	"sync"

	"gofusion/internal/arrow"
)

// regexpCache memoizes compiled patterns across batches.
var regexpCache sync.Map // string -> *regexp.Regexp

func compileCached(pattern string) (*regexp.Regexp, error) {
	if re, ok := regexpCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("functions: bad regexp %q: %w", pattern, err)
	}
	regexpCache.Store(pattern, re)
	return re, nil
}

func registerRegexp(r *Registry) {
	r.RegisterScalar(&ScalarFunc{
		Name:       "regexp_like",
		ReturnType: fixedType(arrow.Boolean),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 2 {
				return arrow.Datum{}, fmt.Errorf("regexp_like takes 2 arguments")
			}
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			pat, err := constantString(args[1])
			if err != nil {
				return arrow.Datum{}, err
			}
			re, err := compileCached(pat)
			if err != nil {
				return arrow.Datum{}, err
			}
			b := arrow.NewBoolBuilder()
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
					continue
				}
				b.Append(re.Match(in.ValueBytes(i)))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "regexp_replace",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 3 {
				return arrow.Datum{}, fmt.Errorf("regexp_replace takes 3 arguments")
			}
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			pat, err := constantString(args[1])
			if err != nil {
				return arrow.Datum{}, err
			}
			repl, err := constantString(args[2])
			if err != nil {
				return arrow.Datum{}, err
			}
			re, err := compileCached(pat)
			if err != nil {
				return arrow.Datum{}, err
			}
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
					continue
				}
				b.Append(re.ReplaceAllString(in.Value(i), repl))
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})

	r.RegisterScalar(&ScalarFunc{
		Name:       "regexp_match",
		ReturnType: fixedType(arrow.String),
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			if len(args) != 2 {
				return arrow.Datum{}, fmt.Errorf("regexp_match takes 2 arguments")
			}
			in, err := asString(args[0], numRows)
			if err != nil {
				return arrow.Datum{}, err
			}
			pat, err := constantString(args[1])
			if err != nil {
				return arrow.Datum{}, err
			}
			re, err := compileCached(pat)
			if err != nil {
				return arrow.Datum{}, err
			}
			b := arrow.NewStringBuilder(arrow.String)
			for i := 0; i < in.Len(); i++ {
				if in.IsNull(i) {
					b.AppendNull()
					continue
				}
				m := re.FindString(in.Value(i))
				if m == "" && !re.MatchString(in.Value(i)) {
					b.AppendNull()
					continue
				}
				b.Append(m)
			}
			return arrow.ArrayDatum(b.Finish()), nil
		},
	})
}

// constantString extracts a constant (scalar or first-row) string
// argument, as regexp patterns must be.
func constantString(d arrow.Datum) (string, error) {
	if !d.IsArray() {
		s := d.ScalarValue()
		if s.Null {
			return "", fmt.Errorf("functions: NULL pattern")
		}
		return s.AsString(), nil
	}
	a := d.Array()
	if a.Len() == 0 || a.IsNull(0) {
		return "", fmt.Errorf("functions: NULL pattern")
	}
	return a.GetScalar(0).AsString(), nil
}
