// Command gofusion-server runs the multi-tenant SQL service: an
// HTTP/JSON front end (internal/server) over one shared engine session
// with admission control, a global memory budget, plan-cache backed
// prepared statements, and a /stats endpoint.
//
// Endpoints:
//
//	POST /query   {"sql": "SELECT ...", "session": "alice", "timeout_ms": 500}
//	POST /query   {"prepared": "p1", "session": "alice"}
//	POST /prepare {"sql": "SELECT ...", "session": "alice"}
//	GET  /stats
//	GET  /healthz
//
// Datasets: -tpch/-clickbench/-fuzz register built-in generated
// workloads in memory; -gpq and -csv register files. Example:
//
//	gofusion-server -addr :8080 -tpch 0.01 -slots 8 -memory-budget 268435456
//	curl -s localhost:8080/query -d '{"sql":"SELECT count(*) FROM lineitem"}'
//	curl -s localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"gofusion/internal/core"
	"gofusion/internal/csvio"
	"gofusion/internal/fuzzsql"
	"gofusion/internal/server"
	"gofusion/internal/workload/clickbench"
	"gofusion/internal/workload/tpch"
)

// tableFlags collects repeated name=path registrations.
type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		slots        = flag.Int("slots", 8, "queries allowed to execute concurrently")
		maxQueue     = flag.Int("max-queue", 0, "bounded wait queue size (0 = 2*slots); beyond it requests shed with 429")
		queueTimeout = flag.Duration("queue-timeout", 10*time.Second, "longest queue wait before shedding with 503")
		reqTimeout   = flag.Duration("request-timeout", 60*time.Second, "default per-request execution deadline")
		budget       = flag.Int64("memory-budget", 0, "global tracked-memory budget in bytes across all queries (0 = unbounded)")
		queryLimit   = flag.Int64("query-memory-limit", 0, "per-query tracked-memory cap in bytes (0 = budget only)")
		partitions   = flag.Int("partitions", 0, "target partitions per query (0 = engine default)")
		planCache    = flag.Bool("plan-cache", true, "enable the logical plan cache (prepared statements and repeats skip planning)")
		resultCache  = flag.Bool("result-cache", false, "enable the whole-result cache")
		spillDir     = flag.String("spill-dir", "", "directory for operator spill files")
		tpchSF       = flag.Float64("tpch", 0, "register the TPC-H tables in memory at this scale factor")
		cbRows       = flag.Int("clickbench", 0, "register the ClickBench hits table in memory with this many rows")
		fuzzSeed     = flag.Int64("fuzz", 0, "register the fuzzsql t1/t2 tables generated from this seed")
		gpqTables    tableFlags
		csvTables    tableFlags
	)
	flag.Var(&gpqTables, "gpq", "register a GPQ table as name=path (repeatable; path may list files comma-separated)")
	flag.Var(&csvTables, "csv", "register a CSV table as name=path (repeatable)")
	flag.Parse()

	scfg := core.DefaultConfig()
	if *partitions > 0 {
		scfg.TargetPartitions = *partitions
	}
	scfg.EnablePlanCache = *planCache
	scfg.EnableResultCache = *resultCache
	if *spillDir != "" {
		scfg.SpillDir = *spillDir
	}
	srv := server.New(server.Config{
		Session:          scfg,
		MemoryBudget:     *budget,
		QueryMemoryLimit: *queryLimit,
		Slots:            *slots,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueTimeout,
		RequestTimeout:   *reqTimeout,
	})
	defer srv.Close()

	s := srv.Session()
	if *tpchSF > 0 {
		if err := tpch.RegisterInMemory(s, *tpchSF); err != nil {
			log.Fatalf("registering tpch: %v", err)
		}
		log.Printf("registered TPC-H sf=%g in memory", *tpchSF)
	}
	if *cbRows > 0 {
		if err := clickbench.RegisterInMemory(s, *cbRows); err != nil {
			log.Fatalf("registering clickbench: %v", err)
		}
		log.Printf("registered ClickBench hits (%d rows)", *cbRows)
	}
	if *fuzzSeed != 0 {
		ds := fuzzsql.NewDataset(*fuzzSeed)
		for _, t := range ds.Tables {
			if err := s.RegisterBatches(t.Name, t.Schema, t.Batches); err != nil {
				log.Fatalf("registering fuzzsql %s: %v", t.Name, err)
			}
		}
		log.Printf("registered fuzzsql tables (seed %d)", *fuzzSeed)
	}
	for _, spec := range gpqTables {
		name, path, err := splitSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.RegisterGPQ(name, strings.Split(path, ",")...); err != nil {
			log.Fatalf("registering gpq %s: %v", name, err)
		}
		log.Printf("registered GPQ table %s from %s", name, path)
	}
	for _, spec := range csvTables {
		name, path, err := splitSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.RegisterCSV(name, path, csvio.DefaultOptions()); err != nil {
			log.Fatalf("registering csv %s: %v", name, err)
		}
		log.Printf("registered CSV table %s from %s", name, path)
	}

	log.Printf("gofusion-server listening on %s (slots=%d queue=%d budget=%d bytes)",
		*addr, *slots, *maxQueue, *budget)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

func splitSpec(spec string) (name, path string, err error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return "", "", fmt.Errorf("bad table spec %q (want name=path)", spec)
	}
	return name, path, nil
}
