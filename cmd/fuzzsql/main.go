// Command fuzzsql runs the differential SQL fuzzing harness from the
// command line: randomized queries over randomized tables, executed on
// the vectorized engine across a configuration matrix and cross-checked
// against the TightDB baseline. Any mismatch or panic is shrunk to a
// minimal repro and printed as a ready-to-paste Go test.
//
// Usage:
//
//	fuzzsql -seed 1 -n 300                 # fixed budget
//	fuzzsql -seed 1 -duration 30s          # time budget
//	fuzzsql -config p4,p4-spill -format gpq
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gofusion/internal/fuzzsql"
	"gofusion/internal/memory"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "dataset and query stream seed")
		n        = flag.Int("n", 300, "number of queries (0 = unbounded, needs -duration)")
		duration = flag.Duration("duration", 0, "stop after this long (0 = no time bound)")
		config   = flag.String("config", "", "comma-separated engine config names (default: all)")
		format   = flag.String("format", "", "comma-separated formats: mem,csv,gpq (default: all)")
		maxFail  = flag.Int("max-failures", 3, "stop after this many failures")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	opts := fuzzsql.Options{
		Seed:        *seed,
		N:           *n,
		Duration:    *duration,
		MaxFailures: *maxFail,
	}
	if !*quiet {
		opts.Log = func(f string, args ...any) { fmt.Fprintf(os.Stderr, f+"\n", args...) }
	}
	if *config != "" {
		cfgs, err := fuzzsql.ConfigByName(strings.Split(*config, ","))
		if err != nil {
			fatal(err)
		}
		opts.Configs = cfgs
	}
	if *format != "" {
		for _, f := range strings.Split(*format, ",") {
			switch fuzzsql.Format(f) {
			case fuzzsql.Mem, fuzzsql.CSV, fuzzsql.GPQ:
				opts.Formats = append(opts.Formats, fuzzsql.Format(f))
			default:
				fatal(fmt.Errorf("unknown format %q (want mem, csv, or gpq)", f))
			}
		}
	}

	start := time.Now()
	rep, err := fuzzsql.Run(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Summary())
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
	// Under -tags sanitize, fail on anything the checked allocator
	// recorded: double releases, canary overwrites, leaked reservations
	// or spill files.
	if fs := memory.SanitizerFindings(); len(fs) > 0 {
		for _, f := range fs {
			fmt.Fprintln(os.Stderr, "sanitizer:", f)
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "ok: %d queries agreed across the matrix in %s\n",
			rep.Queries, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzsql:", err)
	os.Exit(1)
}
