// Command gofusion-cli is an interactive SQL shell over registered data
// files, in the spirit of datafusion-cli.
//
// Usage:
//
//	gofusion-cli -gpq sales=data/sales.gpq -csv users=users.csv [-p 8]
//	> SELECT region, count(*) FROM sales GROUP BY region;
//	> EXPLAIN SELECT ...;
//	> \d            -- list tables
//	> \q            -- quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gofusion/internal/core"
	"gofusion/internal/csvio"
)

// tableFlags collects repeated -gpq/-csv/-json name=path flags.
type tableFlags struct {
	kind  string
	items *[]tableSpec
}

type tableSpec struct{ kind, name, path string }

func (f tableFlags) String() string { return "" }
func (f tableFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	*f.items = append(*f.items, tableSpec{kind: f.kind, name: parts[0], path: parts[1]})
	return nil
}

func main() {
	var tables []tableSpec
	parallelism := flag.Int("p", 1, "target partitions")
	memLimit := flag.Int64("mem", 0, "memory limit in bytes (0 = unlimited)")
	command := flag.String("c", "", "run one SQL statement and exit")
	flag.Var(tableFlags{"gpq", &tables}, "gpq", "register GPQ table: name=path (file or directory; repeatable)")
	flag.Var(tableFlags{"csv", &tables}, "csv", "register CSV table: name=path (repeatable)")
	flag.Var(tableFlags{"json", &tables}, "json", "register NDJSON table: name=path (repeatable)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.TargetPartitions = *parallelism
	cfg.MemoryLimit = *memLimit
	session := core.NewSession(cfg)

	for _, t := range tables {
		var err error
		switch t.kind {
		case "gpq":
			if st, serr := os.Stat(t.path); serr == nil && st.IsDir() {
				err = session.RegisterGPQDir(t.name, t.path)
			} else {
				err = session.RegisterGPQ(t.name, t.path)
			}
		case "csv":
			err = session.RegisterCSV(t.name, t.path, csvio.DefaultOptions())
		case "json":
			err = session.RegisterJSON(t.name, t.path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "registering %s: %v\n", t.name, err)
			os.Exit(1)
		}
	}

	if *command != "" {
		if err := runStatement(session, *command); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("gofusion-cli — type SQL terminated by ';', \\d for tables, \\q to quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var pending strings.Builder
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case "\\q", "exit", "quit":
			return
		case "\\d":
			sp, _ := session.Catalog().SchemaByName("public")
			for _, name := range sp.TableNames() {
				t, _ := sp.Table(name)
				fmt.Printf("%s  %s\n", name, t.Schema())
			}
			fmt.Print("> ")
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := strings.TrimSpace(pending.String())
			pending.Reset()
			if stmt != "" && stmt != ";" {
				if err := runStatement(session, stmt); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
			}
			fmt.Print("> ")
		} else {
			fmt.Print("... ")
		}
	}
}

func runStatement(session *core.SessionContext, stmt string) error {
	start := time.Now()
	df, err := session.SQL(stmt)
	if err != nil {
		return err
	}
	// EXPLAIN / EXPLAIN ANALYZE results are plan text: print the lines
	// verbatim (and untruncated) instead of as a formatted row table.
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "EXPLAIN") {
		batch, err := df.CollectBatch()
		if err != nil {
			return err
		}
		for i := 0; i < batch.NumRows(); i++ {
			fmt.Println(batch.Column(0).GetScalar(i).AsString())
		}
	} else if err := df.Show(os.Stdout, 50); err != nil {
		return err
	}
	fmt.Printf("(%s)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
