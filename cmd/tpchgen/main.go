// Command tpchgen writes the deterministic TPC-H dataset as GPQ files,
// one per table, for use with gofusion-cli and the benchmarks.
//
// Usage:
//
//	tpchgen -dir data/tpch -sf 0.01 -rowgroup 2048
package main

import (
	"flag"
	"fmt"
	"os"

	"gofusion/internal/workload/tpch"
)

func main() {
	dir := flag.String("dir", "tpch-data", "output directory")
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = ~6M lineitem rows)")
	rowGroup := flag.Int("rowgroup", 8192, "rows per GPQ row group")
	flag.Parse()
	if err := tpch.WriteGPQ(*dir, *sf, *rowGroup); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range tpch.TableNames {
		fmt.Printf("%s/%s.gpq\n", *dir, name)
	}
}
