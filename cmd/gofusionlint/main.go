// Command gofusionlint runs the engine's custom static analyzers
// (internal/analysis/...) over gofusion packages. It speaks two
// protocols:
//
//   - As a vet tool: `go vet -vettool=$(command -v gofusionlint) ./...`.
//     The go command probes the tool with -V=full (version stamp for the
//     build cache) and -flags (JSON flag inventory), then invokes it once
//     per package with a vet.cfg JSON file naming the sources, the import
//     map, and the export data of every dependency. Diagnostics go to
//     stderr as file:line:col: messages; a non-zero exit marks findings.
//
//   - Standalone: `gofusionlint ./...` loads packages itself via
//     `go list -export` and runs the same analyzers. Useful without the
//     vet harness (editors, make lint on a subset).
//
// Individual analyzers can be disabled with -<name>=false in either mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/atomicfield"
	"gofusion/internal/analysis/ctxflow"
	"gofusion/internal/analysis/eofconvention"
	"gofusion/internal/analysis/goroutinedrain"
	"gofusion/internal/analysis/load"
	"gofusion/internal/analysis/lockorder"
	"gofusion/internal/analysis/nolintaudit"
	"gofusion/internal/analysis/resbalance"
	"gofusion/internal/analysis/scanlimit"
	"gofusion/internal/analysis/streamclose"
	"gofusion/internal/analysis/unsafealias"
)

var suite = []*analysis.Analyzer{
	streamclose.Analyzer,
	atomicfield.Analyzer,
	unsafealias.Analyzer,
	goroutinedrain.Analyzer,
	eofconvention.Analyzer,
	scanlimit.Analyzer,
	lockorder.Analyzer,
	resbalance.Analyzer,
	ctxflow.Analyzer,
	nolintaudit.Analyzer,
}

// vetConfig mirrors the JSON the go command writes for -vettool
// invocations (see cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	GoVersion string

	SucceedOnTypecheckFailure bool
}

func main() {
	enabled := map[string]*bool{}
	for _, a := range suite {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	versionFlag := flag.String("V", "", "print version and exit (-V=full for a build-cache stamp)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON and exit")
	flag.BoolVar(&debug, "debug", false, "print per-analyzer wall time to stderr")
	flag.Parse()

	if *versionFlag != "" {
		// The go command requires "<name> version <stamp>" from -V=full.
		fmt.Printf("gofusionlint version v1-%d-analyzers\n", len(suite))
		return
	}
	if *flagsFlag {
		printFlags()
		return
	}

	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(active, args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(active, args))
}

// printFlags emits the flag inventory the go command uses to decide
// which vet command-line flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" || f.Name == "debug" {
			return
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runVet analyzes the single package described by a go-vet config file.
func runVet(active []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gofusionlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool exports no facts, but the go command expects the vetx
	// output file to be produced when requested.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if cfg.Compiler != "gc" && cfg.Compiler != "" {
		return 0 // export data from other compilers is unreadable here
	}

	goFiles := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(fset, cfg.ImportPath, goFiles, load.ExportImporter(fset, cfg.PackageFile, cfg.ImportMap))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gofusionlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}
	return report(active, fset, pkg)
}

// runStandalone loads the packages matching the patterns and analyzes
// each in turn.
func runStandalone(active []*analysis.Analyzer, patterns []string) int {
	moduleDir, err := load.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := load.Load(moduleDir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintln(os.Stderr, e)
			}
			exit = 1
			continue
		}
		if code := report(active, pkg.Fset, pkg); code != 0 {
			exit = code
		}
	}
	return exit
}

// debug enables the per-analyzer wall-time breakdown on stderr.
var debug bool

func report(active []*analysis.Analyzer, fset *token.FileSet, pkg *load.Package) int {
	diags, timings, err := analysis.RunAnalyzersTimed(active, fset, pkg.Files, pkg.Types, pkg.Info)
	if debug {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "debug: %-16s %10v  %s\n", tm.Name, tm.Elapsed.Round(time.Microsecond), pkg.ImportPath)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
