// Command gofusion-bench regenerates the paper's evaluation tables and
// figures (Section 8): Table 1 (ClickBench single core), Figure 5 (TPC-H),
// Figure 6 (H2O-G groupby), Figure 7 (multi-core scalability), plus the
// DESIGN.md ablations. It prints the same rows/series the paper reports,
// with GoFusion standing in for DataFusion and TightDB for DuckDB.
//
// Usage:
//
//	gofusion-bench -exp all                 # everything, laptop scale
//	gofusion-bench -exp table1 -repeat 3
//	gofusion-bench -exp fig7 -cores 1,2,4,8
//	gofusion-bench -exp fig5 -sf 0.1 -data /tmp/benchdata
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gofusion/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment: table1|fig5|fig6|fig7|ablation|all")
	repeat := flag.Int("repeat", 3, "timed repetitions per query (best kept)")
	sf := flag.Float64("sf", cfg.TPCHSF, "TPC-H scale factor")
	hits := flag.Int("hits", cfg.HitsRows, "ClickBench row count")
	hitsFiles := flag.Int("hits-files", cfg.HitsFiles, "ClickBench file count")
	h2oRows := flag.Int("h2o", cfg.H2ORows, "H2O groupby row count")
	data := flag.String("data", cfg.DataDir, "dataset cache directory")
	cores := flag.String("cores", "", "comma-separated core counts for fig7 (default: powers of two up to NumCPU)")
	flag.Parse()

	cfg.TPCHSF = *sf
	cfg.HitsRows = *hits
	cfg.HitsFiles = *hitsFiles
	cfg.H2ORows = *h2oRows
	cfg.DataDir = *data
	if *cores != "" {
		cfg.Cores = nil
		for _, part := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatal("bad -cores value %q", part)
			}
			cfg.Cores = append(cfg.Cores, n)
		}
	}

	fmt.Printf("generating datasets under %s (tpch sf=%g, hits=%d rows/%d files, h2o=%d rows)...\n",
		cfg.DataDir, cfg.TPCHSF, cfg.HitsRows, cfg.HitsFiles, cfg.H2ORows)
	if err := cfg.EnsureData(); err != nil {
		fatal("%v", err)
	}

	run := func(name string) {
		switch name {
		case "table1":
			compare(cfg, bench.ClickBench, *repeat,
				"Table 1: ClickBench single core (seconds)")
		case "fig5":
			compare(cfg, bench.TPCH, *repeat,
				"Figure 5: TPC-H single core (seconds)")
		case "fig6":
			compare(cfg, bench.H2O, *repeat,
				"Figure 6: H2O-G groupby single core (seconds)")
		case "fig7":
			scalability(cfg, *repeat)
		case "ablation":
			ablations(cfg)
		default:
			fatal("unknown experiment %q", name)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig5", "fig6", "fig7", "ablation"} {
			run(name)
		}
	} else {
		run(*exp)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gofusion-bench: "+format+"\n", args...)
	os.Exit(1)
}

func compare(cfg bench.Config, w bench.Workload, repeat int, title string) {
	fmt.Printf("\n== %s ==\n", title)
	fmt.Printf("%-6s %-12s %-12s %s\n", "Query", "GoFusion", "TightDB", "Delta")
	results, err := cfg.CompareEngines(w, 1, repeat)
	if err != nil {
		fatal("%v", err)
	}
	var gfWins, tdWins int
	for _, r := range results {
		gf, td := "ERR", "ERR"
		if r.GFErr == nil {
			gf = fmt.Sprintf("%.3f", r.GoFusion.Seconds())
		}
		if r.TDErr == nil {
			td = fmt.Sprintf("%.3f", r.TightDB.Seconds())
		}
		fmt.Printf("%-6d %-12s %-12s %s\n", r.Query, gf, td, r.Delta())
		if r.GFErr == nil && r.TDErr == nil {
			if r.GoFusion <= r.TightDB {
				gfWins++
			} else {
				tdWins++
			}
		}
	}
	fmt.Printf("summary: GoFusion faster on %d queries, TightDB faster on %d\n", gfWins, tdWins)
}

func scalability(cfg bench.Config, repeat int) {
	fmt.Printf("\n== Figure 7: ClickBench scalability (query duration vs cores, seconds) ==\n")
	queryNums := []int{3, 8, 13, 16, 19, 21, 28, 32, 37}
	points, err := cfg.Scalability(bench.ClickBench, queryNums, repeat)
	if err != nil {
		fatal("%v", err)
	}
	// Pivot: one block per query, one row per core count.
	byQuery := map[int][]bench.ScalabilityPoint{}
	for _, p := range points {
		byQuery[p.Query] = append(byQuery[p.Query], p)
	}
	for _, q := range queryNums {
		fmt.Printf("\nQ%d:\n%-7s %-12s %-12s\n", q, "cores", "gofusion", "tightdb")
		for _, p := range byQuery[q] {
			fmt.Printf("%-7d %-12.3f %-12.3f\n", p.Cores, p.GoFusion.Seconds(), p.TightDB.Seconds())
		}
	}
}

func ablations(cfg bench.Config) {
	fmt.Printf("\n== Ablations: DESIGN.md design choices ==\n")
	abl, err := cfg.RunAblations()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%-44s %-12s %-12s %-8s %s\n", "Optimization", "On", "Off", "Speedup", "Note")
	for _, a := range abl {
		fmt.Printf("%-44s %-12s %-12s %-8s %s\n", a.Name, a.On.Round(1e6), a.Off.Round(1e6), a.Speedup(), a.Note)
	}
}
