// Command gpq inspects GPQ files: schema, row groups, per-chunk
// statistics, encodings and Bloom filters (like parquet-tools).
//
// Usage:
//
//	gpq schema file.gpq
//	gpq meta file.gpq
//	gpq head -n 20 file.gpq
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gofusion/internal/core"
	"gofusion/internal/parquet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Int("n", 10, "rows to print (head)")
	fs.Parse(os.Args[2:])
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)

	fr, err := parquet.OpenFile(path)
	if err != nil {
		fatal("%v", err)
	}
	defer fr.Close()

	switch cmd {
	case "schema":
		for _, f := range fr.Schema().Fields() {
			fmt.Println(" ", f)
		}
	case "meta":
		meta := fr.Metadata()
		fmt.Printf("rows: %d\nrow groups: %d\n", meta.NumRows, meta.NumRowGroups())
		for k, v := range meta.KV {
			fmt.Printf("kv: %s = %s\n", k, v)
		}
		for rg := 0; rg < meta.NumRowGroups(); rg++ {
			fmt.Printf("row group %d: %d rows\n", rg, meta.RowGroupRows(rg))
			for c := 0; c < fr.Schema().NumFields(); c++ {
				stats := meta.ColumnChunkStats(rg, c)
				min, max := "-", "-"
				if stats.HasMinMax {
					min, max = stats.Min.String(), stats.Max.String()
				}
				fmt.Printf("  %-24s nulls=%-6d min=%-24s max=%s\n",
					fr.Schema().Field(c).Name, stats.NullCount, min, max)
			}
		}
	case "head":
		sc, err := fr.Scan(parquet.ScanOptions{Limit: int64(*n)})
		if err != nil {
			fatal("%v", err)
		}
		for {
			b, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal("%v", err)
			}
			if err := core.FormatBatch(os.Stdout, b, *n); err != nil {
				fatal("%v", err)
			}
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpq schema|meta|head [-n rows] <file.gpq>")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpq: "+format+"\n", args...)
	os.Exit(1)
}
