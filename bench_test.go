// Package gofusion hosts the paper-level benchmarks: one testing.B
// benchmark per evaluation table/figure (Table 1, Figures 5-7) plus the
// design-choice ablations from DESIGN.md. Dataset sizes default to
// laptop scale and are overridable via GOFUSION_BENCH_* environment
// variables (see internal/bench.DefaultConfig). The gofusion-bench binary
// runs the same harness and prints the paper's tables.
package gofusion

import (
	"fmt"
	"sync"
	"testing"

	"gofusion/internal/baseline"
	"gofusion/internal/bench"
	"gofusion/internal/core"
)

var (
	benchOnce sync.Once
	benchCfg  bench.Config
	benchErr  error
)

func setup(b *testing.B) bench.Config {
	b.Helper()
	benchOnce.Do(func() {
		benchCfg = bench.DefaultConfig()
		benchErr = benchCfg.EnsureData()
	})
	if benchErr != nil {
		b.Fatalf("generating benchmark data: %v", benchErr)
	}
	return benchCfg
}

// runBoth registers per-engine sub-benchmarks for one query.
func runBoth(b *testing.B, s *core.SessionContext, e *baseline.Engine, name, query string) {
	b.Run(name+"/gofusion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bench.RunGoFusion(s, query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(name+"/tightdb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bench.RunTightDB(e, query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchWorkload(b *testing.B, w bench.Workload, cores int) {
	cfg := setup(b)
	s, err := cfg.GoFusionSession(w, cores)
	if err != nil {
		b.Fatal(err)
	}
	e, err := cfg.TightDBEngine(w, cores)
	if err != nil {
		b.Fatal(err)
	}
	nums, queries := bench.WorkloadQueries(w)
	for _, n := range nums {
		runBoth(b, s, e, fmt.Sprintf("Q%02d", n), queries[n])
	}
}

// BenchmarkTable1ClickBench reproduces Table 1: ClickBench queries on a
// single core, both engines, over partitioned GPQ files.
func BenchmarkTable1ClickBench(b *testing.B) {
	benchWorkload(b, bench.ClickBench, 1)
}

// BenchmarkFigure5TPCH reproduces Figure 5: the 22 TPC-H queries on a
// single core, one GPQ file per table.
func BenchmarkFigure5TPCH(b *testing.B) {
	benchWorkload(b, bench.TPCH, 1)
}

// BenchmarkFigure6H2O reproduces Figure 6: the 10 H2O groupby queries on
// a single core over one CSV file.
func BenchmarkFigure6H2O(b *testing.B) {
	benchWorkload(b, bench.H2O, 1)
}

// BenchmarkFigure7Scalability reproduces Figure 7: ClickBench query
// duration as the core count grows (a representative query subset keeps
// the sweep tractable; the harness binary runs the full set).
func BenchmarkFigure7Scalability(b *testing.B) {
	cfg := setup(b)
	queries := []int{3, 13, 16, 21, 32}
	_, all := bench.WorkloadQueries(bench.ClickBench)
	for _, cores := range cfg.Cores {
		s, err := cfg.GoFusionSession(bench.ClickBench, cores)
		if err != nil {
			b.Fatal(err)
		}
		e, err := cfg.TightDBEngine(bench.ClickBench, cores)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range queries {
			runBoth(b, s, e, fmt.Sprintf("Q%02d/cores=%d", q, cores), all[q])
		}
	}
}

// BenchmarkAblations measures the design choices called out in DESIGN.md
// (statistics pruning, late materialization, RowFormat keys, sort-order
// aware aggregation, Top-K).
func BenchmarkAblations(b *testing.B) {
	cfg := setup(b)
	b.Run("all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			abl, err := cfg.RunAblations()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, a := range abl {
					b.Logf("%-42s on=%-12s off=%-12s speedup=%s", a.Name, a.On, a.Off, a.Speedup())
				}
			}
		}
	})
}
