// Package gofusion hosts the paper-level benchmarks: one testing.B
// benchmark per evaluation table/figure (Table 1, Figures 5-7) plus the
// design-choice ablations from DESIGN.md. Dataset sizes default to
// laptop scale and are overridable via GOFUSION_BENCH_* environment
// variables (see internal/bench.DefaultConfig). The gofusion-bench binary
// runs the same harness and prints the paper's tables.
package gofusion

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/baseline"
	"gofusion/internal/bench"
	"gofusion/internal/core"
	"gofusion/internal/parquet"
	"gofusion/internal/workload/tpch"
)

var (
	benchOnce sync.Once
	benchCfg  bench.Config
	benchErr  error
)

func setup(b *testing.B) bench.Config {
	b.Helper()
	benchOnce.Do(func() {
		benchCfg = bench.DefaultConfig()
		benchErr = benchCfg.EnsureData()
	})
	if benchErr != nil {
		b.Fatalf("generating benchmark data: %v", benchErr)
	}
	return benchCfg
}

// runBoth registers per-engine sub-benchmarks for one query.
func runBoth(b *testing.B, s *core.SessionContext, e *baseline.Engine, name, query string) {
	b.Run(name+"/gofusion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bench.RunGoFusion(s, query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(name+"/tightdb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bench.RunTightDB(e, query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchWorkload(b *testing.B, w bench.Workload, cores int) {
	cfg := setup(b)
	s, err := cfg.GoFusionSession(w, cores)
	if err != nil {
		b.Fatal(err)
	}
	e, err := cfg.TightDBEngine(w, cores)
	if err != nil {
		b.Fatal(err)
	}
	nums, queries := bench.WorkloadQueries(w)
	for _, n := range nums {
		runBoth(b, s, e, fmt.Sprintf("Q%02d", n), queries[n])
	}
}

// BenchmarkTable1ClickBench reproduces Table 1: ClickBench queries on a
// single core, both engines, over partitioned GPQ files.
func BenchmarkTable1ClickBench(b *testing.B) {
	benchWorkload(b, bench.ClickBench, 1)
}

// BenchmarkFigure5TPCH reproduces Figure 5: the 22 TPC-H queries on a
// single core, one GPQ file per table.
func BenchmarkFigure5TPCH(b *testing.B) {
	benchWorkload(b, bench.TPCH, 1)
}

// BenchmarkFigure6H2O reproduces Figure 6: the 10 H2O groupby queries on
// a single core over one CSV file.
func BenchmarkFigure6H2O(b *testing.B) {
	benchWorkload(b, bench.H2O, 1)
}

// BenchmarkFigure7Scalability reproduces Figure 7: ClickBench query
// duration as the core count grows (a representative query subset keeps
// the sweep tractable; the harness binary runs the full set).
func BenchmarkFigure7Scalability(b *testing.B) {
	cfg := setup(b)
	queries := []int{3, 13, 16, 21, 32}
	_, all := bench.WorkloadQueries(bench.ClickBench)
	for _, cores := range cfg.Cores {
		s, err := cfg.GoFusionSession(bench.ClickBench, cores)
		if err != nil {
			b.Fatal(err)
		}
		e, err := cfg.TightDBEngine(bench.ClickBench, cores)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range queries {
			runBoth(b, s, e, fmt.Sprintf("Q%02d/cores=%d", q, cores), all[q])
		}
	}
}

// writeSkewData materializes a deliberately imbalanced multi-file table:
// 60 small single-row-group files followed by one fat file holding two
// 100k-row groups. Static dealing is greedy in file order, so the two
// fat row groups land on two already-loaded partitions (130k rows each
// vs 30k for the rest); the morsel scheduler's largest-first shared
// queue lets the other workers absorb the small files instead.
func writeSkewData(b *testing.B, dir string) []string {
	b.Helper()
	schema := arrow.NewSchema(
		arrow.NewField("k", arrow.Int64, false),
		arrow.NewField("v", arrow.Float64, false),
	)
	mkBatch := func(rows, seed int) *arrow.RecordBatch {
		kb := arrow.NewNumericBuilder[int64](arrow.Int64)
		vb := arrow.NewNumericBuilder[float64](arrow.Float64)
		for i := 0; i < rows; i++ {
			kb.Append(int64((seed+i)%97 - 8))
			vb.Append(float64(i%1000) * 0.5)
		}
		return arrow.NewRecordBatch(schema, []arrow.Array{kb.Finish(), vb.Finish()})
	}
	var files []string
	for f := 0; f < 60; f++ {
		path := filepath.Join(dir, fmt.Sprintf("small-%02d.gpq", f))
		if err := parquet.WriteFile(path, schema, []*arrow.RecordBatch{mkBatch(2000, f)},
			parquet.WriterOptions{RowGroupRows: 2000}); err != nil {
			b.Fatal(err)
		}
		files = append(files, path)
	}
	fat := filepath.Join(dir, "zfat.gpq")
	if err := parquet.WriteFile(fat, schema, []*arrow.RecordBatch{mkBatch(200_000, 7)},
		parquet.WriterOptions{RowGroupRows: 100_000}); err != nil {
		b.Fatal(err)
	}
	return append(files, fat)
}

// BenchmarkPipelineFusion measures pipeline fusion + morsel scheduling
// (DESIGN.md section 10): scan-heavy TPC-H Q1/Q6 with fusion on (the
// default) vs DisableFusion at 4 partitions, plus a skewed multi-file
// scan where dynamic morsel stealing beats static partition dealing.
func BenchmarkPipelineFusion(b *testing.B) {
	cfg := setup(b)
	const cores = 4
	modes := []struct {
		name    string
		disable bool
	}{{"fused", false}, {"unfused", true}}

	fusionDir := fusionTPCHDir(b, cfg)
	sessions := map[string]*core.SessionContext{}
	for _, m := range modes {
		scfg := core.DefaultConfig()
		scfg.TargetPartitions = cores
		scfg.DisableFusion = m.disable
		s := core.NewSession(scfg)
		if err := tpch.RegisterGPQ(s, fusionDir); err != nil {
			b.Fatal(err)
		}
		sessions[m.name] = s
	}
	_, queries := bench.WorkloadQueries(bench.TPCH)
	for _, n := range []int{1, 6} {
		for _, m := range modes {
			s := sessions[m.name]
			b.Run(fmt.Sprintf("Q%02d/%s", n, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := bench.RunGoFusion(s, queries[n]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	skewFiles := writeSkewData(b, b.TempDir())
	const skewQuery = "SELECT sum(v), count(*) FROM skew WHERE k > 0"
	for _, m := range modes {
		scfg := core.DefaultConfig()
		scfg.TargetPartitions = cores
		scfg.DisableFusion = m.disable
		s := core.NewSession(scfg)
		if err := s.RegisterGPQ("skew", skewFiles...); err != nil {
			b.Fatal(err)
		}
		b.Run("Skew/"+m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunGoFusion(s, skewQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fusionTPCHDir materializes (once) the dedicated TPC-H copy with
// 25k-row groups shared by BenchmarkPipelineFusion and
// BenchmarkSharedCache; the shared bench dataset's 1M-row groups leave a
// single row group per table at laptop scale.
func fusionTPCHDir(b *testing.B, cfg bench.Config) string {
	b.Helper()
	dir := filepath.Join(cfg.DataDir, fmt.Sprintf("tpch-fusion-sf%g", cfg.TPCHSF))
	if _, err := os.Stat(filepath.Join(dir, "lineitem.gpq")); err != nil {
		if err := tpch.WriteGPQ(dir, cfg.TPCHSF, 25_000); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

// BenchmarkSharedCache measures the shared decoded-page cache and the
// result cache (DESIGN.md section 11) on scan-heavy TPC-H Q1/Q6:
//
//	cold       - fresh session per iteration: every page decoded from disk
//	warm       - shared session, page cache primed: decode-free scans
//	nocache    - DisableSharedCache on a reused session: the uncached path
//	warmresult - EnableResultCache primed: whole-result memoization
//
// plus a concurrent mixed workload (4 goroutines alternating Q1/Q6 on
// one session) with the shared cache on vs off.
func BenchmarkSharedCache(b *testing.B) {
	cfg := setup(b)
	const cores = 4
	dir := fusionTPCHDir(b, cfg)
	_, queries := bench.WorkloadQueries(bench.TPCH)

	base := core.DefaultConfig()
	base.TargetPartitions = cores
	newSession := func(scfg core.SessionConfig) *core.SessionContext {
		s := core.NewSession(scfg)
		if err := tpch.RegisterGPQ(s, dir); err != nil {
			b.Fatal(err)
		}
		return s
	}
	run := func(b *testing.B, s *core.SessionContext, query string) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, _, err := bench.RunGoFusion(s, query); err != nil {
				b.Fatal(err)
			}
		}
	}

	warm := newSession(base)
	defer warm.Close()
	noCfg := base
	noCfg.DisableSharedCache = true
	nocache := newSession(noCfg)
	defer nocache.Close()
	resCfg := base
	resCfg.EnableResultCache = true
	rescache := newSession(resCfg)
	defer rescache.Close()

	for _, n := range []int{1, 6} {
		query := queries[n]
		b.Run(fmt.Sprintf("Q%02d/cold", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := newSession(base)
				if _, _, err := bench.RunGoFusion(s, query); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
		for _, prime := range []*core.SessionContext{warm, rescache} {
			if _, _, err := bench.RunGoFusion(prime, query); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("Q%02d/warm", n), func(b *testing.B) { run(b, warm, query) })
		b.Run(fmt.Sprintf("Q%02d/nocache", n), func(b *testing.B) { run(b, nocache, query) })
		b.Run(fmt.Sprintf("Q%02d/warmresult", n), func(b *testing.B) { run(b, rescache, query) })
	}

	mixed := func(b *testing.B, s *core.SessionContext) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, 4)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					q := queries[1]
					if g%2 == 1 {
						q = queries[6]
					}
					_, _, errs[g] = bench.RunGoFusion(s, q)
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("ConcurrentMixed/shared", func(b *testing.B) { mixed(b, warm) })
	b.Run("ConcurrentMixed/nocache", func(b *testing.B) { mixed(b, nocache) })
}

// BenchmarkAblations measures the design choices called out in DESIGN.md
// (statistics pruning, late materialization, RowFormat keys, sort-order
// aware aggregation, Top-K).
func BenchmarkAblations(b *testing.B) {
	cfg := setup(b)
	b.Run("all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			abl, err := cfg.RunAblations()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, a := range abl {
					b.Logf("%-42s on=%-12s off=%-12s speedup=%s", a.Name, a.On, a.Off, a.Speedup())
				}
			}
		}
	})
}
