module gofusion

go 1.22
